#!/usr/bin/env bash
# Appends the stable benchmark numbers of this checkout to
# bench/BENCH_history.csv so performance trends are visible per PR.
#
# Recorded metrics:
#   * fig4_p16_plain_secs / fig4_p16_resilient_secs — simulated seconds of
#     the Figure 4 reproduction at 16 processors (deterministic discrete-event
#     simulation: stable across machines).
#   * fig5_p16_x2_secs — simulated seconds of the Figure 5 cell at 16
#     processors with 2 sub-cubes per worker (also deterministic).
#   * service_* — the fusiond throughput benchmark: job/task/unique counters
#     are deterministic; jobs_per_sec is wall-clock and trend-only.
#     service_route_{standard,resilient,shared_memory}_{jobs,auto} record
#     the per-route job mix (pinned resilient, Route::Auto resolved by the
#     default size-threshold policy to the shared-memory lane, pinned
#     standard) so routing-mix drift stays bisectable.
#     service_bytes_cloned_{screen,transform} measure (via the hsi clone
#     ledger) the sub-cube payload bytes deep-copied into task messages —
#     0 on the Arc-backed view message plane — and
#     service_payload_bytes_shipped is the volume the pre-view plane used
#     to deep-copy per task, recorded as the before/after denominator.
#   * ingest_* — the streaming ingestion benchmark: a deterministic folder
#     of BSQ/BIL/BIP cube files replayed through IngestPump -> CubeStore ->
#     fusiond.  ingest_{cubes,chunks,shed,store_hits,store_misses,
#     bytes_assembled} are deterministic by construction (fixed file set,
#     sorted replay, blocker-pinned shedding); cubes_per_sec is wall-clock
#     and trend-only.
#   * {service,ingest}_tenant_t<N>_{admitted,downgraded,shed,rejected} —
#     per-tenant admission-plane attribution from the same two benchmarks
#     (both drive fixed tenant mixes through service::admission); all four
#     counters per tenant are deterministic, so any drift means admission
#     behaviour changed.
#   * {service,ingest}_telemetry_overhead_pct — wall-clock cost of the
#     telemetry plane fully on (spans + metrics + flight recorder) versus
#     disabled, measured on a compute-dominated serial probe (submit ->
#     wait one job at a time / replay-plus-drain passes) so scheduler
#     jitter cannot dominate; min-of-5 per configuration, alternating and
#     order-flipped, after a warm-up.  The deterministic rows always come
#     from a disabled run, so they stay comparable with the pre-telemetry
#     history.  Wall-clock and trend-only; the budget is <5%.
#   * service_latency_{p50,p95,p99}_ms — submit-to-completion latency
#     percentiles estimated from the enabled run's
#     fusiond_job_latency_seconds histogram.  Wall-clock and trend-only.
#   * sim_* — the deterministic cluster simulator's 1000-scenario fault
#     sweep (fixed seed): sim_scenarios_per_sec is wall-clock and
#     trend-only; sim_detection_latency_p{50,99}_virtual_ms are measured
#     on *virtual* time and sim_sweep_{passed,detections} are counters —
#     all three are pure functions of the sweep seed, so any drift means
#     detector or protocol behaviour changed.
#   * service_worker_{lost,reassigned,failover} — standard-lane failover
#     counters from two deterministic chaos probes (worker kill on a
#     two-worker lane; lane-drain kill on a one-worker lane backed by an
#     inline executor).  Exact by construction (expected 2 / 1 / 1): any
#     drift means detection or re-dispatch behaviour changed.
#
# After appending, the committed trend chart bench/BENCH_trends.svg is
# regenerated from the full history by `bench --bin plot_history`.
#
# Usage: bash bench/record.sh   (from anywhere; non-gating in CI)
set -euo pipefail
cd "$(dirname "$0")/.."

STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)
REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
CSV=bench/BENCH_history.csv

if [ ! -f "$CSV" ]; then
    echo "recorded_at,rev,metric,value" > "$CSV"
fi

cargo build --release -p bench --bins >/dev/null 2>&1

FIG4=$(cargo run --release -q -p bench --bin fig4_speedup 2>/dev/null)
PLAIN16=$(echo "$FIG4" | awk '$1=="16" && NF>=6 {print $2; exit}')
RESIL16=$(echo "$FIG4" | awk '$1=="16" && NF>=6 {print $3; exit}')

FIG5=$(cargo run --release -q -p bench --bin fig5_granularity 2>/dev/null)
G16X2=$(echo "$FIG5" | awk '$1=="16" && $2!="sub-cubes:" {print $3; exit}')

SVC=$(cargo run --release -q -p bench --bin service_throughput 2>/dev/null)
ING=$(cargo run --release -q -p bench --bin ingest_throughput 2>/dev/null)
SIM=$(cargo run --release -q -p bench --bin sim_throughput 2>/dev/null)

{
    echo "$STAMP,$REV,fig4_p16_plain_secs,$PLAIN16"
    echo "$STAMP,$REV,fig4_p16_resilient_secs,$RESIL16"
    echo "$STAMP,$REV,fig5_p16_x2_secs,$G16X2"
    echo "$SVC" | awk -v s="$STAMP" -v r="$REV" '$1=="CSV" {print s "," r "," $2 "," $3}'
    echo "$ING" | awk -v s="$STAMP" -v r="$REV" '$1=="CSV" {print s "," r "," $2 "," $3}'
    echo "$SIM" | awk -v s="$STAMP" -v r="$REV" '$1=="CSV" {print s "," r "," $2 "," $3}'
} >> "$CSV"

echo "recorded $(grep -c "^$STAMP,$REV," "$CSV") metrics for $REV into $CSV:"
grep "^$STAMP,$REV," "$CSV"

cargo run --release -q -p bench --bin plot_history
