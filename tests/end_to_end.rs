//! Cross-crate integration tests: the whole system from synthetic scene
//! generation through every fusion implementation, the resiliency protocols,
//! the streaming ingestion front door, and the figure-regeneration
//! simulations.

use hsi::{io, CubeDims, SceneConfig, SceneGenerator};
use ingest::{DirectorySource, IngestConfig, IngestPump, ShedReason, SheddingPolicy};
use pct::distributed_sim::{simulate_fusion, SimParams};
use pct::resilient::{AttackPlan, ResilientPct};
use pct::{DistributedPct, PctConfig, SequentialPct, SharedMemoryPct};
use resilience::DetectorConfig;
use service::{
    BackendKind, ChaosPhase, ChaosPlan, CubeSource, FusionService, JobHandle, JobOutcome, JobSpec,
    JobStatus, LeastLoadedPolicy, PhaseKill, PoolConfig, Priority, RemoteWorkerSpec,
    RoundRobinPolicy, Route, ServiceConfig, ServiceError, ServiceEvent, SharedRoutingPolicy,
    SizeThresholdPolicy, TenantId, TenantQuota,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_scene(seed: u64) -> hsi::HyperCube {
    let mut config = SceneConfig::small(seed);
    config.dims = CubeDims::new(48, 48, 24);
    SceneGenerator::new(config).unwrap().generate()
}

#[test]
fn all_implementations_agree_on_the_fused_image() {
    let cube = test_scene(1);
    let sequential = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
    let shared = SharedMemoryPct::new(PctConfig::paper()).run(&cube).unwrap();
    let distributed = DistributedPct::new(PctConfig::paper(), 3)
        .run(&cube)
        .unwrap();
    let resilient = ResilientPct::new(PctConfig::paper(), 3, 2)
        .run(&cube)
        .unwrap();

    for (name, other) in [
        ("shared-memory", &shared),
        ("distributed", &distributed),
        ("resilient", &resilient),
    ] {
        assert_eq!(other.pixels, sequential.pixels);
        let diff = sequential.image.mean_abs_diff(&other.image).unwrap();
        assert!(diff < 10.0, "{name} image diverges from sequential: {diff}");
        assert!(
            other.variance_fraction(3) > 0.9,
            "{name} lost variance compaction"
        );
    }
    // Distributed and resilient share the exact same decomposition and
    // deterministic merge order, so they agree bit-for-bit.
    assert_eq!(distributed.image, resilient.image);
}

#[test]
fn fused_composite_improves_contrast_over_single_bands() {
    // The qualitative claim behind Figure 3: the composite shows better
    // contrast than individual raw bands.
    let cube = test_scene(2);
    let fused = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();

    // Grey-scale contrast of the best single band.
    let mut best_band_contrast: f64 = 0.0;
    for band in 0..cube.bands() {
        let plane = cube.band_plane(band).unwrap();
        let gray = io::plane_to_gray(&plane);
        let mean = gray.iter().map(|&g| g as f64).sum::<f64>() / gray.len() as f64;
        let var = gray.iter().map(|&g| (g as f64 - mean).powi(2)).sum::<f64>() / gray.len() as f64;
        best_band_contrast = best_band_contrast.max(var.sqrt());
    }
    // The opponent colour mapping spreads the dynamic range over three
    // channels, so its luma contrast need not exceed a single min-max
    // stretched band; it must however stay in the same league and be far
    // from flat.
    assert!(
        fused.image.rms_contrast() > 0.2 * best_band_contrast,
        "fused contrast {} collapsed versus best band {}",
        fused.image.rms_contrast(),
        best_band_contrast
    );
    assert!(fused.image.rms_contrast() > 5.0);
}

#[test]
fn resilient_run_under_attack_matches_undisturbed_run() {
    // Kept modest so the whole run (two fusions) stays fast in debug builds;
    // the regeneration-specific assertions live in the pct unit tests.
    let cube = test_scene(3);

    let reference = DistributedPct::new(PctConfig::paper(), 2)
        .run(&cube)
        .unwrap();
    let (attacked, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
        .run_with_attack(&cube, AttackPlan::kill_first_worker_member())
        .unwrap();

    assert_eq!(report.members_attacked.len(), 1);
    let diff = reference.image.mean_abs_diff(&attacked.image).unwrap();
    assert!(diff < 0.5, "attacked run diverged: {diff}");
}

#[test]
fn figure4_shape_holds_end_to_end() {
    // Speed-up grows with processors and resiliency costs roughly the
    // replication factor — the two headline claims of the evaluation.
    let t1 = simulate_fusion(&SimParams::figure4(1, false))
        .unwrap()
        .elapsed_secs;
    let t8 = simulate_fusion(&SimParams::figure4(8, false))
        .unwrap()
        .elapsed_secs;
    let t8_res = simulate_fusion(&SimParams::figure4(8, true))
        .unwrap()
        .elapsed_secs;
    assert!(t1 / t8 > 6.0, "8-processor speed-up only {}", t1 / t8);
    let ratio = t8_res / t8;
    assert!((1.8..=2.6).contains(&ratio), "resiliency ratio {ratio}");
}

#[test]
fn figure5_shape_holds_end_to_end() {
    for procs in [4usize, 8] {
        let x1 = simulate_fusion(&SimParams::figure5(procs, 1))
            .unwrap()
            .elapsed_secs;
        let x2 = simulate_fusion(&SimParams::figure5(procs, 2))
            .unwrap()
            .elapsed_secs;
        assert!(
            x2 <= x1 * 1.001,
            "over-decomposition did not help at {procs} processors: x1={x1}, x2={x2}"
        );
    }
}

#[test]
fn cube_files_round_trip_through_disk() {
    let cube = test_scene(4);
    let dir = std::env::temp_dir();
    let cube_path = dir.join(format!("e2e_cube_{}.hsc", std::process::id()));
    let ppm_path = dir.join(format!("e2e_fused_{}.ppm", std::process::id()));

    io::write_cube(&cube, &cube_path).unwrap();
    let reloaded = io::read_cube(&cube_path).unwrap();
    assert_eq!(cube, reloaded);

    let fused = SequentialPct::new(PctConfig::paper())
        .run(&reloaded)
        .unwrap();
    io::write_ppm(&fused.image, &ppm_path).unwrap();
    let reread = io::read_ppm(&ppm_path).unwrap();
    assert_eq!(fused.image, reread);

    std::fs::remove_file(cube_path).ok();
    std::fs::remove_file(ppm_path).ok();
}

/// A service sized small enough that scheduling pressure is real in tests.
fn test_service(queue_capacity: usize, max_in_flight: usize) -> FusionService {
    FusionService::start(
        ServiceConfig::builder()
            .pool(PoolConfig {
                standard_workers: 2,
                replica_groups: 2,
                replication_level: 2,
                shared_memory_executors: 1,
                ..PoolConfig::default()
            })
            .queue_capacity(queue_capacity)
            .max_in_flight(max_in_flight)
            .build()
            .expect("config validates"),
    )
    .expect("service starts")
}

fn small_job_scene(seed: u64) -> SceneConfig {
    let mut config = SceneConfig::small(seed);
    config.dims = CubeDims::new(20, 20, 10);
    config
}

/// A cube big enough that a debug-build screening task reliably outlives the
/// cancellation / backpressure assertions racing against it.
fn slow_job_scene(seed: u64) -> SceneConfig {
    let mut config = SceneConfig::small(seed);
    config.dims = CubeDims::new(64, 64, 32);
    config
}

fn wait_for_running(handle: &JobHandle) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while handle.status().unwrap() == JobStatus::Queued {
        assert!(
            Instant::now() < deadline,
            "job {} never started running",
            handle.id()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn service_concurrent_jobs_are_byte_identical_to_sequential() {
    // A dozen concurrent jobs, mixed lanes and priorities, all multiplexed
    // over one shared pool — every output must match the sequential
    // reference exactly, which is the service's determinism contract.
    let service = test_service(16, 8);
    let mut jobs = Vec::new();
    for i in 0..12u64 {
        let cube = Arc::new(
            SceneGenerator::new(small_job_scene(60 + i))
                .unwrap()
                .generate(),
        );
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .pinned(BackendKind::ALL[i as usize % 3])
            .priority(Priority::ALL[i as usize % 3])
            .shards(2 + i as usize % 3)
            .build()
            .unwrap();
        jobs.push((service.submit(spec).unwrap(), cube));
    }
    for (mut handle, cube) in jobs {
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "job {} diverged",
            handle.id()
        );
    }
    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 12);
    assert_eq!(report.jobs_failed, 0);
    assert!(report.duplicates_ignored > 0, "replica lane never deduped");
    // The three in-process lanes the jobs were pinned across; the remote
    // lane is not configured here.
    for kind in [
        BackendKind::Standard,
        BackendKind::Resilient,
        BackendKind::SharedMemory,
    ] {
        assert_eq!(
            report.route(kind).jobs_completed,
            4,
            "{} lane lost jobs",
            kind.label()
        );
    }
}

#[test]
fn service_admission_queue_applies_backpressure() {
    // One job in flight, a queue of two: once the queue is full, try_submit
    // must reject with Saturated until the scheduler drains something.
    let service = test_service(2, 1);
    let slow = JobSpec::builder(CubeSource::Synthetic(slow_job_scene(70)))
        .pinned(BackendKind::Standard)
        .shards(1)
        .build()
        .unwrap();
    let mut running = service.submit(slow.clone()).unwrap();
    wait_for_running(&running);

    // The scheduler is saturated (max_in_flight=1), so these two fill the
    // queue deterministically...
    let queued_a = service.try_submit(slow.clone()).unwrap();
    let queued_b = service.try_submit(slow.clone()).unwrap();
    assert_eq!(service.queue_depth(), 2);
    // ...and the third submission bounces, carrying a typed retry hint.
    let err = service.try_submit(slow.clone()).unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::Saturated { retry_after } if retry_after.0 > Duration::ZERO
        ),
        "expected Saturated with a retry hint, got {err:?}"
    );

    // Cancel the queued work so shutdown only waits for the running job.
    assert!(queued_a.cancel());
    assert!(queued_b.cancel());
    assert!(matches!(running.wait(), Ok(JobOutcome::Completed(_))));
    drop(queued_a);
    drop(queued_b);
    let report = service.shutdown();
    assert_eq!(report.jobs_rejected, 1);
    assert_eq!(report.jobs_cancelled, 2);
    assert_eq!(report.queue_high_water, 2);
}

#[test]
fn service_cancellation_mid_flight_and_while_queued() {
    let service = test_service(8, 1);
    let mut running = service
        .submit(
            JobSpec::builder(CubeSource::Synthetic(slow_job_scene(71)))
                .pinned(BackendKind::Standard)
                .shards(2)
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut queued = service
        .submit(
            JobSpec::builder(CubeSource::Synthetic(small_job_scene(72)))
                .build()
                .unwrap(),
        )
        .unwrap();
    wait_for_running(&running);

    // Cancel the in-flight job mid-screening and the queued job behind it.
    assert!(running.cancel());
    assert!(queued.cancel());
    assert_eq!(running.wait().unwrap(), JobOutcome::Cancelled);
    assert_eq!(queued.wait().unwrap(), JobOutcome::Cancelled);
    // The record is consumed, but the handle still answers — the old
    // UnknownJob footgun is gone.
    assert_eq!(running.status().unwrap(), JobStatus::Cancelled);
    // A second wait is a typed error.
    assert_eq!(
        running.wait().unwrap_err(),
        ServiceError::OutcomeTaken(running.id())
    );

    // The pool survives cancellation: fresh work still completes correctly.
    let fresh_cube = Arc::new(SceneGenerator::new(small_job_scene(73)).unwrap().generate());
    let mut fresh = service
        .submit(
            JobSpec::builder(CubeSource::InMemory(Arc::clone(&fresh_cube)))
                .build()
                .unwrap(),
        )
        .unwrap();
    let outcome = fresh.wait().unwrap();
    let reference = SequentialPct::new(PctConfig::paper())
        .run(&fresh_cube)
        .unwrap();
    assert_eq!(outcome, JobOutcome::Completed(reference));
    let report = service.shutdown();
    assert_eq!(report.jobs_cancelled, 2);
    assert_eq!(report.jobs_completed, 1);
}

#[test]
fn service_handle_lifecycle_timeout_drop_detach_and_shutdown() {
    let service = test_service(8, 4);

    // wait_timeout on a job that is still running returns Ok(None) and the
    // outcome stays takeable.
    let mut slow = service
        .submit(
            JobSpec::builder(CubeSource::Synthetic(slow_job_scene(75)))
                .pinned(BackendKind::Standard)
                .shards(2)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(slow.wait_timeout(Duration::ZERO).unwrap(), None);
    assert!(matches!(slow.wait().unwrap(), JobOutcome::Completed(_)));

    // Cancel-on-drop: a dropped handle cancels its job...
    let dropped = service
        .submit(
            JobSpec::builder(CubeSource::Synthetic(slow_job_scene(76)))
                .pinned(BackendKind::Standard)
                .shards(2)
                .build()
                .unwrap(),
        )
        .unwrap();
    drop(dropped);

    // ...while detach() lets the job run fire-and-forget: the event stream
    // observes its completion without any handle or poll.
    let events = service.subscribe();
    let cube = Arc::new(SceneGenerator::new(small_job_scene(77)).unwrap().generate());
    let detached_id = service
        .submit(
            JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .build()
                .unwrap(),
        )
        .unwrap()
        .detach();
    let terminal = events
        .wait_for(
            Duration::from_secs(30),
            |e| matches!(e, ServiceEvent::Terminal { job, .. } if *job == detached_id),
        )
        .expect("detached job reaches a terminal state");
    assert_eq!(
        terminal,
        ServiceEvent::Terminal {
            job: detached_id,
            tenant: TenantId::default(),
            status: JobStatus::Completed
        }
    );

    // A handle outlives shutdown: it holds the results plane by Arc and
    // observes the final terminal state.
    let mut survivor = service
        .submit(
            JobSpec::builder(CubeSource::Synthetic(small_job_scene(78)))
                .build()
                .unwrap(),
        )
        .unwrap();
    let report = service.shutdown();
    assert!(matches!(survivor.wait().unwrap(), JobOutcome::Completed(_)));
    assert_eq!(survivor.status().unwrap(), JobStatus::Completed);
    // The dropped job either cancelled or raced to completion; it must be
    // accounted either way.
    assert_eq!(
        report.jobs_completed + report.jobs_cancelled,
        4,
        "dropped job unaccounted: {report:?}"
    );
}

#[test]
fn service_resilient_jobs_survive_member_kill() {
    // Kill a replica-group member while resilient jobs stream through the
    // pool: the member is regenerated and every output stays byte-identical.
    let service = test_service(16, 4);
    let mut jobs = Vec::new();
    for i in 0..6u64 {
        let cube = Arc::new(
            SceneGenerator::new(small_job_scene(80 + i))
                .unwrap()
                .generate(),
        );
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .pinned(BackendKind::Resilient)
            .shards(4)
            .build()
            .unwrap();
        jobs.push((service.submit(spec).unwrap(), cube));
        if i == 0 {
            assert!(service.inject_attack("rg0#0"));
        }
    }
    for (mut handle, cube) in jobs {
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "job {} diverged after the attack",
            handle.id()
        );
    }
    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 6);
    assert_eq!(report.members_attacked, vec!["rg0#0".to_string()]);
    assert!(
        report.regenerations >= 1,
        "killed member was never regenerated: {report:?}"
    );
}

#[test]
fn multi_tenant_chaos_fair_share_and_byte_identity_survive_member_kill() {
    // The admission-plane acceptance scenario: two tenants with a 4:1
    // weight ratio burst-submit onto a deliberately narrow service while a
    // chaos plan kills a replica-group member mid-run.  The starved
    // low-weight tenant must still complete every job, every output must
    // stay byte-identical to the sequential reference, and the shutdown
    // report must attribute the work per tenant.
    let heavy = TenantId(1);
    let light = TenantId(2);
    let service = FusionService::start(
        ServiceConfig::builder()
            .pool(PoolConfig {
                standard_workers: 2,
                replica_groups: 1,
                replication_level: 2,
                shared_memory_executors: 1,
                ..PoolConfig::default()
            })
            .queue_capacity(32)
            .max_in_flight(2)
            .tenant_quota(heavy, TenantQuota::weighted(4))
            .tenant_quota(light, TenantQuota::weighted(1))
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#0"))
            .build()
            .unwrap(),
    )
    .unwrap();

    // Burst everything up front so the DRR queue is genuinely contended:
    // the heavy tenant's eight jobs arrive before the light tenant's two.
    let mut jobs = Vec::new();
    for i in 0..10u64 {
        let tenant = if i < 8 { heavy } else { light };
        let cube = Arc::new(
            SceneGenerator::new(small_job_scene(140 + i))
                .unwrap()
                .generate(),
        );
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .tenant(tenant)
            .pinned(BackendKind::ALL[i as usize % 3])
            .shards(2 + i as usize % 3)
            .build()
            .unwrap();
        jobs.push((service.submit(spec).unwrap(), cube));
    }
    for (mut handle, cube) in jobs {
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "job {} diverged under multi-tenant chaos",
            handle.id()
        );
    }

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 10);
    assert_eq!(report.jobs_failed, 0);
    assert!(
        report.regenerations >= 1,
        "killed member was never regenerated: {report:?}"
    );
    let h = report.tenant(heavy);
    assert_eq!((h.weight, h.jobs_admitted, h.jobs_completed), (4, 8, 8));
    assert_eq!((h.jobs_shed, h.jobs_rejected), (0, 0));
    let l = report.tenant(light);
    assert_eq!((l.weight, l.jobs_admitted, l.jobs_completed), (1, 2, 2));
    assert_eq!((l.jobs_shed, l.jobs_rejected), (0, 0));
    let rendered = report.render();
    assert!(
        rendered.contains("tenant     t1 (w4)") && rendered.contains("tenant     t2 (w1)"),
        "per-tenant attribution missing from rendered report:\n{rendered}"
    );
}

/// The acceptance matrix of the routing redesign: every route — the three
/// lanes pinned, plus `Auto` under each shipped routing policy — produces
/// output **byte-identical** to `SequentialPct`, including one chaos kill
/// on the pinned resilient route.
#[test]
fn route_matrix_every_route_is_byte_identical_to_sequential() {
    let policies: Vec<(&str, Option<SharedRoutingPolicy>)> = vec![
        ("pinned-standard", None),
        ("pinned-resilient", None),
        ("pinned-shared-memory", None),
        (
            "auto-size-threshold",
            Some(Arc::new(SizeThresholdPolicy::default())),
        ),
        ("auto-least-loaded", Some(Arc::new(LeastLoadedPolicy))),
        (
            "auto-round-robin",
            Some(Arc::new(RoundRobinPolicy::default())),
        ),
    ];
    for (name, policy) in policies {
        let route = match name {
            "pinned-standard" => Route::Pinned(BackendKind::Standard),
            "pinned-resilient" => Route::Pinned(BackendKind::Resilient),
            "pinned-shared-memory" => Route::Pinned(BackendKind::SharedMemory),
            _ => Route::Auto,
        };
        let mut builder = ServiceConfig::builder()
            .standard_workers(2)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(1)
            .queue_capacity(8)
            .max_in_flight(4);
        if let Some(policy) = policy {
            builder = builder.routing(policy);
        }
        // The resilient route additionally takes a chaos kill mid-screen.
        if route == Route::Pinned(BackendKind::Resilient) {
            builder = builder.chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#0"));
        }
        let service = FusionService::start(builder.build().unwrap()).unwrap();

        let mut jobs = Vec::new();
        for i in 0..3u64 {
            let cube = Arc::new(
                SceneGenerator::new(small_job_scene(110 + i))
                    .unwrap()
                    .generate(),
            );
            let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .route(route)
                .shards(3)
                .build()
                .unwrap();
            jobs.push((service.submit(spec).unwrap(), cube));
        }
        for (mut handle, cube) in jobs {
            let outcome = handle.wait().unwrap();
            let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
            assert_eq!(
                outcome
                    .output()
                    .unwrap_or_else(|| panic!("{name}: job failed: {outcome:?}")),
                &reference,
                "{name}: job {} diverged from sequential",
                handle.id()
            );
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 3, "{name}: jobs lost");
        let routed: u64 = BackendKind::ALL
            .iter()
            .map(|kind| report.route(*kind).jobs_routed)
            .sum();
        assert_eq!(routed, 3, "{name}: route accounting off: {report:?}");
        if route == Route::Auto {
            let auto: u64 = BackendKind::ALL
                .iter()
                .map(|kind| report.route(*kind).auto_routed)
                .sum();
            assert_eq!(auto, 3, "{name}: policy decisions uncounted");
        }
        if route == Route::Pinned(BackendKind::Resilient) {
            assert_eq!(report.members_attacked, vec!["rg0#0".to_string()]);
            assert!(report.regenerations >= 1, "{name}: no regeneration");
        }
    }
}

/// The event-stream acceptance criterion: a subscriber observes the chaos
/// kill → regeneration → completion sequence during a chaos run without a
/// single `status()` poll.
#[test]
fn event_stream_observes_kill_regeneration_and_completion_without_polling() {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(1)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#1"))
            .build()
            .unwrap(),
    )
    .unwrap();
    let events = service.subscribe();

    let cube = Arc::new(
        SceneGenerator::new(small_job_scene(120))
            .unwrap()
            .generate(),
    );
    let mut handle = service
        .submit(
            JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .pinned(BackendKind::Resilient)
                .shards(3)
                .build()
                .unwrap(),
        )
        .unwrap();
    let id = handle.id();

    let timeout = Duration::from_secs(30);
    let admitted = events
        .wait_for(
            timeout,
            |e| matches!(e, ServiceEvent::Admitted { job, .. } if *job == id),
        )
        .expect("admission event");
    assert_eq!(
        admitted,
        ServiceEvent::Admitted {
            job: id,
            tenant: TenantId::default(),
            route: BackendKind::Resilient,
            auto: false
        }
    );
    let killed = events
        .wait_for(timeout, |e| matches!(e, ServiceEvent::MemberKilled { .. }))
        .expect("kill event");
    assert_eq!(
        killed,
        ServiceEvent::MemberKilled {
            member: "rg0#1".into()
        }
    );
    let regenerated = events
        .wait_for(timeout, |e| {
            matches!(e, ServiceEvent::MemberRegenerated { .. })
        })
        .expect("regeneration event");
    assert!(matches!(
        regenerated,
        ServiceEvent::MemberRegenerated { ref failed, .. } if failed == "rg0#1"
    ));
    let terminal = events
        .wait_for(
            timeout,
            |e| matches!(e, ServiceEvent::Terminal { job, .. } if *job == id),
        )
        .expect("terminal event");
    assert_eq!(
        terminal,
        ServiceEvent::Terminal {
            job: id,
            tenant: TenantId::default(),
            status: JobStatus::Completed
        }
    );

    // Only now touch the results plane: the output survived the kill.
    let outcome = handle.wait().unwrap();
    let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
    assert_eq!(outcome.output().expect("job completed"), &reference);
    let report = service.shutdown();
    assert!(report.regenerations >= 1);
}

/// The seeded chaos matrix: every (member index × job phase) combination is
/// replayed as a deterministic kill over the resilient lane.  The kill is
/// anchored to a scheduler event (dispatch of the first task of that phase
/// of job 1), the workload is seeded scenes, and every surviving output
/// must stay **byte-identical** to the sequential reference — while the
/// zero-copy message plane reports 0 cloned payload bytes per phase.
#[test]
fn chaos_kill_matrix_every_surviving_output_is_byte_identical_to_sequential() {
    for member_index in 0..2usize {
        for phase in [
            ChaosPhase::Screen,
            ChaosPhase::Derive,
            ChaosPhase::Transform,
        ] {
            let victim = format!("rg0#{member_index}");
            let label = format!("kill {victim} at {}", phase.label());
            let service = FusionService::start(
                ServiceConfig::builder()
                    .standard_workers(1)
                    .replica_groups(1)
                    .replication_level(2)
                    .shared_memory_executors(1)
                    .queue_capacity(8)
                    .max_in_flight(4)
                    .chaos(ChaosPlan::kill_at(1, phase, victim.clone()))
                    .build()
                    .expect("config validates"),
            )
            .expect("service starts");

            let mut jobs = Vec::new();
            for i in 0..3u64 {
                let cube = Arc::new(
                    SceneGenerator::new(small_job_scene(90 + i))
                        .unwrap()
                        .generate(),
                );
                let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                    .pinned(BackendKind::Resilient)
                    .shards(3)
                    .build()
                    .unwrap();
                jobs.push((service.submit(spec).unwrap(), cube));
            }
            for (mut handle, cube) in jobs {
                let outcome = handle.wait().unwrap();
                let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
                assert_eq!(
                    outcome.output().expect("job completes"),
                    &reference,
                    "{label}: job {} diverged",
                    handle.id()
                );
            }

            let report = service.shutdown();
            assert_eq!(report.jobs_completed, 3, "{label}: jobs lost");
            assert_eq!(
                report.members_attacked,
                vec![victim.clone()],
                "{label}: kill never fired"
            );
            assert!(
                report.regenerations >= 1,
                "{label}: killed member was never regenerated: {report:?}"
            );
            // The zero-copy acceptance criterion, measured per phase.
            assert_eq!(
                report.bytes_cloned_screen, 0,
                "{label}: screening cloned payload bytes"
            );
            assert_eq!(
                report.bytes_cloned_transform, 0,
                "{label}: transform cloned payload bytes"
            );
            assert!(
                report.payload_bytes_shipped > 0,
                "{label}: no payload accounted"
            );
        }
    }
}

/// A pool tuned for the standard-lane failover tests: the worker watchdog
/// confirms a suspect after ~30 ms of heartbeat silence (plus the mailbox
/// probe), so a kill is detected well inside the test window.
fn failover_pool(standard: usize, groups: usize, shm: usize) -> PoolConfig {
    PoolConfig {
        standard_workers: standard,
        replica_groups: groups,
        replication_level: 2,
        shared_memory_executors: shm,
        standard_detector: DetectorConfig {
            heartbeat_period_ms: 10,
            miss_threshold: 3,
        },
        ..PoolConfig::default()
    }
}

/// Submits `count` standard-pinned jobs and returns (handle, cube) pairs.
fn submit_standard_jobs(
    service: &FusionService,
    count: u64,
    seed_base: u64,
) -> Vec<(JobHandle, Arc<hsi::HyperCube>)> {
    (0..count)
        .map(|i| {
            let cube = Arc::new(
                SceneGenerator::new(small_job_scene(seed_base + i))
                    .unwrap()
                    .generate(),
            );
            let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .pinned(BackendKind::Standard)
                .shards(3)
                .build()
                .unwrap();
            (service.submit(spec).unwrap(), cube)
        })
        .collect()
}

/// Blocks until `count` [`ServiceEvent::WorkerLost`] events have appeared
/// on the subscription (the watchdog runs on its own clock, so the jobs
/// can finish before the loss is confirmed).
fn await_worker_losses(events: &service::EventSubscriber, count: usize, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seen = 0usize;
    while seen < count {
        assert!(
            Instant::now() < deadline,
            "{label}: only {seen}/{count} worker losses observed"
        );
        if let Some(ServiceEvent::WorkerLost { .. }) =
            events.next_timeout(Duration::from_millis(100))
        {
            seen += 1;
        }
    }
}

/// The standard-lane kill matrix (worker index × phase): killing either
/// worker of a two-worker lane at any phase of job 1 must lose **zero**
/// jobs — the watchdog confirms the silence, the dead worker's in-flight
/// tasks are re-dispatched to the survivor, and every output stays
/// byte-identical to the sequential reference.
#[test]
fn standard_kill_matrix_every_job_survives_and_is_byte_identical_to_sequential() {
    let mut total_reassigned = 0u64;
    for worker_index in 0..2usize {
        for phase in [
            ChaosPhase::Screen,
            ChaosPhase::Derive,
            ChaosPhase::Transform,
        ] {
            let victim = format!("svc{worker_index}");
            let label = format!("kill {victim} at {}", phase.label());
            let service = FusionService::start(
                ServiceConfig::builder()
                    .pool(failover_pool(2, 0, 0))
                    .queue_capacity(8)
                    .max_in_flight(4)
                    .chaos(ChaosPlan::kill_at(1, phase, victim.clone()))
                    .build()
                    .expect("config validates"),
            )
            .expect("service starts");
            let events = service.subscribe();

            for (mut handle, cube) in submit_standard_jobs(&service, 3, 150) {
                let outcome = handle.wait().unwrap();
                let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
                assert_eq!(
                    outcome.output().expect("job completes"),
                    &reference,
                    "{label}: job {} diverged",
                    handle.id()
                );
            }
            await_worker_losses(&events, 1, &label);

            let report = service.shutdown();
            assert_eq!(report.jobs_completed, 3, "{label}: jobs lost");
            assert_eq!(report.jobs_failed, 0, "{label}: a job failed");
            assert_eq!(
                report.members_attacked,
                vec![victim.clone()],
                "{label}: kill never fired"
            );
            assert_eq!(report.workers_lost, 1, "{label}: loss not confirmed");
            total_reassigned += report.tasks_reassigned;
        }
    }
    // At least the (svc0, screen) cell is deterministic: job 1's first
    // screening task lands on svc0 (free-list order), the kill anchors to
    // that dispatch, and the task must be re-issued to svc1.
    assert!(
        total_reassigned >= 1,
        "no task was ever reassigned across the matrix"
    );
}

/// Kill-during-reassignment: both svc0 and svc1 die at job 1's first
/// screening dispatch, so the re-dispatch of svc0's task lands on (or is
/// attempted at) the also-dead svc1 and must hop again to svc2 — the
/// orphan queue survives losing its new assignee.
#[test]
fn standard_kill_during_reassignment_still_completes_byte_identical() {
    let chaos = ChaosPlan {
        kills: vec![
            PhaseKill {
                job: 1,
                phase: ChaosPhase::Screen,
                member: "svc0".to_string(),
            },
            PhaseKill {
                job: 1,
                phase: ChaosPhase::Screen,
                member: "svc1".to_string(),
            },
        ],
    };
    let service = FusionService::start(
        ServiceConfig::builder()
            .pool(failover_pool(3, 0, 0))
            .queue_capacity(8)
            .max_in_flight(4)
            .chaos(chaos)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    let events = service.subscribe();

    for (mut handle, cube) in submit_standard_jobs(&service, 2, 170) {
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "job {} diverged",
            handle.id()
        );
    }
    await_worker_losses(&events, 2, "double kill");

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.workers_lost, 2);
    assert!(
        report.tasks_reassigned >= 1,
        "the orphaned screening task was never re-issued: {report:?}"
    );
}

/// Losing the *last* standard worker drains the lane: running standard
/// jobs must fail over to a surviving lane through the routing policy
/// (resilient when only replica groups remain, shared-memory when only
/// inline executors remain) and still finish byte-identical — and when no
/// other lane exists, the job fails with a diagnosis instead of hanging.
#[test]
fn standard_lane_drain_fails_over_running_jobs_to_surviving_lanes() {
    for (groups, shm, expect_lane) in [
        (1usize, 0usize, BackendKind::Resilient),
        (0, 1, BackendKind::SharedMemory),
    ] {
        let label = format!("failover to {}", expect_lane.label());
        let service = FusionService::start(
            ServiceConfig::builder()
                .pool(failover_pool(1, groups, shm))
                .queue_capacity(8)
                .max_in_flight(4)
                .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "svc0"))
                .build()
                .expect("config validates"),
        )
        .expect("service starts");
        let events = service.subscribe();

        let mut jobs = submit_standard_jobs(&service, 1, 180);
        let (handle, cube) = &mut jobs[0];
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "{label}: output diverged"
        );

        // The failover must have been announced with the expected target.
        let deadline = Instant::now() + Duration::from_secs(20);
        let observed = loop {
            assert!(Instant::now() < deadline, "{label}: no LaneFailover event");
            match events.next_timeout(Duration::from_millis(100)) {
                Some(ServiceEvent::LaneFailover { from, to, .. }) => {
                    assert_eq!(from, BackendKind::Standard, "{label}");
                    break to;
                }
                _ => continue,
            }
        };
        assert_eq!(observed, expect_lane, "{label}: wrong target lane");

        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 1, "{label}: job lost");
        assert_eq!(report.jobs_failed, 0, "{label}: job failed");
        assert_eq!(report.workers_lost, 1, "{label}: loss not confirmed");
        assert_eq!(report.lane_failovers, 1, "{label}: failover not counted");
    }

    // No surviving lane at all: the job must fail with a diagnosis.
    let service = FusionService::start(
        ServiceConfig::builder()
            .pool(failover_pool(1, 0, 0))
            .queue_capacity(8)
            .max_in_flight(4)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "svc0"))
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    let mut jobs = submit_standard_jobs(&service, 1, 185);
    match jobs[0].0.wait().unwrap() {
        JobOutcome::Failed(cause) => assert!(
            cause.contains("standard lane drained"),
            "unexpected failure cause: {cause}"
        ),
        other => panic!("expected a failed job, got {:?}", other.status()),
    }
    let report = service.shutdown();
    assert_eq!(report.jobs_failed, 1);
    assert_eq!(report.workers_lost, 1);
}

/// A remote-worker spec that spawns the `fusiond-worker` binary built by
/// this workspace; the service appends its listener address as the final
/// argument.
fn spawn_worker_spec() -> RemoteWorkerSpec {
    RemoteWorkerSpec::Spawn {
        command: env!("CARGO_BIN_EXE_fusiond-worker").to_string(),
        args: Vec::new(),
    }
}

/// A pool whose only lane is remote worker *processes*, with the fast
/// watchdog from [`failover_pool`] so a killed process is confirmed lost
/// well inside the test window.
fn remote_pool(workers: usize) -> PoolConfig {
    PoolConfig {
        standard_workers: 0,
        replica_groups: 0,
        shared_memory_executors: 0,
        remote_workers: (0..workers).map(|_| spawn_worker_spec()).collect(),
        standard_detector: DetectorConfig {
            heartbeat_period_ms: 10,
            miss_threshold: 3,
        },
        ..PoolConfig::default()
    }
}

/// The wire-protocol acceptance criterion: a fusion job whose workers are
/// separate OS processes — spawned `fusiond-worker` binaries spoken to over
/// TCP with the versioned `wire` codec — produces output **byte-identical**
/// to `SequentialPct`.  The remote lane is the *only* lane configured, so
/// every task provably crossed the process boundary.
#[test]
fn remote_worker_processes_produce_byte_identical_output_over_tcp() {
    let service = FusionService::start(
        ServiceConfig::builder()
            .pool(remote_pool(2))
            .queue_capacity(8)
            .max_in_flight(4)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    // Spawned workers are real child processes with observable pids.
    let workers = service.remote_workers().to_vec();
    assert_eq!(workers.len(), 2);
    for (name, pid) in &workers {
        assert!(
            pid.is_some(),
            "spawned worker {name} has no pid: {workers:?}"
        );
    }

    let mut jobs = Vec::new();
    for i in 0..3u64 {
        let cube = Arc::new(
            SceneGenerator::new(small_job_scene(200 + i))
                .unwrap()
                .generate(),
        );
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .pinned(BackendKind::Remote)
            .shards(3)
            .build()
            .unwrap();
        jobs.push((service.submit(spec).unwrap(), cube));
    }
    for (mut handle, cube) in jobs {
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "job {} diverged from sequential across the process boundary",
            handle.id()
        );
    }

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 3);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.route(BackendKind::Remote).jobs_routed, 3);
}

/// The remote-lane chaos drill: `kill -9` one of two worker *processes*
/// mid-screen.  The process cannot flush, warn, or clean up — its socket
/// just dies — yet the bridge's exit surfaces through the same watchdog
/// that covers standard threads: the loss is confirmed, the in-flight task
/// is orphaned and re-dispatched to the surviving process, and the output
/// stays byte-identical to `SequentialPct` with zero job failures.
#[test]
fn remote_worker_sigkill_mid_screen_reassigns_tasks_and_stays_byte_identical() {
    let service = FusionService::start(
        ServiceConfig::builder()
            .pool(remote_pool(2))
            .queue_capacity(8)
            .max_in_flight(4)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    let events = service.subscribe();

    // A slow cube so the first screening task is still running on rw0 when
    // the kill lands (free-deque order guarantees rw0 gets it).
    let cube = Arc::new(SceneGenerator::new(slow_job_scene(210)).unwrap().generate());
    let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
        .pinned(BackendKind::Remote)
        .shards(3)
        .build()
        .unwrap();
    let mut handle = service.submit(spec).unwrap();

    // Wait for the first remote dispatch, then SIGKILL the worker process
    // it went to.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "no remote dispatch observed");
        match events.next_timeout(Duration::from_millis(100)) {
            Some(ServiceEvent::Dispatched {
                route: BackendKind::Remote,
                ..
            }) => break,
            _ => continue,
        }
    }
    let victim_pid = service
        .remote_workers()
        .iter()
        .find(|(name, _)| name == "rw0")
        .and_then(|(_, pid)| *pid)
        .expect("rw0 has a pid");
    let killed = std::process::Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(killed.success(), "kill -9 {victim_pid} failed");

    let outcome = handle.wait().unwrap();
    let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
    assert_eq!(
        outcome.output().expect("job completes"),
        &reference,
        "output diverged after SIGKILL of a worker process"
    );
    await_worker_losses(&events, 1, "remote sigkill");

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 1, "job lost: {report:?}");
    assert_eq!(report.jobs_failed, 0, "job failed: {report:?}");
    assert_eq!(report.workers_lost, 1, "loss not confirmed: {report:?}");
    assert!(
        report.tasks_reassigned >= 1,
        "the killed worker's task was never re-dispatched: {report:?}"
    );
}

/// The ingest-under-pressure chaos scenario: a folder of cube files is
/// replayed into a deliberately tiny resilient-lane service while a chaos
/// plan kills a replica mid-screen of the first (big) arrival.  The burst
/// behind the blocker overruns the in-flight-bytes watermark, so shedding
/// kicks in **deterministically** (the blocker occupies the only in-flight
/// slot for far longer than the microseconds the pump needs to process the
/// burst, and queued jobs cannot reach a terminal state behind it) — and
/// every *admitted* cube still fuses byte-identical to `SequentialPct`,
/// kill, regeneration and shedding notwithstanding.
#[test]
fn ingest_under_pressure_sheds_deterministically_and_admitted_cubes_fuse_exactly() {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(0)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(0)
            .queue_capacity(16)
            .max_in_flight(1)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#0"))
            .build()
            .expect("config validates"),
    )
    .expect("service starts");

    // The arrival schedule on disk: one big blocker, then a burst of five
    // small cubes in mixed interleaves (sorted replay order).
    let dir = std::env::temp_dir().join(format!("e2e_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = slow_job_scene(130);
    let small = small_job_scene(131);
    let blocker_bytes = blocker.dims.byte_size();
    let small_bytes = small.dims.byte_size();
    let mut total_payload = 0u64;
    for (i, config) in std::iter::once(blocker)
        .chain((0..5).map(|i| small_job_scene(140 + i)))
        .enumerate()
    {
        let cube = SceneGenerator::new(config).unwrap().generate();
        total_payload += cube.byte_size() as u64;
        let name = if i == 0 {
            "00_blocker.hsif".to_string()
        } else {
            format!("{i:02}_burst.hsif")
        };
        io::write_cube_as(&cube, hsi::Interleave::ALL[i % 3], dir.join(name)).unwrap();
    }

    // Watermark: the blocker plus exactly two burst cubes may be in flight.
    let config = IngestConfig {
        shedding: SheddingPolicy::unbounded()
            .with_max_in_flight_bytes(blocker_bytes + 2 * small_bytes),
        route: Route::Pinned(BackendKind::Resilient),
        shards: 3,
        ..IngestConfig::default()
    };
    let run = IngestPump::new(&service, config)
        .run(vec![Box::new(DirectorySource::with_chunk_bytes(
            &dir, 8192,
        ))])
        .expect("pump runs");
    std::fs::remove_dir_all(&dir).ok();
    let report = service.shutdown();

    // Shedding was deterministic: the tail of the burst, in arrival order.
    let totals = run.report.totals();
    assert_eq!(totals.cubes_seen, 6);
    assert_eq!(totals.cubes_admitted, 3, "blocker + two burst cubes");
    assert_eq!(totals.shed_in_flight_bytes, 3);
    assert_eq!(totals.cubes_shed(), 3);
    assert_eq!(
        run.shed.iter().map(|s| s.tag.as_str()).collect::<Vec<_>>(),
        vec!["03_burst.hsif", "04_burst.hsif", "05_burst.hsif"]
    );
    assert!(run
        .shed
        .iter()
        .all(|s| s.reason == ShedReason::InFlightBytes));
    assert_eq!(
        totals.bytes_assembled, total_payload,
        "shed cubes decode too"
    );
    assert_eq!(totals.decode_errors, 0);

    // The chaos kill fired and the member was regenerated mid-ingest.
    assert_eq!(report.members_attacked, vec!["rg0#0".to_string()]);
    assert!(report.regenerations >= 1, "killed member never regenerated");

    // Every admitted cube fused byte-identical to the sequential reference.
    assert_eq!(run.report.jobs_completed, 3);
    for job in &run.jobs {
        let reference = SequentialPct::new(PctConfig::paper())
            .run(&job.cube)
            .unwrap();
        assert_eq!(
            job.outcome.output().expect("job completes"),
            &reference,
            "{} diverged under pressure + chaos",
            job.tag
        );
    }
}

#[test]
fn screening_threshold_trades_unique_set_size_for_work() {
    let cube = test_scene(5);
    let tight = SequentialPct::new(PctConfig {
        screening_angle_rad: 1.0_f64.to_radians(),
        output_components: 3,
    })
    .run(&cube)
    .unwrap();
    let loose = SequentialPct::new(PctConfig {
        screening_angle_rad: 15.0_f64.to_radians(),
        output_components: 3,
    })
    .run(&cube)
    .unwrap();
    assert!(tight.unique_count > loose.unique_count);
    // Both still compact the variance into the leading components.
    assert!(tight.variance_fraction(3) > 0.9);
    assert!(loose.variance_fraction(3) > 0.9);
}

/// The telemetry acceptance criterion: a chaos run with the flight recorder
/// on yields a span tree in which detection, regeneration and recompute all
/// nest inside the affected job's lifetime with intact parent links and
/// causal ordering — while the output stays byte-identical to the
/// sequential reference — and the Chrome-trace JSON artifact written from
/// the recorder renders the whole story.
#[test]
fn chaos_trace_nests_detect_regenerate_recompute_under_the_affected_job() {
    let telemetry = telemetry::Telemetry::enabled();
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(0)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#1"))
            .telemetry(telemetry.clone())
            .build()
            .unwrap(),
    )
    .unwrap();

    let cube = Arc::new(
        SceneGenerator::new(small_job_scene(140))
            .unwrap()
            .generate(),
    );
    let mut handle = service
        .submit(
            JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .pinned(BackendKind::Resilient)
                .shards(3)
                .build()
                .unwrap(),
        )
        .unwrap();
    let id = handle.id();
    let outcome = handle.wait().unwrap();

    // Byte-identity survives the kill: telemetry observes, never perturbs.
    let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
    assert_eq!(
        outcome.output().expect("job completed"),
        &reference,
        "chaos run diverged from sequential"
    );
    let report = service.shutdown();
    assert!(report.regenerations >= 1, "kill never regenerated");

    // The span tree, as the flight recorder kept it.
    let spans = telemetry.spans();
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name && s.job == Some(id))
            .unwrap_or_else(|| {
                panic!(
                    "no {name} span for job {id}; recorded: {:?}",
                    spans.iter().map(|s| s.name).collect::<Vec<_>>()
                )
            })
    };
    let job = find("job");
    let queued = find("queued");
    let screen = find("screen");
    let detect = find("detect");
    let regenerate = find("regenerate");
    let recompute = find("recompute");

    // Parent links: queued and the first phase hang off the job root; the
    // resilience spans are parented into the tree (at the attacked phase).
    assert_eq!(job.parent, None, "job root must be unparented");
    assert_eq!(queued.parent, Some(job.id));
    assert_eq!(screen.parent, Some(job.id));
    assert_eq!(
        detect.parent,
        Some(screen.id),
        "detect hangs off the attacked phase"
    );
    for (name, span) in [("regenerate", regenerate), ("recompute", recompute)] {
        assert!(span.parent.is_some(), "{name} span unparented");
    }

    // Nesting: everything lies inside the job's lifetime, and the terminal
    // detail on the root records the outcome.
    for (name, span) in [
        ("queued", queued),
        ("screen", screen),
        ("detect", detect),
        ("regenerate", regenerate),
        ("recompute", recompute),
    ] {
        assert!(
            job.encloses(span),
            "{name} span [{}, {}] escapes job [{}, {}]",
            span.start_nanos,
            span.end_nanos,
            job.start_nanos,
            job.end_nanos
        );
    }
    assert_eq!(job.detail, "completed");

    // Causal order: the kill is detected before the member is regenerated,
    // and lost work is recomputed only after regeneration begins.  The
    // detect span is back-dated to the kill instant, so it starts at or
    // before the regeneration that reacts to it.
    assert!(detect.start_nanos <= regenerate.start_nanos);
    assert!(detect.end_nanos <= regenerate.end_nanos);
    assert!(regenerate.start_nanos <= recompute.start_nanos);

    // The Chrome-trace artifact: written where CI can pick it up, and it
    // renders the resilience story (span + instant names survive export).
    let trace = telemetry.chrome_trace().expect("enabled telemetry");
    let path = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos_trace.json");
    std::fs::write(&path, &trace).expect("trace artifact written");
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("\"traceEvents\""));
    for name in [
        "\"job\"",
        "\"screen\"",
        "\"detect\"",
        "\"regenerate\"",
        "\"recompute\"",
        "\"kill\"",
    ] {
        assert!(
            written.contains(name),
            "trace artifact missing {name} events"
        );
    }
}
