//! Property suite for the admission plane's deterministic weighted fair
//! queue ([`service::DrrQueue`]).
//!
//! Checked over seeded arbitrary arrival schedules (tenant count, weights,
//! interleaving and priorities all drawn per case):
//!
//! * **fairness bound** — deficit round-robin never lets a tenant get
//!   ahead of its weight share by more than one round's worth: for any two
//!   tenants that are still backlogged, the normalized service difference
//!   `|served_a/weight_a - served_b/weight_b|` never exceeds 1;
//! * **work conservation** — every queued job is eventually dequeued;
//! * **replayability** — the same arrival schedule always dequeues in the
//!   same order (the determinism the chaos e2e relies on);
//! * **degeneration** — with a single tenant the queue is exactly the old
//!   global priority-then-FIFO queue.

use proptest::prelude::*;
use service::{DrrQueue, Priority, TenantId};

fn priority_of(code: usize) -> Priority {
    match code % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// Decodes a schedule of raw codes into `(tenant, priority)` arrivals and
/// pushes them; returns per-tenant push counts.
fn push_schedule(q: &mut DrrQueue<usize>, weights: &[usize], schedule: &[usize]) -> Vec<usize> {
    let n = weights.len();
    let mut pushed = vec![0usize; n];
    for (i, code) in schedule.iter().enumerate() {
        let t = code % n;
        q.push(
            TenantId(t as u64),
            weights[t] as u64,
            priority_of(code / n),
            i,
        );
        pushed[t] += 1;
    }
    pushed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drr_never_exceeds_weight_share_by_more_than_one_round(
        weights in prop::collection::vec(1usize..5, 2..5),
        schedule in prop::collection::vec(0usize..64, 30..120),
    ) {
        let n = weights.len();
        let mut q = DrrQueue::new();
        let pushed = push_schedule(&mut q, &weights, &schedule);
        let total: usize = pushed.iter().sum();
        let mut served = vec![0usize; n];
        let mut popped = 0usize;
        while let Some((tenant, _)) = q.pop() {
            served[tenant.0 as usize] += 1;
            popped += 1;
            // The bound applies between tenants that are both still
            // backlogged (a drained tenant stops competing, by design).
            for a in 0..n {
                for b in (a + 1)..n {
                    if served[a] < pushed[a] && served[b] < pushed[b] {
                        let na = served[a] as f64 / weights[a] as f64;
                        let nb = served[b] as f64 / weights[b] as f64;
                        prop_assert!(
                            (na - nb).abs() <= 1.0 + 1e-9,
                            "tenant {a} (w{}, {}/{}) vs tenant {b} (w{}, {}/{}) \
                             diverged past one round after {popped} pops",
                            weights[a], served[a], pushed[a],
                            weights[b], served[b], pushed[b],
                        );
                    }
                }
            }
        }
        // Work conservation: nothing queued is ever stranded.
        prop_assert_eq!(popped, total);
    }

    #[test]
    fn drr_dequeue_order_is_replayable(
        weights in prop::collection::vec(1usize..6, 2..5),
        schedule in prop::collection::vec(0usize..64, 10..60),
    ) {
        let run = || {
            let mut q = DrrQueue::new();
            push_schedule(&mut q, &weights, &schedule);
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn single_tenant_drr_is_exactly_the_priority_fifo_queue(
        codes in prop::collection::vec(0usize..3, 1..40),
    ) {
        let mut q = DrrQueue::new();
        for (i, code) in codes.iter().enumerate() {
            q.push(TenantId::default(), 1, priority_of(*code), i);
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, x)| x).collect();
        // Reference: priority descending, FIFO within a priority.
        let mut expected: Vec<usize> = (0..codes.len()).collect();
        expected.sort_by_key(|&i| std::cmp::Reverse(priority_of(codes[i]).rank()));
        prop_assert_eq!(got, expected);
    }
}
