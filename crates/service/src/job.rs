//! Job specifications, identifiers, priorities and lifecycle states.

use crate::admission::{JobClass, TenantId};
use crate::config::ConfigError;
use crate::routing::Route;
use crate::Result;
use hsi::{HyperCube, SceneConfig, SceneGenerator};
use pct::PctConfig;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of one submitted fusion job, unique within a service instance.
pub type JobId = u64;

/// Scheduling priority of a job.  Higher priorities are admitted and
/// dispatched first; within a priority, jobs run in submission order.
///
/// Variants are declared least-urgent first so the derived `Ord` agrees
/// with [`Priority::rank`]: `Low < Normal < High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Dispatched only when nothing more urgent is runnable.
    Low,
    /// The default.
    Normal,
    /// Dispatched before everything else.
    High,
}

impl Priority {
    /// All priorities, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Numeric urgency used for queue ordering (larger is more urgent).
    pub fn rank(&self) -> u8 {
        *self as u8
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Which pool lane executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Plain long-lived worker threads (no replication).
    Standard,
    /// Replica groups with failure detection and regeneration: the job
    /// survives worker kills with byte-identical output.
    Resilient,
    /// In-process execution on a dedicated shared-memory executor thread:
    /// the whole job runs start-to-finish against the shared cube with zero
    /// protocol messages — the cheapest path for small cubes.
    SharedMemory,
    /// Worker processes outside the service's address space, spoken to over
    /// the versioned `wire` protocol (framed, CRC-checked TCP).  Same task
    /// loop and liveness contract as the standard lane, across a process
    /// boundary.
    Remote,
}

impl BackendKind {
    /// Every lane, in the scheduler's preference order.  Remote comes last:
    /// it is the only lane that pays serialisation and a process boundary
    /// per task, so the clamp never prefers it over an in-process lane.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Standard,
        BackendKind::Resilient,
        BackendKind::SharedMemory,
        BackendKind::Remote,
    ];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Standard => "standard",
            BackendKind::Resilient => "resilient",
            BackendKind::SharedMemory => "shared-memory",
            BackendKind::Remote => "remote",
        }
    }
}

/// Where a job's cube comes from.
#[derive(Debug, Clone)]
pub enum CubeSource {
    /// A cube already in memory, shared without copying.
    InMemory(Arc<HyperCube>),
    /// A synthetic scene generated at admission time from its config — the
    /// deterministic stand-in for an ingestion path that loads data on
    /// demand.
    Synthetic(SceneConfig),
}

impl CubeSource {
    /// Materialises the cube.
    pub fn realize(&self) -> Result<Arc<HyperCube>> {
        match self {
            CubeSource::InMemory(cube) => Ok(Arc::clone(cube)),
            CubeSource::Synthetic(config) => {
                let generator = SceneGenerator::new(config.clone())?;
                Ok(Arc::new(generator.generate()))
            }
        }
    }

    /// Payload bytes of the cube this source yields, used for the
    /// admission plane's in-flight byte accounting (exact for in-memory
    /// cubes, derived from the dimensions for synthetic scenes).
    pub fn payload_bytes(&self) -> usize {
        match self {
            CubeSource::InMemory(cube) => cube.byte_size(),
            CubeSource::Synthetic(config) => config.dims.byte_size(),
        }
    }
}

/// Everything the service needs to run one fusion job.
///
/// Build one with [`JobSpec::builder`], which validates as it goes:
///
/// ```
/// use hsi::SceneConfig;
/// use service::{CubeSource, JobSpec, Priority, Route};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1)))
///     .route(Route::Auto)
///     .priority(Priority::High)
///     .shards(3)
///     .build()?;
/// assert_eq!(spec.route, Route::Auto);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The cube to fuse.
    pub source: CubeSource,
    /// Pipeline configuration (screening angle, output components).
    pub config: PctConfig,
    /// Which pool lane executes the job: pinned, or resolved by the
    /// service's routing policy at admission.
    pub route: Route,
    /// Scheduling priority.
    pub priority: Priority,
    /// The tenant the job is submitted on behalf of (fairness and quota
    /// accounting; defaults to [`TenantId`]`(0)`).
    pub tenant: TenantId,
    /// How the admission plane may degrade the job under pressure.
    pub class: JobClass,
    /// Number of sub-cubes the job is sharded into (clamped to the cube's
    /// row count at admission).  The decomposition is fixed per job, so the
    /// output does not depend on pool width.
    pub shards: usize,
    /// Optional deadline measured from admission; an expired job is
    /// abandoned with [`crate::JobStatus::TimedOut`].
    pub timeout: Option<Duration>,
}

/// Validating builder for [`JobSpec`] — see [`JobSpec::builder`].
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Overrides the pipeline configuration.
    pub fn config(mut self, config: PctConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Sets the route (pinned lane or [`Route::Auto`]).
    pub fn route(mut self, route: impl Into<Route>) -> Self {
        self.spec.route = route.into();
        self
    }

    /// Pins the job to a concrete lane (shorthand for
    /// `.route(Route::Pinned(kind))`).
    pub fn pinned(self, kind: BackendKind) -> Self {
        self.route(Route::Pinned(kind))
    }

    /// Overrides the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.spec.priority = priority;
        self
    }

    /// Attributes the job to a tenant.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.spec.tenant = tenant;
        self
    }

    /// Overrides the admission class.
    pub fn class(mut self, class: JobClass) -> Self {
        self.spec.class = class;
        self
    }

    /// Overrides the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Sets a deadline relative to admission.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.spec.timeout = Some(timeout);
        self
    }

    /// Validates and produces the spec.
    pub fn build(self) -> std::result::Result<JobSpec, ConfigError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

impl JobSpec {
    /// Creates a spec with the paper configuration, automatic routing,
    /// normal priority and four shards.
    pub fn new(source: CubeSource) -> Self {
        Self {
            source,
            config: PctConfig::paper(),
            route: Route::Auto,
            priority: Priority::Normal,
            tenant: TenantId::default(),
            class: JobClass::default(),
            shards: 4,
            timeout: None,
        }
    }

    /// Starts a validating builder from the defaults of [`JobSpec::new`].
    pub fn builder(source: CubeSource) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec::new(source),
        }
    }

    /// Overrides the pipeline configuration.
    pub fn with_config(mut self, config: PctConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the route (pinned lane or [`Route::Auto`]).
    pub fn with_route(mut self, route: impl Into<Route>) -> Self {
        self.route = route.into();
        self
    }

    /// Overrides the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attributes the job to a tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Overrides the admission class.
    pub fn with_class(mut self, class: JobClass) -> Self {
        self.class = class;
        self
    }

    /// Overrides the shard count (at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets a deadline relative to admission.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Materialises a synthetic source into an in-memory cube.  The front
    /// end calls this on the submitting thread so scene generation never
    /// stalls the scheduler's dispatch/result loop.
    pub fn into_realized(mut self) -> Result<Self> {
        let cube = self.source.realize()?;
        self.source = CubeSource::InMemory(cube);
        Ok(self)
    }

    /// Validates the spec, returning the typed configuration error.  This
    /// is the single validation path: [`JobSpecBuilder::build`] calls it,
    /// and the submission front end re-checks hand-built specs through it.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        self.config
            .validate()
            .map_err(|e| ConfigError::Pipeline(e.to_string()))?;
        Ok(())
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted into the admission queue, not yet scheduled.
    Queued,
    /// Admitted by the scheduler; tasks are in flight.
    Running,
    /// Finished successfully; the output is available.
    Completed,
    /// Finished unsuccessfully.
    Failed,
    /// Cancelled by the client before completion.
    Cancelled,
    /// Abandoned after exceeding its deadline.
    TimedOut,
}

impl JobStatus {
    /// Whether the status is final (no further transitions).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled | JobStatus::TimedOut
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceError;
    use hsi::CubeDims;

    #[test]
    fn spec_builders_compose() {
        let spec = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1)))
            .pinned(BackendKind::Resilient)
            .priority(Priority::High)
            .tenant(TenantId(7))
            .class(JobClass::Bulk)
            .shards(2)
            .timeout(Duration::from_secs(5))
            .build()
            .unwrap();
        assert_eq!(spec.route, Route::Pinned(BackendKind::Resilient));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.tenant, TenantId(7));
        assert_eq!(spec.class, JobClass::Bulk);
        assert_eq!(spec.shards, 2);
        assert!(spec.timeout.is_some());
        assert!(spec.validate().is_ok());
        // The defaults keep pre-tenancy call sites on the public tenant.
        let plain = JobSpec::new(CubeSource::Synthetic(SceneConfig::small(1)));
        assert_eq!(plain.tenant, TenantId::default());
        assert_eq!(plain.class, JobClass::Standard);
    }

    #[test]
    fn builder_rejects_invalid_specs_with_typed_errors() {
        let err = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1)))
            .shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroShards);

        let mut config = PctConfig::paper();
        config.output_components = 0;
        let err = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1)))
            .config(config)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Pipeline(_)));
        // Typed config errors convert into the service error for `?` use.
        assert!(matches!(
            ServiceError::from(err),
            ServiceError::InvalidConfig(_)
        ));
    }

    #[test]
    fn route_setters_pin_and_default_to_auto() {
        let spec = JobSpec::new(CubeSource::Synthetic(SceneConfig::small(1)))
            .with_route(Route::Pinned(BackendKind::SharedMemory));
        assert_eq!(spec.route, Route::Pinned(BackendKind::SharedMemory));
        assert_eq!(
            JobSpec::new(CubeSource::Synthetic(SceneConfig::small(1))).route,
            Route::Auto,
            "the default route is Auto"
        );
    }

    #[test]
    fn invalid_pipeline_config_is_rejected() {
        let mut spec = JobSpec::new(CubeSource::Synthetic(SceneConfig::small(1)));
        spec.config.output_components = 0;
        assert!(matches!(spec.validate(), Err(ConfigError::Pipeline(_))));
    }

    #[test]
    fn synthetic_source_is_deterministic() {
        let mut config = SceneConfig::small(9);
        config.dims = CubeDims::new(8, 8, 4);
        let source = CubeSource::Synthetic(config);
        let a = source.realize().unwrap();
        let b = source.realize().unwrap();
        assert_eq!(*a, *b);
    }

    #[test]
    fn in_memory_source_shares_the_cube() {
        let cube = Arc::new(HyperCube::zeros(CubeDims::new(2, 2, 2)));
        let source = CubeSource::InMemory(Arc::clone(&cube));
        let realized = source.realize().unwrap();
        assert!(Arc::ptr_eq(&cube, &realized));
    }

    #[test]
    fn priority_ranks_and_labels() {
        assert!(Priority::High.rank() > Priority::Normal.rank());
        assert!(Priority::Normal.rank() > Priority::Low.rank());
        // The derived Ord must agree with rank(), so either ordering is safe.
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::ALL.len(), 3);
        assert_eq!(Priority::High.label(), "high");
        assert_eq!(BackendKind::Resilient.label(), "resilient");
        assert_eq!(BackendKind::SharedMemory.label(), "shared-memory");
        assert_eq!(BackendKind::Remote.label(), "remote");
        assert_eq!(BackendKind::ALL.len(), 4);
    }

    #[test]
    fn into_realized_materialises_synthetic_sources() {
        let spec = JobSpec::new(CubeSource::Synthetic(SceneConfig::small(2)))
            .into_realized()
            .unwrap();
        assert!(matches!(spec.source, CubeSource::InMemory(_)));
        // Already-in-memory sources pass through untouched.
        let again = spec.into_realized().unwrap();
        assert!(matches!(again.source, CubeSource::InMemory(_)));
    }

    #[test]
    fn terminal_statuses() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Completed.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::TimedOut.is_terminal());
    }
}
