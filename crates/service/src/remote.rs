//! The remote worker-process lane: `fusiond` crossing the process boundary.
//!
//! Every other lane shares the service's address space; this one does not.
//! Each remote worker is a separate endpoint — usually a separate OS
//! process — reached over a [`wire::Transport`] carrying framed,
//! CRC-checked, version-handshaken messages.  The scheduler stays oblivious:
//! it addresses remote workers by routing name (`rw0`, `rw1`, ...) through
//! the same `scp` message plane it uses for the standard lane, and a
//! *bridge thread* per worker relays between the mailbox and the socket:
//!
//! ```text
//!  scheduler ──ctx.send("rw0")──▶ bridge ──wire frames──▶ worker process
//!  scheduler ◀──send(MANAGER)─── bridge ◀──wire frames── (heartbeats,
//!                                                          replies)
//! ```
//!
//! Failure detection needs no new machinery.  The bridge exits on any
//! transport error — a `kill -9`'d worker closes its socket — and takes its
//! mailbox receiver with it, so the scheduler's existing watchdog probe gets
//! `ScpError::Disconnected` on the next send: exactly the signal a lost
//! standard-lane *thread* produces.  From there the established loss path
//! runs unchanged: confirm → orphan in-flight tasks → re-dispatch → lane
//! failover if the lane is empty.
//!
//! Connection establishment is synchronous in [`RemoteLane::start`]
//! (including the protocol-version handshake), so a mismatched or absent
//! worker fails service start with a typed error instead of a dead lane.

use crate::config::RemoteWorkerSpec;
use crate::{Result, ServiceError};
use pct::distributed::MANAGER;
use pct::messages::PctMessage;
use scp::{Runtime, ScpError, ThreadContext};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use wire::worker::HANDSHAKE_TIMEOUT;
use wire::{handshake, TcpTransport, Transport, WireMessage};

/// How long the service waits for a spawned worker to dial back in.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// Bridge relay tick: how long each side of the relay is polled before the
/// other gets a turn.  Small, so neither direction starves the other.
const RELAY_TICK: Duration = Duration::from_millis(5);

/// One remote worker: its routing name, how to observe the process (when
/// there is one), and the bridge thread relaying its traffic.
struct RemoteWorkerHandle {
    name: String,
    pid: Option<u32>,
    child: Option<std::process::Child>,
    bridge: Option<std::thread::JoinHandle<()>>,
    /// In-process protocol thread of [`RemoteWorkerSpec::Thread`] workers.
    worker_thread: Option<std::thread::JoinHandle<()>>,
}

/// The remote lane: all workers, started together, shut down together.
pub(crate) struct RemoteLane {
    /// Routing names of the remote workers (`rw0`, `rw1`, ...).
    pub workers: Vec<String>,
    handles: Vec<RemoteWorkerHandle>,
}

impl RemoteLane {
    /// Establishes every configured worker — spawning processes or threads,
    /// accepting their connections, running the version handshake — and
    /// starts one bridge thread per worker.
    pub fn start(runtime: &Runtime<PctMessage>, specs: &[RemoteWorkerSpec]) -> Result<RemoteLane> {
        let mut workers = Vec::new();
        let mut handles = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let name = format!("rw{i}");
            let ctx = runtime.context(name.clone())?;
            let (mut transport, child, worker_thread) = establish(&name, spec)?;
            handshake(&mut transport, HANDSHAKE_TIMEOUT)?;
            let pid = child.as_ref().map(|c| c.id());
            let bridge = std::thread::Builder::new()
                .name(format!("fusiond-bridge-{name}"))
                .spawn(move || bridge_loop(ctx, transport))
                .map_err(|e| ServiceError::Internal(format!("spawning bridge thread: {e}")))?;
            workers.push(name.clone());
            handles.push(RemoteWorkerHandle {
                name,
                pid,
                child,
                bridge: Some(bridge),
                worker_thread,
            });
        }
        Ok(RemoteLane { workers, handles })
    }

    /// `(routing name, OS pid)` of every worker; the pid is `None` for
    /// workers that are not separate processes ([`RemoteWorkerSpec::Thread`]
    /// and [`RemoteWorkerSpec::Connect`]).
    pub fn worker_pids(&self) -> Vec<(String, Option<u32>)> {
        self.handles
            .iter()
            .map(|h| (h.name.clone(), h.pid))
            .collect()
    }

    /// Joins the bridges and reaps worker processes.  The scheduler has
    /// already sent `Shutdown` through each worker's mailbox by the time
    /// this runs; a worker that died earlier (chaos) has a dead bridge and
    /// a zombie child, both of which this collects.
    pub fn shutdown(&mut self) {
        for handle in &mut self.handles {
            if let Some(bridge) = handle.bridge.take() {
                let _ = bridge.join();
            }
            if let Some(worker) = handle.worker_thread.take() {
                let _ = worker.join();
            }
            if let Some(mut child) = handle.child.take() {
                let _ = child.wait();
            }
        }
    }
}

/// Brings one worker endpoint up per its spec and returns the connected
/// transport plus whatever owns the far side (a child process, an
/// in-process thread, or nothing for `Connect`).
#[allow(clippy::type_complexity)]
fn establish(
    name: &str,
    spec: &RemoteWorkerSpec,
) -> Result<(
    TcpTransport,
    Option<std::process::Child>,
    Option<std::thread::JoinHandle<()>>,
)> {
    match spec {
        RemoteWorkerSpec::Spawn { command, args } => {
            let (listener, addr) = bind_loopback(name)?;
            let child = std::process::Command::new(command)
                .args(args)
                .arg(&addr)
                .spawn()
                .map_err(|e| {
                    ServiceError::Internal(format!(
                        "spawning remote worker {name} ({command}): {e}"
                    ))
                })?;
            let stream = accept_with_deadline(&listener, name)?;
            Ok((TcpTransport::new(stream)?, Some(child), None))
        }
        RemoteWorkerSpec::Connect { addr } => {
            let transport = TcpTransport::connect(addr).map_err(|e| {
                ServiceError::Internal(format!("connecting to remote worker {name} at {addr}: {e}"))
            })?;
            Ok((transport, None, None))
        }
        RemoteWorkerSpec::Thread => {
            let (listener, addr) = bind_loopback(name)?;
            let thread_name = format!("fusiond-remote-{name}");
            let worker = std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || {
                    // The full protocol path — real TCP, real frames, real
                    // handshake — only the process boundary is elided.
                    if let Ok(mut transport) = TcpTransport::connect(&addr) {
                        let _ = wire::worker::run_worker(&mut transport);
                    }
                })
                .map_err(|e| ServiceError::Internal(format!("spawning worker thread: {e}")))?;
            let stream = accept_with_deadline(&listener, name)?;
            Ok((TcpTransport::new(stream)?, None, Some(worker)))
        }
    }
}

/// Binds an ephemeral loopback listener for one worker to dial into.
fn bind_loopback(name: &str) -> Result<(TcpListener, String)> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| ServiceError::Internal(format!("binding listener for {name}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServiceError::Internal(format!("listener address for {name}: {e}")))?
        .to_string();
    Ok((listener, addr))
}

/// Accepts one connection, polling so a worker that never dials in fails
/// service start with a typed error instead of hanging it.
fn accept_with_deadline(listener: &TcpListener, name: &str) -> Result<TcpStream> {
    listener
        .set_nonblocking(true)
        .map_err(|e| ServiceError::Internal(format!("listener mode for {name}: {e}")))?;
    let deadline = Instant::now() + ACCEPT_TIMEOUT;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| ServiceError::Internal(format!("stream mode for {name}: {e}")))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(ServiceError::Internal(format!(
                        "remote worker {name} never connected within {ACCEPT_TIMEOUT:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                return Err(ServiceError::Internal(format!(
                    "accepting remote worker {name}: {e}"
                )))
            }
        }
    }
}

/// Relays between one worker's mailbox and its transport until either side
/// goes away.
///
/// Exiting drops `ctx`, which drops the mailbox receiver: the scheduler's
/// next send to this worker gets `ScpError::Disconnected`, the exact signal
/// its loss-confirmation probe looks for.  That makes a socket failure
/// indistinguishable from a dead thread — deliberately, so one watchdog
/// covers both.
fn bridge_loop(mut ctx: ThreadContext<PctMessage>, mut transport: TcpTransport) {
    loop {
        // Outbound: scheduler → worker.  Shutdown is forwarded (so the
        // worker process exits cleanly) and then ends the bridge.
        match ctx.recv_timeout(RELAY_TICK) {
            Ok(envelope) => {
                let is_shutdown = matches!(envelope.payload, PctMessage::Shutdown);
                if transport.send(&WireMessage::Pct(envelope.payload)).is_err() {
                    return;
                }
                if is_shutdown {
                    return;
                }
            }
            Err(ScpError::Timeout) => {}
            Err(_) => return,
        }
        // Inbound: worker → scheduler (replies and heartbeats).  Drain
        // everything already buffered before yielding to the outbound side.
        loop {
            match transport.recv_timeout(RELAY_TICK) {
                Ok(Some(WireMessage::Pct(msg))) => {
                    if ctx.send(MANAGER, msg).is_err() {
                        return;
                    }
                }
                // A stray Hello after the handshake is a protocol violation;
                // drop the connection and let the watchdog reclaim the lane
                // slot rather than guessing at the peer's state.
                Ok(Some(WireMessage::Hello { .. })) => return,
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scp::RuntimeConfig;

    #[test]
    fn thread_worker_round_trips_a_task_over_real_tcp() {
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut manager = runtime.context(MANAGER).unwrap();
        let mut lane = RemoteLane::start(&runtime, &[RemoteWorkerSpec::Thread]).unwrap();
        assert_eq!(lane.workers, vec!["rw0"]);
        assert_eq!(lane.worker_pids(), vec![("rw0".to_string(), None)]);

        let mut cube = hsi::HyperCube::zeros(hsi::CubeDims::new(2, 1, 2));
        cube.set_pixel(0, 0, &[1.0, 0.0]).unwrap();
        cube.set_pixel(1, 0, &[0.0, 1.0]).unwrap();
        let view = hsi::CubeView::full(std::sync::Arc::new(cube));
        manager
            .send(
                "rw0",
                PctMessage::ScreenTask {
                    task: 7,
                    view,
                    threshold_rad: 0.1,
                },
            )
            .unwrap();
        let reply = loop {
            let envelope = manager.recv_timeout(Duration::from_secs(5)).unwrap();
            match envelope.payload {
                PctMessage::Heartbeat => continue,
                msg => break msg,
            }
        };
        let PctMessage::UniqueSet { task, unique } = reply else {
            panic!("expected a unique set, got {reply:?}");
        };
        assert_eq!(task, 7);
        assert_eq!(unique.len(), 2);

        manager.send("rw0", PctMessage::Shutdown).unwrap();
        lane.shutdown();
    }

    #[test]
    fn dead_worker_surfaces_as_a_disconnected_mailbox() {
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut manager = runtime.context(MANAGER).unwrap();
        let mut lane = RemoteLane::start(&runtime, &[RemoteWorkerSpec::Thread]).unwrap();
        // A clean worker exit (Shutdown) ends the bridge the same way a
        // crash does: the mailbox dies and sends report Disconnected.
        manager.send("rw0", PctMessage::Shutdown).unwrap();
        let mut saw_disconnect = false;
        for _ in 0..400 {
            match manager.send("rw0", PctMessage::Heartbeat) {
                Err(ScpError::Disconnected(_)) => {
                    saw_disconnect = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(
            saw_disconnect,
            "dead bridge never surfaced as Disconnected to the sender"
        );
        lane.shutdown();
    }
}
