//! The subscribable [`ServiceEvent`] stream: observing the service without
//! polling.
//!
//! Examples, the chaos harness and operators used to learn what the service
//! was doing by polling `status()` in a loop.  The scheduler now publishes a
//! typed event at every interesting lifecycle point — admission (with the
//! resolved route), task dispatch, retransmission, member kill, member
//! regeneration, standard-worker loss (with each task reassignment and any
//! lane failover), and every terminal transition — to every live subscriber.
//!
//! When the service runs with an enabled [`telemetry::Telemetry`], every
//! event is stamped with the telemetry clock and, where one applies, the
//! [`telemetry::SpanId`] of the span it belongs to; [`EventSubscriber::
//! try_next_stamped`] exposes the envelope, while the plain accessors keep
//! returning bare [`ServiceEvent`]s.
//!
//! Subscriptions are independent unbounded channels: a slow subscriber
//! buffers, it never blocks the scheduler, and dropping the
//! [`EventSubscriber`] unsubscribes (the bus prunes disconnected channels
//! on both publish and subscribe).
//!
//! ```no_run
//! use service::{ServiceConfig, ServiceEvent};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = service::FusionService::start(ServiceConfig::builder().build()?)?;
//! let events = service.subscribe();
//! // ... submit jobs ...
//! for event in events.drain() {
//!     if let ServiceEvent::MemberRegenerated { failed, replacement } = event {
//!         eprintln!("{failed} came back as {replacement}");
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::admission::{RetryAfter, ShedReason, TenantId};
use crate::job::{BackendKind, JobId, JobStatus};
use pct::messages::TaskId;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;
use telemetry::{SpanId, Telemetry};

/// One observable lifecycle event of the running service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceEvent {
    /// A job left the admission queue and entered execution; `route` is the
    /// lane it was resolved to, `auto` whether the routing policy (rather
    /// than the caller) chose it.
    Admitted {
        /// The job.
        job: JobId,
        /// The tenant it belongs to.
        tenant: TenantId,
        /// The resolved execution lane.
        route: BackendKind,
        /// Whether the lane came from the routing policy ([`crate::Route::Auto`]).
        auto: bool,
    },
    /// The admission plane refused a submission: shed at a watermark,
    /// bounced off a tenant quota, or rejected by queue saturation.  The
    /// event mirrors the typed error the submitter saw, so observers can
    /// account rejections they did not themselves submit.
    Rejected {
        /// The id the front end had assigned (never admitted).
        job: JobId,
        /// The tenant whose submission was refused.
        tenant: TenantId,
        /// Why it was refused.
        reason: ShedReason,
        /// The machine-readable back-off hint the submitter received.
        retry_after: RetryAfter,
    },
    /// A task (or, on the shared-memory lane, the whole job) was handed to
    /// an execution slot.
    Dispatched {
        /// The job the task belongs to.
        job: JobId,
        /// The lane it ran on.
        route: BackendKind,
        /// The task identifier.
        task: TaskId,
        /// The message kind (`screen-seeded-task`, `derive-task`, ...).
        kind: &'static str,
    },
    /// An unanswered group-lane task was re-sent to every current member of
    /// its replica group.
    Retransmitted {
        /// The job the task belongs to.
        job: JobId,
        /// The task identifier.
        task: TaskId,
        /// The replica group that owes the result.
        group: String,
    },
    /// A resilient-lane member or standard worker was killed (chaos plan or
    /// attack drill).
    MemberKilled {
        /// Routing name of the victim (e.g. `rg0#1` or `svc0`).
        member: String,
    },
    /// The standard-lane watchdog confirmed a worker lost (heartbeat
    /// silence plus a dead mailbox probe).  Its in-flight tasks are
    /// re-dispatched, not failed.
    WorkerLost {
        /// Name of the lost worker (e.g. `svc0`).
        worker: String,
    },
    /// An in-flight task of a lost standard worker was re-dispatched.
    TaskReassigned {
        /// The job the task belongs to.
        job: JobId,
        /// The task identifier (re-dispatch is idempotent by task id).
        task: TaskId,
        /// The worker that was lost holding the task.
        from: String,
        /// The execution slot that took it over (a surviving worker, or a
        /// replica group after a lane failover).
        to: String,
    },
    /// A running job was moved off a drained lane onto another enabled
    /// lane (resolved through the routing policy).
    LaneFailover {
        /// The job that moved.
        job: JobId,
        /// The lane it was running on.
        from: BackendKind,
        /// The lane it continues on.
        to: BackendKind,
    },
    /// The regeneration protocol replaced a failed member.
    MemberRegenerated {
        /// Routing name of the failed member.
        failed: String,
        /// Routing name of its replacement.
        replacement: String,
    },
    /// A job reached a terminal status.
    Terminal {
        /// The job.
        job: JobId,
        /// The tenant it belongs to.
        tenant: TenantId,
        /// The terminal status (`Completed`, `Failed`, `Cancelled` or
        /// `TimedOut`).
        status: JobStatus,
    },
}

/// A [`ServiceEvent`] plus its telemetry envelope: when it was published
/// (telemetry-clock nanoseconds) and which span it belongs to.  Both are
/// `None` when the service runs with telemetry disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampedEvent {
    /// Telemetry-clock nanoseconds at publish, when telemetry is enabled.
    pub at_nanos: Option<u64>,
    /// The span this event is correlated with, when one applies.
    pub span: Option<SpanId>,
    /// The event itself.
    pub event: ServiceEvent,
}

/// One subscription entry: the channel sender plus a liveness probe tied
/// to the subscriber's lifetime (std `Sender` cannot detect a dropped
/// `Receiver` without sending).
struct Subscription {
    sender: Sender<StampedEvent>,
    alive: Weak<()>,
}

/// The scheduler-side publisher: fans every event out to all subscribers.
#[derive(Default)]
pub(crate) struct EventBus {
    subscribers: Mutex<Vec<Subscription>>,
    telemetry: Telemetry,
}

impl EventBus {
    /// A bus with telemetry disabled (events carry no stamps).
    #[cfg(test)]
    pub fn new() -> Self {
        Self::default()
    }

    /// A bus stamping events with the given telemetry clock.
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        Self {
            subscribers: Mutex::new(Vec::new()),
            telemetry,
        }
    }

    /// Opens a new independent subscription, pruning any subscriptions
    /// whose subscriber has been dropped.
    pub fn subscribe(&self) -> EventSubscriber {
        let (tx, rx) = std::sync::mpsc::channel();
        let token = Arc::new(());
        let mut subscribers = self.subscribers.lock().expect("event bus lock");
        subscribers.retain(|s| s.alive.upgrade().is_some());
        subscribers.push(Subscription {
            sender: tx,
            alive: Arc::downgrade(&token),
        });
        EventSubscriber {
            receiver: rx,
            _alive: token,
        }
    }

    /// Publishes one event to every live subscriber, pruning dead ones.
    /// Publishing with no subscribers is free apart from the lock.
    pub fn publish(&self, event: ServiceEvent) {
        self.publish_correlated(event, None);
    }

    /// Publishes one event correlated with `span`, stamped with the
    /// telemetry clock when telemetry is enabled.
    pub fn publish_correlated(&self, event: ServiceEvent, span: Option<SpanId>) {
        let stamped = StampedEvent {
            at_nanos: self.telemetry.now_nanos(),
            span,
            event,
        };
        let mut subscribers = self.subscribers.lock().expect("event bus lock");
        subscribers.retain(|s| s.sender.send(stamped.clone()).is_ok());
    }

    /// Number of live subscriptions (dead ones linger until the next
    /// publish or subscribe prunes them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("event bus lock").len()
    }
}

/// A client-side subscription to the service's event stream.  Dropping it
/// unsubscribes.
pub struct EventSubscriber {
    receiver: Receiver<StampedEvent>,
    /// Liveness token observed by the bus through a `Weak`.
    _alive: Arc<()>,
}

impl EventSubscriber {
    /// Returns the next buffered event without blocking, or `None` when the
    /// buffer is empty (or the service is gone and fully drained).
    pub fn try_next(&self) -> Option<ServiceEvent> {
        self.try_next_stamped().map(|s| s.event)
    }

    /// Like [`EventSubscriber::try_next`] but keeps the telemetry envelope
    /// (publish timestamp and correlated span id).
    pub fn try_next_stamped(&self) -> Option<StampedEvent> {
        match self.receiver.try_recv() {
            Ok(event) => Some(event),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains every currently buffered event as an iterator, without
    /// blocking: `for event in sub.drain() { ... }`.
    pub fn drain(&self) -> impl Iterator<Item = ServiceEvent> + '_ {
        std::iter::from_fn(move || self.try_next())
    }

    /// Blocks up to `timeout` for the next event.  `None` means no event
    /// arrived in time (or the service shut down with nothing buffered).
    pub fn next_timeout(&self, timeout: Duration) -> Option<ServiceEvent> {
        match self.receiver.recv_timeout(timeout) {
            Ok(event) => Some(event.event),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Blocks up to `timeout` for the next event matching `predicate`,
    /// discarding everything else.  The workhorse of event-driven tests:
    /// "wait for the regeneration, whatever else happens first".
    pub fn wait_for(
        &self,
        timeout: Duration,
        mut predicate: impl FnMut(&ServiceEvent) -> bool,
    ) -> Option<ServiceEvent> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.next_timeout(remaining) {
                Some(event) if predicate(&event) => return Some(event),
                Some(_) => continue,
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fan_out_to_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.publish(ServiceEvent::MemberKilled {
            member: "rg0#0".into(),
        });
        for sub in [&a, &b] {
            assert_eq!(
                sub.try_next(),
                Some(ServiceEvent::MemberKilled {
                    member: "rg0#0".into()
                })
            );
            assert_eq!(sub.try_next(), None);
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let bus = EventBus::new();
        let keep = bus.subscribe();
        let dropped = bus.subscribe();
        drop(dropped);
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(ServiceEvent::Terminal {
            job: 1,
            tenant: TenantId::default(),
            status: JobStatus::Completed,
        });
        assert_eq!(bus.subscriber_count(), 1);
        assert!(keep.try_next().is_some());
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_subscribe_too() {
        let bus = EventBus::new();
        let dropped = bus.subscribe();
        drop(dropped);
        assert_eq!(bus.subscriber_count(), 1);
        let _live = bus.subscribe();
        assert_eq!(
            bus.subscriber_count(),
            1,
            "subscribe() prunes the dead entry while adding the new one"
        );
    }

    #[test]
    fn drain_yields_buffered_events_then_stops() {
        let bus = EventBus::new();
        let sub = bus.subscribe();
        for member in ["rg0#0", "rg0#1"] {
            bus.publish(ServiceEvent::MemberKilled {
                member: member.into(),
            });
        }
        let drained: Vec<ServiceEvent> = sub.drain().collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(sub.drain().count(), 0, "drain does not block when empty");
    }

    #[test]
    fn stamped_events_carry_clock_and_span() {
        let clock = Arc::new(telemetry::ManualClock::new());
        let tel = Telemetry::with_clock(clock.clone(), 16);
        let bus = EventBus::with_telemetry(tel);
        let sub = bus.subscribe();
        clock.advance(1_500);
        bus.publish_correlated(
            ServiceEvent::MemberKilled {
                member: "rg0#0".into(),
            },
            Some(SpanId(42)),
        );
        let stamped = sub.try_next_stamped().unwrap();
        assert_eq!(stamped.at_nanos, Some(1_500));
        assert_eq!(stamped.span, Some(SpanId(42)));

        // Telemetry disabled → no stamps, same event payload.
        let bare = EventBus::new();
        let sub = bare.subscribe();
        bare.publish(ServiceEvent::MemberKilled {
            member: "rg0#0".into(),
        });
        let stamped = sub.try_next_stamped().unwrap();
        assert_eq!(stamped.at_nanos, None);
        assert_eq!(stamped.span, None);
    }

    #[test]
    fn wait_for_skips_non_matching_events() {
        let bus = EventBus::new();
        let sub = bus.subscribe();
        bus.publish(ServiceEvent::Admitted {
            job: 1,
            tenant: TenantId::default(),
            route: BackendKind::Standard,
            auto: true,
        });
        bus.publish(ServiceEvent::Terminal {
            job: 1,
            tenant: TenantId::default(),
            status: JobStatus::Completed,
        });
        let hit = sub.wait_for(Duration::from_millis(100), |e| {
            matches!(e, ServiceEvent::Terminal { .. })
        });
        assert_eq!(
            hit,
            Some(ServiceEvent::Terminal {
                job: 1,
                tenant: TenantId::default(),
                status: JobStatus::Completed
            })
        );
        // The stream is now drained and the timeout path returns None.
        assert_eq!(sub.wait_for(Duration::from_millis(10), |_| true), None);
    }
}
