//! Policy-driven backend routing: where a job's [`Route`] gets resolved.
//!
//! Callers used to pin every job to a concrete [`BackendKind`].  That cannot
//! serve a heterogeneous stream of requests — small cubes drown in per-task
//! protocol overhead on the message-plane lanes, and a caller has no view of
//! lane load.  A job now carries a [`Route`]: either [`Route::Pinned`]
//! (the old behaviour, still available) or [`Route::Auto`], which the
//! scheduler resolves at admission time through the service's pluggable
//! [`RoutingPolicy`] using a [`RoutingRequest`] (what the job looks like)
//! and a [`LaneSnapshot`] (what the pool looks like right now).
//!
//! Three concrete policies ship with the service:
//!
//! * [`SizeThresholdPolicy`] — small cubes go to the in-process
//!   shared-memory lane (cheapest path: no protocol messages at all),
//!   everything else to the standard lane.  The R-FUSE observation: route
//!   small jobs to the cheapest execution path.
//! * [`LeastLoadedPolicy`] — pick the enabled lane with the most free
//!   capacity, by free-slot fraction.
//! * [`RoundRobinPolicy`] — rotate over the enabled lanes.
//!
//! A fourth, [`CostHintPolicy`], consults [`pct::FusionBackend::cost_hint`]
//! exemplars to pick the lane with the lowest estimated cost for the job's
//! cube — the trait-level hook a smarter scheduler can build on.
//!
//! Every policy only ever returns an *enabled* lane; the scheduler
//! additionally clamps the answer (falling back to the first *enabled* lane
//! in preference order — standard, then resilient, then shared-memory, then
//! remote) so a misbehaving custom policy cannot strand a job.

use crate::job::BackendKind;
use hsi::CubeDims;
use pct::FusionBackend;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How a job chooses its execution lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Route {
    /// Run on exactly this lane (validated against the pool at submission).
    Pinned(BackendKind),
    /// Let the service's [`RoutingPolicy`] decide at admission time.
    #[default]
    Auto,
}

impl Route {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Pinned(kind) => kind.label(),
            Route::Auto => "auto",
        }
    }
}

impl From<BackendKind> for Route {
    fn from(kind: BackendKind) -> Self {
        Route::Pinned(kind)
    }
}

/// What the router knows about one job at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingRequest {
    /// Dimensions of the cube to fuse.
    pub dims: CubeDims,
    /// Whole-cube payload volume of the job (`samples * 8` bytes), before
    /// any sharding — divide by [`RoutingRequest::shards`] for the per-task
    /// volume a message-plane lane would reference.
    pub payload_bytes: u64,
    /// Number of shards the job would be split into on a message-plane lane.
    pub shards: usize,
}

impl RoutingRequest {
    /// Builds a request for a cube of the given dimensions.
    pub fn for_dims(dims: CubeDims, shards: usize) -> Self {
        Self {
            dims,
            payload_bytes: dims.byte_size() as u64,
            shards,
        }
    }
}

/// Occupancy of one pool lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneLoad {
    /// Execution slots the lane has in total (0 = lane disabled).
    pub total: usize,
    /// Slots currently free.
    pub free: usize,
}

impl LaneLoad {
    /// Whether the lane exists at all.
    pub fn enabled(&self) -> bool {
        self.total > 0
    }

    /// Fraction of slots free (0.0 when the lane is disabled).
    pub fn free_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.free as f64 / self.total as f64
        }
    }
}

/// A point-in-time view of every lane, handed to the routing policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// The standard worker lane.
    pub standard: LaneLoad,
    /// The resilient replica-group lane.
    pub resilient: LaneLoad,
    /// The in-process shared-memory executor lane.
    pub shared_memory: LaneLoad,
    /// The remote worker-process lane (wire protocol over TCP).
    pub remote: LaneLoad,
}

impl LaneSnapshot {
    /// The load of one lane.
    pub fn lane(&self, kind: BackendKind) -> LaneLoad {
        match kind {
            BackendKind::Standard => self.standard,
            BackendKind::Resilient => self.resilient,
            BackendKind::SharedMemory => self.shared_memory,
            BackendKind::Remote => self.remote,
        }
    }

    /// The lanes that exist in this pool, in preference order.
    pub fn enabled_lanes(&self) -> Vec<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .filter(|kind| self.lane(*kind).enabled())
            .collect()
    }
}

/// Decides which lane an [`Route::Auto`] job runs on.
///
/// Implementations must be cheap (called on the scheduler thread once per
/// admitted job) and must return an enabled lane from the snapshot; the
/// scheduler clamps anything else to the first enabled lane in preference
/// order (standard, then resilient, then shared-memory, then remote).
///
/// ```
/// use service::{BackendKind, LaneSnapshot, RoutingPolicy, RoutingRequest};
///
/// /// Everything to the resilient lane when it exists.
/// #[derive(Debug)]
/// struct Paranoid;
/// impl RoutingPolicy for Paranoid {
///     fn name(&self) -> &'static str {
///         "paranoid"
///     }
///     fn route(&self, _job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind {
///         if lanes.resilient.enabled() {
///             BackendKind::Resilient
///         } else {
///             BackendKind::Standard
///         }
///     }
/// }
/// ```
pub trait RoutingPolicy: Send + Sync + std::fmt::Debug {
    /// A short name for reports and logs.
    fn name(&self) -> &'static str;

    /// Picks the lane for one auto-routed job.
    fn route(&self, job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind;
}

/// Routes by cube size: jobs at or under the threshold go to the in-process
/// shared-memory lane (no protocol round trips), larger jobs to the
/// standard lane.  This is the service's default policy.
#[derive(Debug, Clone, Copy)]
pub struct SizeThresholdPolicy {
    /// Largest payload (in bytes) still considered "small".
    pub small_cube_max_bytes: u64,
}

impl SizeThresholdPolicy {
    /// Default threshold: 256 KiB of samples (a 64×64×8 cube, say).  Small
    /// enough that per-task messaging overhead dominates compute.
    pub const DEFAULT_THRESHOLD_BYTES: u64 = 256 * 1024;

    /// A policy with an explicit threshold.
    pub fn with_threshold(small_cube_max_bytes: u64) -> Self {
        Self {
            small_cube_max_bytes,
        }
    }
}

impl Default for SizeThresholdPolicy {
    fn default() -> Self {
        Self {
            small_cube_max_bytes: Self::DEFAULT_THRESHOLD_BYTES,
        }
    }
}

impl RoutingPolicy for SizeThresholdPolicy {
    fn name(&self) -> &'static str {
        "size-threshold"
    }

    fn route(&self, job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind {
        if job.payload_bytes <= self.small_cube_max_bytes && lanes.shared_memory.enabled() {
            BackendKind::SharedMemory
        } else {
            BackendKind::Standard
        }
    }
}

/// Routes to the enabled lane with the highest free-slot fraction; ties are
/// broken in the order standard, shared-memory, resilient, remote (cheapest
/// first — remote last because it alone pays serialisation and a process
/// boundary per task).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedPolicy;

impl RoutingPolicy for LeastLoadedPolicy {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&self, _job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind {
        let mut best = BackendKind::Standard;
        let mut best_free = -1.0_f64;
        for kind in [
            BackendKind::Standard,
            BackendKind::SharedMemory,
            BackendKind::Resilient,
            BackendKind::Remote,
        ] {
            let lane = lanes.lane(kind);
            if lane.enabled() && lane.free_fraction() > best_free {
                best = kind;
                best_free = lane.free_fraction();
            }
        }
        best
    }
}

/// Rotates over the enabled lanes in a fixed order, independent of job shape
/// or load — the baseline spreading policy.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    next: AtomicUsize,
}

impl RoutingPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&self, _job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind {
        let enabled = lanes.enabled_lanes();
        if enabled.is_empty() {
            return BackendKind::Standard;
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        enabled[slot % enabled.len()]
    }
}

/// Routes to the lane whose exemplar backend reports the lowest
/// [`FusionBackend::cost_hint`] for the job's cube — the hook that lets the
/// pipeline implementations themselves describe their cost model.
pub struct CostHintPolicy {
    lanes: Vec<(BackendKind, Box<dyn FusionBackend>)>,
}

impl std::fmt::Debug for CostHintPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<&'static str> = self.lanes.iter().map(|(_, b)| b.label()).collect();
        f.debug_struct("CostHintPolicy")
            .field("exemplars", &labels)
            .finish()
    }
}

impl CostHintPolicy {
    /// Builds the policy from exemplar backends, one per lane it may route
    /// to.  Lanes without an exemplar are never chosen.
    pub fn new(lanes: Vec<(BackendKind, Box<dyn FusionBackend>)>) -> Self {
        Self { lanes }
    }

    /// Exemplars mirroring the service's three in-process lanes: the
    /// sequential path, a distributed pipeline sized like the standard lane,
    /// and a resilient pipeline sized like the replica-group lane — each
    /// lane's exemplar must mirror *that* lane's parallelism or the cost
    /// ordering between lanes is wrong.  The remote lane carries no
    /// exemplar, so this policy never routes to it: reach it by pinning
    /// [`crate::Route::Pinned`] or with a custom policy.
    pub fn for_pool(
        standard_workers: usize,
        replica_groups: usize,
        replication_level: usize,
    ) -> Self {
        use pct::{DistributedPct, PctConfig, ResilientPct, SequentialPct};
        Self::new(vec![
            (
                BackendKind::SharedMemory,
                Box::new(SequentialPct::new(PctConfig::paper())),
            ),
            (
                BackendKind::Standard,
                Box::new(DistributedPct::new(PctConfig::paper(), standard_workers)),
            ),
            (
                BackendKind::Resilient,
                Box::new(ResilientPct::new(
                    PctConfig::paper(),
                    replica_groups.max(1),
                    replication_level.max(1),
                )),
            ),
        ])
    }
}

impl RoutingPolicy for CostHintPolicy {
    fn name(&self) -> &'static str {
        "cost-hint"
    }

    fn route(&self, job: &RoutingRequest, lanes: &LaneSnapshot) -> BackendKind {
        let mut best = BackendKind::Standard;
        let mut best_cost = f64::INFINITY;
        for (kind, backend) in &self.lanes {
            if !lanes.lane(*kind).enabled() {
                continue;
            }
            let cost = backend.cost_hint(&job.dims);
            if cost < best_cost {
                best = *kind;
                best_cost = cost;
            }
        }
        best
    }
}

/// The shareable policy handle stored in the service configuration.
pub type SharedRoutingPolicy = Arc<dyn RoutingPolicy>;

/// The service's default policy: [`SizeThresholdPolicy`] with its default
/// threshold.
pub fn default_policy() -> SharedRoutingPolicy {
    Arc::new(SizeThresholdPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(standard: usize, resilient: usize, shm: usize) -> LaneSnapshot {
        LaneSnapshot {
            standard: LaneLoad {
                total: standard,
                free: standard,
            },
            resilient: LaneLoad {
                total: resilient,
                free: resilient,
            },
            shared_memory: LaneLoad {
                total: shm,
                free: shm,
            },
            ..Default::default()
        }
    }

    fn request(side: usize, bands: usize) -> RoutingRequest {
        RoutingRequest::for_dims(CubeDims::new(side, side, bands), 4)
    }

    #[test]
    fn size_threshold_splits_small_and_large() {
        let policy = SizeThresholdPolicy::default();
        let lanes = snapshot(4, 2, 2);
        // 16×16×8×8 B = 16 KiB — small.
        assert_eq!(
            policy.route(&request(16, 8), &lanes),
            BackendKind::SharedMemory
        );
        // 128×128×32×8 B = 4 MiB — large.
        assert_eq!(
            policy.route(&request(128, 32), &lanes),
            BackendKind::Standard
        );
    }

    #[test]
    fn size_threshold_without_shared_memory_lane_falls_back() {
        let policy = SizeThresholdPolicy::default();
        let lanes = snapshot(4, 2, 0);
        assert_eq!(policy.route(&request(16, 8), &lanes), BackendKind::Standard);
    }

    #[test]
    fn least_loaded_picks_the_freest_lane() {
        let policy = LeastLoadedPolicy;
        let mut lanes = snapshot(4, 2, 2);
        lanes.standard.free = 1; // 25 % free
        lanes.resilient.free = 2; // 100 % free
        lanes.shared_memory.free = 1; // 50 % free
        assert_eq!(
            policy.route(&request(16, 8), &lanes),
            BackendKind::Resilient
        );
        // Ties prefer the cheaper lane (standard before shared-memory).
        let mut even = snapshot(4, 0, 2);
        even.standard.free = 4;
        even.shared_memory.free = 2;
        assert_eq!(policy.route(&request(16, 8), &even), BackendKind::Standard);
    }

    #[test]
    fn least_loaded_ignores_disabled_lanes() {
        let policy = LeastLoadedPolicy;
        let mut lanes = snapshot(4, 0, 0);
        lanes.standard.free = 0;
        assert_eq!(policy.route(&request(16, 8), &lanes), BackendKind::Standard);
    }

    #[test]
    fn round_robin_cycles_over_enabled_lanes() {
        let policy = RoundRobinPolicy::default();
        let lanes = snapshot(4, 2, 2);
        let picks: Vec<BackendKind> = (0..6)
            .map(|_| policy.route(&request(8, 4), &lanes))
            .collect();
        assert_eq!(
            picks,
            vec![
                BackendKind::Standard,
                BackendKind::Resilient,
                BackendKind::SharedMemory,
                BackendKind::Standard,
                BackendKind::Resilient,
                BackendKind::SharedMemory,
            ]
        );
        // With a lane disabled, the rotation shrinks to what exists.
        let two_lane = snapshot(4, 0, 2);
        let picks: Vec<BackendKind> = (0..4)
            .map(|_| policy.route(&request(8, 4), &two_lane))
            .collect();
        assert!(picks
            .iter()
            .all(|k| *k == BackendKind::Standard || *k == BackendKind::SharedMemory));
    }

    #[test]
    fn cost_hint_policy_prefers_cheap_in_process_for_tiny_cubes() {
        let policy = CostHintPolicy::for_pool(4, 2, 2);
        let lanes = snapshot(4, 2, 2);
        // Tiny cube: fixed per-task messaging overhead dominates, the
        // in-process exemplar (no comm term) wins.
        assert_eq!(
            policy.route(&request(8, 4), &lanes),
            BackendKind::SharedMemory
        );
        // Huge cube: parallel speed-up beats the single-threaded exemplar.
        assert_eq!(
            policy.route(&request(320, 105), &lanes),
            BackendKind::Standard
        );
        // Never routes to a disabled lane.
        assert_eq!(
            policy.route(&request(8, 4), &snapshot(4, 2, 0)),
            BackendKind::Standard
        );
    }

    #[test]
    fn remote_lane_is_routable_but_least_preferred() {
        let mut lanes = snapshot(4, 0, 0);
        lanes.remote = LaneLoad { total: 2, free: 2 };
        // A tie on free fraction keeps the in-process lane.
        assert_eq!(
            LeastLoadedPolicy.route(&request(16, 8), &lanes),
            BackendKind::Standard
        );
        // A strictly freer remote lane wins.
        lanes.standard.free = 1;
        assert_eq!(
            LeastLoadedPolicy.route(&request(16, 8), &lanes),
            BackendKind::Remote
        );
        assert_eq!(
            lanes.enabled_lanes(),
            vec![BackendKind::Standard, BackendKind::Remote]
        );
        // The cost-hint policy carries no remote exemplar and never picks it.
        let policy = CostHintPolicy::for_pool(4, 2, 2);
        assert_ne!(policy.route(&request(8, 4), &lanes), BackendKind::Remote);
    }

    #[test]
    fn lane_snapshot_accessors() {
        let lanes = snapshot(4, 0, 2);
        assert!(lanes.lane(BackendKind::Standard).enabled());
        assert!(!lanes.lane(BackendKind::Resilient).enabled());
        assert_eq!(
            lanes.enabled_lanes(),
            vec![BackendKind::Standard, BackendKind::SharedMemory]
        );
        assert_eq!(LaneLoad::default().free_fraction(), 0.0);
        assert_eq!(Route::Auto.label(), "auto");
        assert_eq!(Route::Pinned(BackendKind::Resilient).label(), "resilient");
        assert_eq!(
            Route::from(BackendKind::Standard),
            Route::Pinned(BackendKind::Standard)
        );
        assert_eq!(Route::default(), Route::Auto);
    }
}
