//! The [`ServiceReport`]: counters and latency statistics describing one
//! service lifetime.

use crate::admission::TenantId;
use crate::job::{BackendKind, Priority};
use std::collections::BTreeMap;
use std::time::{Duration, SystemTime};

/// Per-tenant admission accounting, kept by the
/// [`crate::AdmissionGovernor`] and folded into the report at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's fair-share weight at the time it was first seen.
    pub weight: u64,
    /// Jobs accepted into the admission queue.
    pub jobs_admitted: u64,
    /// Of the admitted, jobs down-prioritized by the soft watermark.
    pub jobs_downgraded: u64,
    /// Submissions shed at a hard watermark.
    pub jobs_shed: u64,
    /// Submissions rejected (queue saturation or tenant quota).
    pub jobs_rejected: u64,
    /// Admitted jobs that completed successfully.
    pub jobs_completed: u64,
}

/// Per-route accounting: how many jobs ran on one execution lane and how
/// they got there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Jobs admitted onto this lane (pinned or auto-routed).
    pub jobs_routed: u64,
    /// Of those, jobs the routing policy chose ([`crate::Route::Auto`]).
    pub auto_routed: u64,
    /// Jobs that completed successfully on this lane.
    pub jobs_completed: u64,
    /// Tasks dispatched onto this lane (a shared-memory whole-job dispatch
    /// counts once).
    pub tasks_dispatched: u64,
}

/// Latency statistics for one priority class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of completed jobs measured.
    pub count: u64,
    /// Sum of submit-to-completion latencies.
    pub total: Duration,
    /// Worst submit-to-completion latency.
    pub max: Duration,
}

impl LatencyStats {
    /// Records one completed job's latency.
    pub fn record(&mut self, latency: Duration) {
        self.count += 1;
        self.total += latency;
        self.max = self.max.max(latency);
    }

    /// Mean latency (zero when nothing was measured).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Aggregate accounting of one service lifetime, returned by
/// [`crate::FusionService::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Jobs accepted into the queue (admitted or still queued at shutdown).
    pub jobs_submitted: u64,
    /// Jobs that completed successfully.
    pub jobs_completed: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Jobs cancelled by clients.
    pub jobs_cancelled: u64,
    /// Jobs abandoned after exceeding their deadline.
    pub jobs_timed_out: u64,
    /// Submissions rejected by admission backpressure (queue saturation or
    /// tenant quota).
    pub jobs_rejected: u64,
    /// Submissions shed by the pressure ladder's hard watermarks.
    pub jobs_shed: u64,
    /// Tasks dispatched to the pool (group sends count once).
    pub tasks_dispatched: u64,
    /// First-per-task results consumed.
    pub results_received: u64,
    /// Duplicate replica results discarded.
    pub duplicates_ignored: u64,
    /// Group-lane tasks re-sent to every current member after going
    /// unanswered past the retransmit timeout (covers lost sends to
    /// members that never acked).
    pub tasks_retransmitted: u64,
    /// Heartbeats consumed from pool members (replica members and standard
    /// workers alike).
    pub heartbeats: u64,
    /// Standard workers confirmed lost by the lane watchdog.
    pub workers_lost: u64,
    /// In-flight tasks of lost standard workers re-dispatched to surviving
    /// slots (idempotent by task id, like group retransmits).
    pub tasks_reassigned: u64,
    /// Running jobs moved off a drained lane onto another enabled lane.
    pub lane_failovers: u64,
    /// Sub-cube payload bytes deep-copied while building screening-phase
    /// task messages (clone-ledger delta): 0 on the view-based message
    /// plane.
    pub bytes_cloned_screen: u64,
    /// Sub-cube payload bytes deep-copied while building transform-phase
    /// task messages: 0 on the view-based message plane.
    pub bytes_cloned_transform: u64,
    /// Sub-cube payload bytes *referenced* by dispatched task messages —
    /// the volume the pre-view message plane deep-copied per task, kept as
    /// the denominator that makes `bytes_cloned_*` meaningful.
    pub payload_bytes_shipped: u64,
    /// Deepest the admission queue ever got.
    pub queue_high_water: usize,
    /// Member regenerations performed by the resilient lane.
    pub regenerations: usize,
    /// Members killed by attack injection during the run.
    pub members_attacked: Vec<String>,
    /// Wall-clock lifetime of the scheduler.
    pub elapsed: Duration,
    /// Wall-clock time the scheduler thread started.
    pub started_at: Option<SystemTime>,
    /// Wall-clock time the scheduler finished (set at shutdown).
    pub finished_at: Option<SystemTime>,
    /// Total time jobs spent in each execution phase, keyed by phase name
    /// (`screen`, `derive`, `transform`, `inline`) — sourced from telemetry
    /// spans when enabled, from the scheduler's own clock otherwise.
    pub phase_durations: BTreeMap<&'static str, Duration>,
    /// Submit-to-completion latency per priority class.
    pub latency: BTreeMap<Priority, LatencyStats>,
    /// Per-route accounting: jobs and tasks per execution lane, and how many
    /// lane choices came from the routing policy.
    pub routes: BTreeMap<BackendKind, RouteStats>,
    /// Per-tenant admission accounting (weights, admissions, downgrades,
    /// sheds, rejections, completions).
    pub tenants: BTreeMap<TenantId, TenantStats>,
}

impl ServiceReport {
    /// Total sub-cube payload bytes deep-copied for task messages across
    /// both accounted phases.
    pub fn bytes_cloned(&self) -> u64 {
        self.bytes_cloned_screen + self.bytes_cloned_transform
    }

    /// Completed jobs per wall-clock second.
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.jobs_completed as f64 / secs
        }
    }

    /// Records one completed job's latency under its priority class.
    pub fn record_latency(&mut self, priority: Priority, latency: Duration) {
        self.latency.entry(priority).or_default().record(latency);
    }

    /// Accumulates one job's time spent in `phase`.
    pub fn record_phase(&mut self, phase: &'static str, duration: Duration) {
        *self.phase_durations.entry(phase).or_default() += duration;
    }

    /// Records one job's admission onto a lane.
    pub fn route_admitted(&mut self, route: BackendKind, auto: bool) {
        let stats = self.routes.entry(route).or_default();
        stats.jobs_routed += 1;
        if auto {
            stats.auto_routed += 1;
        }
    }

    /// Records one task dispatch onto a lane.
    pub fn route_task(&mut self, route: BackendKind) {
        self.routes.entry(route).or_default().tasks_dispatched += 1;
    }

    /// Records one successful completion on a lane.
    pub fn route_completed(&mut self, route: BackendKind) {
        self.routes.entry(route).or_default().jobs_completed += 1;
    }

    /// The stats of one lane (all-zero if nothing ever ran there).
    pub fn route(&self, route: BackendKind) -> RouteStats {
        self.routes.get(&route).copied().unwrap_or_default()
    }

    /// The stats of one tenant (all-zero if it never submitted).
    pub fn tenant(&self, tenant: TenantId) -> TenantStats {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// A human-readable multi-line rendering for examples and logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("fusiond service report\n");
        out.push_str(&format!(
            "  jobs:   {} completed, {} failed, {} cancelled, {} timed out ({} submitted, {} rejected by backpressure)\n",
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_cancelled,
            self.jobs_timed_out,
            self.jobs_submitted,
            self.jobs_rejected,
        ));
        if self.jobs_shed > 0 {
            out.push_str(&format!(
                "          {} shed by pressure watermarks\n",
                self.jobs_shed
            ));
        }
        out.push_str(&format!(
            "  tasks:  {} dispatched, {} results ({} replica duplicates ignored, {} retransmits), {} heartbeats\n",
            self.tasks_dispatched,
            self.results_received,
            self.duplicates_ignored,
            self.tasks_retransmitted,
            self.heartbeats,
        ));
        out.push_str(&format!(
            "  copies: {} payload bytes cloned ({} screen, {} transform) of {} shipped by view\n",
            self.bytes_cloned(),
            self.bytes_cloned_screen,
            self.bytes_cloned_transform,
            self.payload_bytes_shipped,
        ));
        for kind in BackendKind::ALL {
            if let Some(stats) = self.routes.get(&kind) {
                out.push_str(&format!(
                    "  route {:>13}: {} jobs ({} auto-routed), {} completed, {} tasks\n",
                    kind.label(),
                    stats.jobs_routed,
                    stats.auto_routed,
                    stats.jobs_completed,
                    stats.tasks_dispatched,
                ));
            }
        }
        for (tenant, stats) in &self.tenants {
            out.push_str(&format!(
                "  tenant {:>6} (w{}): {} admitted ({} downgraded), {} shed, {} rejected, {} completed\n",
                tenant.label(),
                stats.weight,
                stats.jobs_admitted,
                stats.jobs_downgraded,
                stats.jobs_shed,
                stats.jobs_rejected,
                stats.jobs_completed,
            ));
        }
        out.push_str(&format!(
            "  queue:  high-water mark {} jobs\n",
            self.queue_high_water
        ));
        out.push_str(&format!(
            "  pool:   {} regenerations, attacked members: {:?}\n",
            self.regenerations, self.members_attacked
        ));
        if self.workers_lost > 0 || self.tasks_reassigned > 0 || self.lane_failovers > 0 {
            out.push_str(&format!(
                "  failover: {} workers lost, {} tasks reassigned, {} lane failovers\n",
                self.workers_lost, self.tasks_reassigned, self.lane_failovers,
            ));
        }
        out.push_str(&format!(
            "  time:   {:.3} s elapsed -> {:.1} jobs/s throughput\n",
            self.elapsed.as_secs_f64(),
            self.throughput_jobs_per_sec(),
        ));
        if let (Some(started), Some(finished)) = (self.started_at, self.finished_at) {
            out.push_str(&format!(
                "  wall:   started {:.3}, finished {:.3} (unix)\n",
                unix_secs(started),
                unix_secs(finished),
            ));
        }
        for (phase, duration) in &self.phase_durations {
            out.push_str(&format!(
                "  phase {:>9}: {:>8.3} s total\n",
                phase,
                duration.as_secs_f64(),
            ));
        }
        for priority in Priority::ALL {
            if let Some(stats) = self.latency.get(&priority) {
                out.push_str(&format!(
                    "  latency {:>6}: mean {:>8.3} ms, max {:>8.3} ms ({} jobs)\n",
                    priority.label(),
                    stats.mean().as_secs_f64() * 1e3,
                    stats.max.as_secs_f64() * 1e3,
                    stats.count,
                ));
            }
        }
        out
    }
}

/// Seconds since the Unix epoch (0.0 for pre-epoch times).
fn unix_secs(t: SystemTime) -> f64 {
    t.duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_track_mean_and_max() {
        let mut stats = LatencyStats::default();
        assert_eq!(stats.mean(), Duration::ZERO);
        stats.record(Duration::from_millis(10));
        stats.record(Duration::from_millis(30));
        assert_eq!(stats.count, 2);
        assert_eq!(stats.mean(), Duration::from_millis(20));
        assert_eq!(stats.max, Duration::from_millis(30));
    }

    #[test]
    fn throughput_handles_zero_elapsed() {
        let report = ServiceReport::default();
        assert_eq!(report.throughput_jobs_per_sec(), 0.0);
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let mut report = ServiceReport {
            jobs_submitted: 5,
            jobs_completed: 4,
            jobs_rejected: 1,
            queue_high_water: 3,
            elapsed: Duration::from_secs(2),
            ..ServiceReport::default()
        };
        report.bytes_cloned_screen = 7;
        report.payload_bytes_shipped = 99;
        report.workers_lost = 1;
        report.tasks_reassigned = 2;
        report.lane_failovers = 1;
        report.record_latency(Priority::High, Duration::from_millis(12));
        report.route_admitted(BackendKind::SharedMemory, true);
        report.route_task(BackendKind::SharedMemory);
        report.route_completed(BackendKind::SharedMemory);
        assert_eq!(report.bytes_cloned(), 7);
        let text = report.render();
        assert!(text.contains("4 completed"));
        assert!(text.contains("1 rejected"));
        assert!(text.contains("high-water mark 3"));
        assert!(text.contains("7 payload bytes cloned"));
        assert!(text.contains("99 shipped by view"));
        assert!(text.contains("latency   high"));
        assert!(text.contains("route shared-memory: 1 jobs (1 auto-routed), 1 completed, 1 tasks"));
        assert!(text.contains("1 workers lost, 2 tasks reassigned, 1 lane failovers"));
        assert!((report.throughput_jobs_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_and_phase_durations_render() {
        let mut report = ServiceReport {
            started_at: Some(SystemTime::UNIX_EPOCH + Duration::from_secs(100)),
            finished_at: Some(SystemTime::UNIX_EPOCH + Duration::from_secs(103)),
            ..Default::default()
        };
        report.record_phase("screen", Duration::from_millis(250));
        report.record_phase("screen", Duration::from_millis(250));
        report.record_phase("derive", Duration::from_millis(100));
        assert_eq!(
            report.phase_durations.get("screen"),
            Some(&Duration::from_millis(500))
        );
        let text = report.render();
        assert!(text.contains("started 100.000, finished 103.000"));
        assert!(text.contains("phase    screen:    0.500 s total"));
        assert!(text.contains("phase    derive:    0.100 s total"));
    }

    #[test]
    fn route_stats_accumulate_per_lane() {
        let mut report = ServiceReport::default();
        report.route_admitted(BackendKind::Standard, false);
        report.route_admitted(BackendKind::Standard, true);
        report.route_task(BackendKind::Standard);
        report.route_completed(BackendKind::Standard);
        let stats = report.route(BackendKind::Standard);
        assert_eq!(stats.jobs_routed, 2);
        assert_eq!(stats.auto_routed, 1);
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.tasks_dispatched, 1);
        // Lanes nothing ran on read as all-zero.
        assert_eq!(report.route(BackendKind::Resilient), RouteStats::default());
    }
}
