//! The admission plane: one policy point for *who* gets in, *in what
//! order*, *onto which lane*, and *what happens under pressure*.
//!
//! Before this module the service made admission decisions in three
//! disconnected places: the queue ordered purely by priority, the routing
//! policy resolved lanes at admission, and the ingest pump kept its own
//! watermark arithmetic.  The [`AdmissionGovernor`] unifies them:
//!
//! * **Tenancy** — every [`crate::JobSpec`] names a [`TenantId`] and a
//!   [`JobClass`].  Per-tenant [`TenantQuota`]s bound how much queue a
//!   tenant may hold and weight its share of dequeue bandwidth.
//! * **Weighted fair dequeue** — the queue is drained by a deterministic
//!   deficit-round-robin over tenants ([`DrrQueue`]): each backlogged
//!   tenant receives `weight` pops per round, visited in `TenantId` order,
//!   priority-then-FIFO *within* a tenant.  Dequeue order never affects job
//!   *output* (every job is byte-identical to `pct::SequentialPct`
//!   regardless of scheduling), so fairness composes with the determinism
//!   contract, and the order itself is replayable for a fixed arrival
//!   order.
//! * **Tiered degradation** — under pressure the governor first
//!   *downgrades* degradable jobs to [`Priority::Low`], then *sheds*
//!   sheddable jobs, then *rejects* with a typed
//!   [`RetryAfter`] hint ([`crate::ServiceError::Saturated`] /
//!   [`crate::ServiceError::Shed`] / [`crate::ServiceError::QuotaExceeded`]),
//!   all decided by one [`PressurePolicy::decide`].  The ingest crate's
//!   `SheddingPolicy` is a thin adapter over the same function, fed by the
//!   same [`crate::ServiceEvent`] stream through a [`PressureGauge`].
//! * **Routing** — [`crate::RoutingPolicy`] implementations are strategies
//!   *consulted by* the governor ([`AdmissionGovernor::resolve`]); lane
//!   clamping lives here too, so every route decision flows through one
//!   place.

use crate::job::{BackendKind, JobId, JobStatus, Priority};
use crate::queue::{AdmissionQueue, QueuedJob};
use crate::report::{ServiceReport, TenantStats};
use crate::routing::{LaneSnapshot, Route, RoutingRequest, SharedRoutingPolicy};
use crate::ServiceError;
use crate::ServiceEvent;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// Identifier of the tenant a job is submitted on behalf of.
///
/// Tenants are the unit of fairness and quota accounting.  The default
/// tenant (`TenantId(0)`) keeps every pre-tenancy call site working: a
/// service with one tenant degenerates to the old global priority queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl TenantId {
    /// A short label for reports and CSV counters (`t0`, `t1`, ...).
    pub fn label(&self) -> String {
        format!("t{}", self.0)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How a job may be degraded under pressure.  The class decides which tier
/// of the downgrade → shed → reject ladder applies to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobClass {
    /// Never downgraded, never shed: rejected only by hard backpressure
    /// (queue saturation or tenant quota).
    Interactive,
    /// May be downgraded to [`Priority::Low`] past the soft watermark, but
    /// never shed.  The default for directly submitted jobs.
    #[default]
    Standard,
    /// May be downgraded *and* shed at the hard watermarks.  The default
    /// for streaming ingest, where dropping an arrival is cheaper than
    /// drowning the queue.
    Bulk,
}

impl JobClass {
    /// Whether the soft watermark may lower this class to [`Priority::Low`].
    pub fn degradable(&self) -> bool {
        matches!(self, JobClass::Standard | JobClass::Bulk)
    }

    /// Whether the hard watermarks may drop this class entirely.
    pub fn sheddable(&self) -> bool {
        matches!(self, JobClass::Bulk)
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Standard => "standard",
            JobClass::Bulk => "bulk",
        }
    }
}

/// A machine-readable back-off hint attached to every admission rejection
/// ([`crate::ServiceError::Saturated`], [`crate::ServiceError::Shed`],
/// [`crate::ServiceError::QuotaExceeded`]) and to the corresponding
/// [`crate::ServiceEvent::Rejected`], so clients wait instead of
/// hot-looping resubmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RetryAfter(pub Duration);

impl std::fmt::Display for RetryAfter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "retry after {:?}", self.0)
    }
}

/// Why an arrival was shed or rejected instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedReason {
    /// The queue depth was at or above the hard watermark.
    QueueDepth,
    /// The payload bytes of submitted-but-unfinished jobs were at or above
    /// the hard watermark.
    InFlightBytes,
    /// The submitting tenant already holds its `max_queued` quota.
    Quota,
    /// The bounded admission queue itself was full
    /// ([`crate::ServiceError::Saturated`]).
    Saturated,
}

impl ShedReason {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueDepth => "queue-depth",
            ShedReason::InFlightBytes => "in-flight-bytes",
            ShedReason::Quota => "quota",
            ShedReason::Saturated => "saturated",
        }
    }
}

/// Per-tenant admission limits: fair-share weight and queue quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Dequeue bandwidth share: a backlogged tenant receives `weight` pops
    /// per deficit-round-robin round.  Must be at least 1.
    pub weight: u64,
    /// Hard bound on the tenant's queued (submitted, not yet scheduled)
    /// jobs; `None` leaves the tenant bounded only by queue capacity.
    pub max_queued: Option<usize>,
}

impl TenantQuota {
    /// A quota with the given fair-share weight and no queue bound.
    pub fn weighted(weight: u64) -> Self {
        Self {
            weight,
            max_queued: None,
        }
    }

    /// Bounds how many jobs the tenant may hold queued at once.
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = Some(max_queued);
        self
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            weight: 1,
            max_queued: None,
        }
    }
}

/// The load the pressure policy decides against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadView {
    /// Jobs submitted but not yet scheduled.
    pub queue_depth: usize,
    /// Payload bytes of jobs submitted but not yet terminal.
    pub in_flight_bytes: usize,
}

/// The outcome of one [`PressurePolicy::decide`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureDecision {
    /// Admit the job; `downgrade` asks the caller to lower it to
    /// [`Priority::Low`] first (soft watermark on a degradable class).
    Admit {
        /// Whether the job should be admitted at [`Priority::Low`].
        downgrade: bool,
    },
    /// Drop the job (hard watermark on a sheddable class).
    Shed {
        /// Which watermark fired.
        reason: ShedReason,
    },
}

/// Watermarks of the tiered degradation ladder, shared by the service
/// front end and the ingest pump (whose `SheddingPolicy` is an adapter
/// over this type).  `usize::MAX` (the default) disables a watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressurePolicy {
    /// Soft watermark: at or above this queue depth, degradable classes
    /// are admitted at [`Priority::Low`].
    pub downgrade_queue_depth: usize,
    /// Hard watermark: at or above this queue depth, sheddable classes
    /// are shed with [`ShedReason::QueueDepth`].
    pub shed_queue_depth: usize,
    /// Hard watermark: at or above these in-flight payload bytes,
    /// sheddable classes are shed with [`ShedReason::InFlightBytes`].
    pub shed_in_flight_bytes: usize,
    /// The back-off hint attached to every shed and rejection.
    pub retry_after: Duration,
}

impl PressurePolicy {
    /// No watermarks: everything is admitted at its requested priority
    /// until the bounded queue itself saturates.
    pub fn unbounded() -> Self {
        Self {
            downgrade_queue_depth: usize::MAX,
            shed_queue_depth: usize::MAX,
            shed_in_flight_bytes: usize::MAX,
            retry_after: Duration::from_millis(25),
        }
    }

    /// Sets the soft down-prioritization watermark.
    pub fn with_downgrade_queue_depth(mut self, depth: usize) -> Self {
        self.downgrade_queue_depth = depth;
        self
    }

    /// Sets the hard queue-depth watermark.
    pub fn with_shed_queue_depth(mut self, depth: usize) -> Self {
        self.shed_queue_depth = depth;
        self
    }

    /// Sets the hard in-flight-bytes watermark.
    pub fn with_shed_in_flight_bytes(mut self, bytes: usize) -> Self {
        self.shed_in_flight_bytes = bytes;
        self
    }

    /// Sets the back-off hint attached to sheds and rejections.
    pub fn with_retry_after(mut self, retry_after: Duration) -> Self {
        self.retry_after = retry_after;
        self
    }

    /// The typed back-off hint for this policy's rejections.
    pub fn retry_hint(&self) -> RetryAfter {
        RetryAfter(self.retry_after)
    }

    /// The single tiered-degradation decision: shed a sheddable class past
    /// a hard watermark, otherwise admit, downgrading a degradable class
    /// past the soft watermark.  Every watermark decision of the service
    /// *and* of the ingest pump goes through here.
    pub fn decide(&self, load: LoadView, class: JobClass) -> PressureDecision {
        if class.sheddable() {
            if load.queue_depth >= self.shed_queue_depth {
                return PressureDecision::Shed {
                    reason: ShedReason::QueueDepth,
                };
            }
            if load.in_flight_bytes >= self.shed_in_flight_bytes {
                return PressureDecision::Shed {
                    reason: ShedReason::InFlightBytes,
                };
            }
        }
        PressureDecision::Admit {
            downgrade: class.degradable() && load.queue_depth >= self.downgrade_queue_depth,
        }
    }
}

impl Default for PressurePolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Admission-plane configuration: tenant quotas and the pressure ladder.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Per-tenant quotas; tenants not listed use `default_quota`.
    pub quotas: BTreeMap<TenantId, TenantQuota>,
    /// The quota of tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// The tiered-degradation watermarks applied at submission.
    pub pressure: PressurePolicy,
}

impl AdmissionConfig {
    /// Validates every quota (weights must be at least 1, explicit queue
    /// quotas at least 1).
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        for (tenant, quota) in self
            .quotas
            .iter()
            .map(|(t, q)| (*t, *q))
            .chain(std::iter::once((TenantId::default(), self.default_quota)))
        {
            if quota.weight == 0 {
                return Err(ConfigError::ZeroTenantWeight(tenant));
            }
            if quota.max_queued == Some(0) {
                return Err(ConfigError::ZeroTenantQuota(tenant));
            }
        }
        Ok(())
    }
}

/// One queued item of a tenant lane: priority-ordered, FIFO within a
/// priority, using a globally monotone sequence so replay order is exact.
struct Entry<T> {
    rank: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: more urgent first; among equals, earlier arrival first.
        self.rank.cmp(&other.rank).then(other.seq.cmp(&self.seq))
    }
}

/// One tenant's backlog plus its deficit-round-robin state.
struct Lane<T> {
    weight: u64,
    deficit: u64,
    heap: BinaryHeap<Entry<T>>,
}

/// A deterministic weighted fair queue: deficit round-robin over tenants,
/// priority-then-FIFO within a tenant.
///
/// Tenants are visited in `TenantId` order (a `BTreeMap` walk with a
/// wrapping cursor).  A newly visited backlogged tenant has its deficit
/// replenished to its weight; each pop costs one unit (jobs are the unit
/// of service).  A tenant whose backlog empties forfeits its remaining
/// deficit — the classic anti-hoarding rule — so an idle tenant cannot
/// bank credit and later burst past its share.
///
/// **Fairness bound**: between any two continuously backlogged tenants
/// `a`, `b`, the normalized service difference
/// `|served_a / weight_a - served_b / weight_b|` never exceeds 1 — no
/// tenant gets ahead of its weight share by more than one round's worth.
/// The property suite (`fairness_properties.rs`) checks this over seeded
/// arbitrary arrival schedules.
///
/// The structure is single-threaded; [`crate::AdmissionGovernor`] wraps it
/// in the service's bounded blocking queue.
pub struct DrrQueue<T> {
    lanes: BTreeMap<TenantId, Lane<T>>,
    /// The tenant currently being served (holding unspent deficit).
    cursor: Option<TenantId>,
    len: usize,
    next_seq: u64,
}

impl<T> Default for DrrQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DrrQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            lanes: BTreeMap::new(),
            cursor: None,
            len: 0,
            next_seq: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items of one tenant.
    pub fn tenant_len(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, |lane| lane.heap.len())
    }

    /// Enqueues `item` for `tenant` at `priority`.  `weight` (re)sets the
    /// tenant's fair-share weight (clamped to at least 1); callers pass it
    /// from the tenant's quota on every push.
    pub fn push(&mut self, tenant: TenantId, weight: u64, priority: Priority, item: T) {
        let lane = self.lanes.entry(tenant).or_insert(Lane {
            weight: 1,
            deficit: 0,
            heap: BinaryHeap::new(),
        });
        lane.weight = weight.max(1);
        let seq = self.next_seq;
        self.next_seq += 1;
        lane.heap.push(Entry {
            rank: priority.rank(),
            seq,
            item,
        });
        self.len += 1;
    }

    /// The first backlogged tenant strictly after `after` in `TenantId`
    /// order, wrapping; `None` when everything is empty.
    fn next_backlogged(&self, after: Option<TenantId>) -> Option<TenantId> {
        use std::ops::Bound::{Excluded, Unbounded};
        let tail = match after {
            Some(t) => self.lanes.range((Excluded(t), Unbounded)),
            None => self.lanes.range(..),
        };
        tail.chain(self.lanes.range(..))
            .find(|(_, lane)| !lane.heap.is_empty())
            .map(|(t, _)| *t)
    }

    /// Dequeues the next item under deficit round-robin, returning it with
    /// the tenant it belonged to.
    pub fn pop(&mut self) -> Option<(TenantId, T)> {
        if self.len == 0 {
            return None;
        }
        // Keep serving the cursor tenant while it has backlog and deficit;
        // otherwise advance to the next backlogged tenant and replenish.
        let serving = match self.cursor {
            Some(t)
                if self
                    .lanes
                    .get(&t)
                    .is_some_and(|lane| lane.deficit > 0 && !lane.heap.is_empty()) =>
            {
                t
            }
            _ => {
                // A tenant that stopped being servable forfeits leftover
                // deficit (anti-hoarding).
                if let Some(t) = self.cursor {
                    if let Some(lane) = self.lanes.get_mut(&t) {
                        if lane.heap.is_empty() {
                            lane.deficit = 0;
                        }
                    }
                }
                let t = self.next_backlogged(self.cursor).expect("len > 0");
                let lane = self.lanes.get_mut(&t).expect("backlogged lane exists");
                lane.deficit = lane.weight;
                self.cursor = Some(t);
                t
            }
        };
        let lane = self.lanes.get_mut(&serving).expect("serving lane exists");
        let entry = lane.heap.pop().expect("serving lane is backlogged");
        lane.deficit -= 1;
        if lane.heap.is_empty() {
            lane.deficit = 0;
        }
        self.len -= 1;
        Some((serving, entry.item))
    }
}

/// The event-fed view of service load, shared by every consumer of the
/// pressure plane that sits *outside* the service (the ingest pump today).
///
/// Feed it every [`ServiceEvent`] from a subscription opened before the
/// first submission, and tell it about each submission with
/// [`PressureGauge::on_submit`]; it tracks queued jobs and in-flight
/// payload bytes for exactly the jobs it was told about — events of other
/// clients' jobs fall through untouched.
#[derive(Debug, Default)]
pub struct PressureGauge {
    /// Submitted, not yet admitted by the scheduler (bytes per job).
    queued: HashMap<JobId, usize>,
    /// Admitted, not yet terminal (bytes per job).
    running: HashMap<JobId, usize>,
    /// Sum of bytes across both maps.
    in_flight_bytes: usize,
}

impl PressureGauge {
    /// A gauge tracking nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted submission.
    pub fn on_submit(&mut self, job: JobId, bytes: usize) {
        self.queued.insert(job, bytes);
        self.in_flight_bytes += bytes;
    }

    /// Applies one service event; events of untracked jobs are ignored.
    pub fn observe(&mut self, event: &ServiceEvent) {
        match event {
            ServiceEvent::Admitted { job, .. } => {
                if let Some(bytes) = self.queued.remove(job) {
                    self.running.insert(*job, bytes);
                }
            }
            ServiceEvent::Terminal { job, .. } => {
                if let Some(bytes) = self.queued.remove(job).or_else(|| self.running.remove(job)) {
                    self.in_flight_bytes -= bytes;
                }
            }
            _ => {}
        }
    }

    /// Tracked jobs submitted but not yet admitted.
    pub fn queue_depth(&self) -> usize {
        self.queued.len()
    }

    /// Payload bytes of tracked jobs submitted but not yet terminal.
    pub fn in_flight_bytes(&self) -> usize {
        self.in_flight_bytes
    }

    /// The load view handed to [`PressurePolicy::decide`].
    pub fn load(&self) -> LoadView {
        LoadView {
            queue_depth: self.queue_depth(),
            in_flight_bytes: self.in_flight_bytes,
        }
    }
}

/// Byte-level accounting the governor keeps under its own lock.
#[derive(Default)]
struct GovernorLoads {
    /// Payload bytes per accepted, not-yet-terminal job.
    in_flight: HashMap<JobId, usize>,
    /// Sum over `in_flight`.
    in_flight_bytes: usize,
    /// Per-tenant admission counters, folded into the report at shutdown.
    tenants: BTreeMap<TenantId, TenantStats>,
}

/// The unified admission plane of a running service: quota checks, tiered
/// degradation, the weighted fair queue, and route resolution.
///
/// Constructed from [`crate::ServiceConfig`] at service start; the front
/// end submits through it, the scheduler dequeues and routes through it,
/// and every terminal transition is reported back so in-flight byte
/// accounting and per-tenant counters stay exact.
pub struct AdmissionGovernor {
    quotas: BTreeMap<TenantId, TenantQuota>,
    default_quota: TenantQuota,
    pressure: PressurePolicy,
    routing: SharedRoutingPolicy,
    queue: AdmissionQueue,
    loads: Mutex<GovernorLoads>,
    telemetry: telemetry::Telemetry,
}

impl AdmissionGovernor {
    pub(crate) fn new(
        queue_capacity: usize,
        admission: AdmissionConfig,
        routing: SharedRoutingPolicy,
    ) -> Self {
        Self {
            queue: AdmissionQueue::new(queue_capacity, admission.pressure.retry_hint()),
            quotas: admission.quotas,
            default_quota: admission.default_quota,
            pressure: admission.pressure,
            routing,
            loads: Mutex::new(GovernorLoads::default()),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: per-tenant admitted/shed/rejected
    /// counters and the live queue-depth gauge.
    pub(crate) fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Refreshes the `fusiond_queue_depth` gauge (one branch when
    /// telemetry is disabled).
    fn gauge_queue_depth(&self) {
        if let Some(gauge) = self.telemetry.gauge("fusiond_queue_depth", &[]) {
            gauge.set(self.queue.len() as i64);
        }
    }

    /// The effective quota of `tenant`.
    pub fn quota(&self, tenant: TenantId) -> TenantQuota {
        self.quotas
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    fn stats(loads: &mut GovernorLoads, tenant: TenantId, weight: u64) -> &mut TenantStats {
        loads.tenants.entry(tenant).or_insert_with(|| TenantStats {
            weight,
            ..TenantStats::default()
        })
    }

    /// Front-end submission: quota check, pressure decision, downgrade,
    /// then the bounded (optionally blocking) weighted-fair push.  Every
    /// rejection carries the policy's [`RetryAfter`] hint.
    pub(crate) fn submit(&self, mut job: QueuedJob, blocking: bool) -> Result<(), ServiceError> {
        let tenant = job.spec.tenant;
        let class = job.spec.class;
        let quota = self.quota(tenant);
        let retry_after = self.pressure.retry_hint();
        if let Some(max_queued) = quota.max_queued {
            if self.queue.tenant_depth(tenant) >= max_queued {
                let mut loads = self.loads.lock().expect("governor lock");
                Self::stats(&mut loads, tenant, quota.weight).jobs_rejected += 1;
                drop(loads);
                self.telemetry.count(
                    "fusiond_jobs_rejected_total",
                    &[("tenant", &tenant.label()), ("reason", "quota")],
                );
                return Err(ServiceError::QuotaExceeded {
                    tenant,
                    retry_after,
                });
            }
        }
        let load = {
            let loads = self.loads.lock().expect("governor lock");
            LoadView {
                queue_depth: self.queue.len(),
                in_flight_bytes: loads.in_flight_bytes,
            }
        };
        let downgrade = match self.pressure.decide(load, class) {
            PressureDecision::Shed { reason } => {
                let mut loads = self.loads.lock().expect("governor lock");
                Self::stats(&mut loads, tenant, quota.weight).jobs_shed += 1;
                drop(loads);
                self.telemetry.count(
                    "fusiond_jobs_shed_total",
                    &[("tenant", &tenant.label()), ("reason", reason.label())],
                );
                return Err(ServiceError::Shed {
                    reason,
                    retry_after,
                });
            }
            PressureDecision::Admit { downgrade } => downgrade,
        };
        if downgrade {
            job.spec.priority = Priority::Low;
        }
        let id = job.id;
        let bytes = job.spec.source.payload_bytes();
        let pushed = if blocking {
            self.queue.push_blocking(job, quota.weight)
        } else {
            self.queue.try_push(job, quota.weight)
        };
        match pushed {
            Ok(()) => {
                let mut loads = self.loads.lock().expect("governor lock");
                loads.in_flight.insert(id, bytes);
                loads.in_flight_bytes += bytes;
                let stats = Self::stats(&mut loads, tenant, quota.weight);
                stats.jobs_admitted += 1;
                if downgrade {
                    stats.jobs_downgraded += 1;
                }
                drop(loads);
                self.telemetry
                    .count("fusiond_jobs_queued_total", &[("tenant", &tenant.label())]);
                self.gauge_queue_depth();
                Ok(())
            }
            Err(e) => {
                if matches!(e, ServiceError::Saturated { .. }) {
                    let mut loads = self.loads.lock().expect("governor lock");
                    Self::stats(&mut loads, tenant, quota.weight).jobs_rejected += 1;
                    drop(loads);
                    self.telemetry.count(
                        "fusiond_jobs_rejected_total",
                        &[("tenant", &tenant.label()), ("reason", "saturated")],
                    );
                }
                Err(e)
            }
        }
    }

    /// Scheduler side: the next job under weighted fair dequeue.
    pub(crate) fn next(&self) -> Option<QueuedJob> {
        let popped = self.queue.pop();
        if popped.is_some() {
            self.gauge_queue_depth();
        }
        popped
    }

    /// Resolves a route to a concrete, enabled lane.  Pinned routes were
    /// validated at submission; auto routes consult the routing-policy
    /// strategy, and anything pointing at a disabled lane is clamped to
    /// the first enabled lane in preference order (a misbehaving policy
    /// cannot strand a job).  Returns the lane and whether the policy
    /// (rather than the caller) chose it.
    pub fn resolve(
        &self,
        route: Route,
        request: &RoutingRequest,
        lanes: &LaneSnapshot,
    ) -> (BackendKind, bool) {
        let (kind, auto) = match route {
            Route::Pinned(kind) => (kind, false),
            Route::Auto => (self.routing.route(request, lanes), true),
        };
        if lanes.lane(kind).enabled() {
            return (kind, auto);
        }
        let fallback = lanes
            .enabled_lanes()
            .first()
            .copied()
            .unwrap_or(BackendKind::Standard);
        (fallback, auto)
    }

    /// Reports a job's terminal transition: releases its in-flight bytes
    /// and counts completions per tenant.
    pub(crate) fn note_terminal(&self, job: JobId, tenant: TenantId, status: JobStatus) {
        let mut loads = self.loads.lock().expect("governor lock");
        if let Some(bytes) = loads.in_flight.remove(&job) {
            loads.in_flight_bytes -= bytes;
        }
        if status == JobStatus::Completed {
            let weight = self.quota(tenant).weight;
            Self::stats(&mut loads, tenant, weight).jobs_completed += 1;
        }
    }

    /// Jobs currently queued (all tenants).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently queued for one tenant.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.queue.tenant_depth(tenant)
    }

    /// Bound of the admission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Whether nothing is queued.
    pub(crate) fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Deepest the queue has ever been.
    pub(crate) fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }

    /// Stops accepting submissions and wakes blocked submitters.
    pub(crate) fn close(&self) {
        self.queue.close();
    }

    /// Payload bytes of accepted, not-yet-terminal jobs.
    pub fn in_flight_bytes(&self) -> usize {
        self.loads.lock().expect("governor lock").in_flight_bytes
    }

    /// Folds the per-tenant counters into a finished report, deriving the
    /// aggregate shed/rejection totals from them.
    pub(crate) fn fold_into(&self, report: &mut ServiceReport) {
        let loads = self.loads.lock().expect("governor lock");
        report.jobs_shed = loads.tenants.values().map(|t| t.jobs_shed).sum();
        report.jobs_rejected = loads.tenants.values().map(|t| t.jobs_rejected).sum();
        report.tenants = loads.tenants.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_label_and_order() {
        assert_eq!(TenantId(3).label(), "t3");
        assert_eq!(TenantId(3).to_string(), "t3");
        assert!(TenantId(1) < TenantId(2));
        assert_eq!(TenantId::default(), TenantId(0));
    }

    #[test]
    fn job_classes_govern_the_degradation_tiers() {
        assert!(!JobClass::Interactive.degradable());
        assert!(!JobClass::Interactive.sheddable());
        assert!(JobClass::Standard.degradable());
        assert!(!JobClass::Standard.sheddable());
        assert!(JobClass::Bulk.degradable());
        assert!(JobClass::Bulk.sheddable());
        assert_eq!(JobClass::default(), JobClass::Standard);
        assert_eq!(JobClass::Bulk.label(), "bulk");
    }

    #[test]
    fn pressure_decisions_follow_the_ladder() {
        let policy = PressurePolicy::unbounded()
            .with_downgrade_queue_depth(2)
            .with_shed_queue_depth(4)
            .with_shed_in_flight_bytes(1000);
        let calm = LoadView {
            queue_depth: 0,
            in_flight_bytes: 0,
        };
        let soft = LoadView {
            queue_depth: 2,
            in_flight_bytes: 0,
        };
        let deep = LoadView {
            queue_depth: 4,
            in_flight_bytes: 0,
        };
        let heavy = LoadView {
            queue_depth: 0,
            in_flight_bytes: 1000,
        };
        for class in [JobClass::Interactive, JobClass::Standard, JobClass::Bulk] {
            assert_eq!(
                policy.decide(calm, class),
                PressureDecision::Admit { downgrade: false }
            );
        }
        // Soft watermark downgrades degradable classes only.
        assert_eq!(
            policy.decide(soft, JobClass::Interactive),
            PressureDecision::Admit { downgrade: false }
        );
        assert_eq!(
            policy.decide(soft, JobClass::Standard),
            PressureDecision::Admit { downgrade: true }
        );
        // Hard watermarks shed bulk only; standard is downgraded instead.
        assert_eq!(
            policy.decide(deep, JobClass::Bulk),
            PressureDecision::Shed {
                reason: ShedReason::QueueDepth
            }
        );
        assert_eq!(
            policy.decide(deep, JobClass::Standard),
            PressureDecision::Admit { downgrade: true }
        );
        assert_eq!(
            policy.decide(heavy, JobClass::Bulk),
            PressureDecision::Shed {
                reason: ShedReason::InFlightBytes
            }
        );
        assert_eq!(
            policy.decide(heavy, JobClass::Interactive),
            PressureDecision::Admit { downgrade: false }
        );
        assert_eq!(policy.retry_hint(), RetryAfter(Duration::from_millis(25)));
    }

    #[test]
    fn admission_config_validates_quotas() {
        let mut config = AdmissionConfig::default();
        assert!(config.validate().is_ok());
        config.quotas.insert(TenantId(1), TenantQuota::weighted(0));
        assert_eq!(
            config.validate().unwrap_err(),
            crate::config::ConfigError::ZeroTenantWeight(TenantId(1))
        );
        config.quotas.clear();
        config
            .quotas
            .insert(TenantId(2), TenantQuota::weighted(1).with_max_queued(0));
        assert_eq!(
            config.validate().unwrap_err(),
            crate::config::ConfigError::ZeroTenantQuota(TenantId(2))
        );
    }

    #[test]
    fn single_tenant_drr_degenerates_to_priority_fifo() {
        let mut q = DrrQueue::new();
        let t = TenantId::default();
        q.push(t, 1, Priority::Low, 1u32);
        q.push(t, 1, Priority::Normal, 2);
        q.push(t, 1, Priority::High, 3);
        q.push(t, 1, Priority::Normal, 4);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, vec![3, 2, 4, 1]);
    }

    #[test]
    fn drr_shares_bandwidth_by_weight() {
        let mut q = DrrQueue::new();
        // Tenant 1 weight 3, tenant 2 weight 1, both continuously backlogged.
        for i in 0..8u32 {
            q.push(TenantId(1), 3, Priority::Normal, i);
            q.push(TenantId(2), 1, Priority::Normal, 100 + i);
        }
        let tenants: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        // Rounds of 3-from-t1 then 1-from-t2 until t1 drains, then t2 alone.
        assert_eq!(
            tenants,
            vec![1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 2, 2, 2, 2, 2, 2],
        );
    }

    #[test]
    fn drr_resets_deficit_when_a_tenant_drains() {
        let mut q = DrrQueue::new();
        // Tenant 1 has a huge weight but only one item: draining forfeits
        // the unspent deficit, so after re-arrival it cannot burst.
        q.push(TenantId(1), 100, Priority::Normal, 0u32);
        q.push(TenantId(2), 1, Priority::Normal, 1);
        assert_eq!(q.pop().unwrap().0, TenantId(1));
        assert_eq!(q.pop().unwrap().0, TenantId(2));
        // Tenant 1 returns; service resumes in round-robin order, not on
        // banked credit beyond a fresh round.
        q.push(TenantId(1), 100, Priority::Normal, 2);
        q.push(TenantId(2), 1, Priority::Normal, 3);
        assert_eq!(q.pop().unwrap().0, TenantId(1));
        assert_eq!(q.pop().unwrap().0, TenantId(2));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn drr_is_replayable_for_a_fixed_arrival_order() {
        let arrivals = [
            (TenantId(3), 2, Priority::High),
            (TenantId(1), 1, Priority::Normal),
            (TenantId(3), 2, Priority::Low),
            (TenantId(2), 4, Priority::Normal),
            (TenantId(1), 1, Priority::High),
            (TenantId(2), 4, Priority::Normal),
        ];
        let run = || {
            let mut q = DrrQueue::new();
            for (i, (t, w, p)) in arrivals.iter().enumerate() {
                q.push(*t, *w, *p, i);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pressure_gauge_tracks_only_its_own_jobs() {
        let mut gauge = PressureGauge::new();
        gauge.on_submit(1, 100);
        gauge.on_submit(2, 50);
        assert_eq!(gauge.queue_depth(), 2);
        assert_eq!(gauge.in_flight_bytes(), 150);
        // A foreign job's events fall through untouched.
        gauge.observe(&ServiceEvent::Terminal {
            job: 99,
            tenant: TenantId::default(),
            status: JobStatus::Completed,
        });
        assert_eq!(gauge.in_flight_bytes(), 150);
        // Admission moves queued -> running; terminal releases the bytes.
        gauge.observe(&ServiceEvent::Admitted {
            job: 1,
            tenant: TenantId::default(),
            route: BackendKind::Standard,
            auto: true,
        });
        assert_eq!(gauge.queue_depth(), 1);
        assert_eq!(gauge.in_flight_bytes(), 150);
        gauge.observe(&ServiceEvent::Terminal {
            job: 1,
            tenant: TenantId::default(),
            status: JobStatus::Completed,
        });
        assert_eq!(gauge.in_flight_bytes(), 50);
        assert_eq!(
            gauge.load(),
            LoadView {
                queue_depth: 1,
                in_flight_bytes: 50
            }
        );
    }

    #[test]
    fn shed_reasons_and_retry_hints_render() {
        assert_eq!(ShedReason::QueueDepth.label(), "queue-depth");
        assert_eq!(ShedReason::InFlightBytes.label(), "in-flight-bytes");
        assert_eq!(ShedReason::Quota.label(), "quota");
        assert_eq!(ShedReason::Saturated.label(), "saturated");
        let hint = RetryAfter(Duration::from_millis(10));
        assert!(hint.to_string().contains("retry after"));
    }
}
