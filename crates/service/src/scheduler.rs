//! The batch scheduler: admits jobs from the queue, resolves their routes,
//! shards them, and multiplexes their tasks over the shared pool.
//!
//! Each scheduler tick forms a dispatch batch: every runnable task of every
//! admitted job, ordered by priority then submission, is matched against the
//! free execution slots of its lane (standard workers, replica groups,
//! shared-memory executors, or remote worker processes).  Message-plane jobs
//! advance through three phases:
//!
//! 1. **Screen** — a chain of seeded screening tasks, one shard at a time,
//!    so the accumulated unique set is bit-for-bit the whole-image greedy
//!    screening (intra-job pipelining; cross-job concurrency fills the pool).
//! 2. **Derive** — one task computing steps 3–6 over the merged unique set,
//!    exactly as the sequential reference does.
//! 3. **Transform** — per-shard transform/colour tasks fanned out freely
//!    (per-pixel pure), reassembled into the fused image.
//!
//! Shared-memory jobs skip the message plane entirely: the whole job is
//! handed to an in-process executor that runs the sequential reference over
//! the shared cube — byte-identical by construction.
//!
//! A job's lane comes from its [`Route`]: pinned by the caller, or resolved
//! at admission by the service's [`crate::RoutingPolicy`] from the job shape
//! and the live lane loads.  Every resolution is counted per route in the
//! [`ServiceReport`] and published on the [`ServiceEvent`] stream.
//!
//! The resilient lane reuses [`pct::ResilientManagerState`]: heartbeats are
//! consumed here, silence-flagged members are probed, dead members are
//! regenerated and their groups' outstanding tasks re-issued, and duplicate
//! replica results are discarded by task id — all without disturbing job
//! outputs.
//!
//! The standard lane gets the same *detection* without the replication: a
//! [`resilience::FailureDetector`] watches every worker's heartbeats
//! (silence is confirmed with a mailbox probe, exactly the
//! `sweep_and_probe` pattern).  A confirmed loss orphans the worker's
//! in-flight tasks, which are re-dispatched to surviving workers —
//! idempotent by task id, byte-identical because every task message is
//! deterministic in its inputs.  If the lane drains to zero workers, each
//! running standard job *fails over* through the routing policy to another
//! enabled lane (replica groups re-run the orphaned tasks; the shared-memory
//! lane recomputes the whole job inline) instead of failing.  Queued jobs
//! need no special handling: admission resolves routes against the live
//! lane snapshot, which now reads the drained lane as disabled.
//!
//! The remote lane rides the same watchdog.  Remote workers are plain
//! routing names behind bridge threads (see [`crate::remote`]); a killed
//! worker *process* closes its socket, its bridge exits, and the probe's
//! `Disconnected` confirms the loss exactly as for a dead thread — the
//! orphan/re-dispatch/failover path is shared code, not a parallel copy.

use crate::admission::{AdmissionGovernor, TenantId};
use crate::chaos::{ChaosPhase, ChaosPlan};
use crate::events::{EventBus, ServiceEvent};
use crate::job::{BackendKind, JobId, JobStatus, Priority};
use crate::pool::{InlineJob, InlineResult, WorkerPool};
use crate::report::ServiceReport;
use crate::routing::{LaneLoad, LaneSnapshot, Route, RoutingRequest};
use crate::status::StatusTable;
use hsi::partition::{partition_rows, SubCubeSpec};
use hsi::{CloneLedger, HyperCube};
use linalg::{Matrix, Vector};
use pct::colormap::ComponentScale;
use pct::distributed::assemble_image;
use pct::messages::{PctMessage, TaskId};
use pct::resilient::OutstandingTask;
use pct::{FusionOutput, PctConfig};
use resilience::{DetectorConfig, FailureDetector, MemberId};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};
use telemetry::{SpanId, Telemetry};

use scp::{Envelope, ScpError, ThreadContext};

/// Which pool slot a task occupies.
#[derive(Debug, Clone)]
enum Assignee {
    Worker(String),
    Group(String),
}

/// One dispatched, not-yet-answered task.
struct InFlight {
    job: JobId,
    assignee: Assignee,
    /// Kept for re-issue when a replica-group member is regenerated; view
    /// payloads make holding and cloning this an `Arc` bump.
    message: PctMessage,
    /// When the task was last (re)transmitted.
    sent_at: Instant,
    /// Retransmissions so far (drives [`OutstandingTask::backoff`]).
    attempts: u32,
}

/// A task pulled off a lost (or never-reached) execution slot, waiting to
/// be re-dispatched by [`Scheduler::dispatch_orphans`].  Re-dispatch is
/// idempotent by task id: whichever copy answers first wins, later copies
/// are discarded as duplicates.
struct Orphan {
    task: TaskId,
    job: JobId,
    message: PctMessage,
    /// Deliveries so far (carried into the new [`InFlight`] so group
    /// retransmit backoff keeps compounding across reassignments).
    attempts: u32,
    /// The worker that was lost holding the task; empty for a task that
    /// was never sent (a loss landed between the lane check and the pop),
    /// which re-dispatches as a plain first delivery.
    from: String,
}

/// Job execution phases (see module docs).
enum Phase {
    Screen,
    Derive,
    Transform,
}

/// Scheduler-side state of one admitted job.
struct JobRun {
    tenant: TenantId,
    priority: Priority,
    /// The resolved execution lane.
    backend: BackendKind,
    config: PctConfig,
    cube: Arc<HyperCube>,
    shards: Vec<SubCubeSpec>,
    deadline: Option<Instant>,
    submitted: Instant,
    phase: Phase,
    unique: Vec<Vector>,
    unique_count: usize,
    screen_next: usize,
    screen_outstanding: bool,
    derive_outstanding: bool,
    /// Shared-memory lane: whether the whole job is already on an executor.
    inline_dispatched: bool,
    transform_next: usize,
    strips: Vec<(usize, usize, usize, Vec<u8>)>,
    eigenvalues: Vec<f64>,
    mean: Option<Vector>,
    transform: Option<Matrix>,
    scales: Vec<(f64, f64)>,
    /// Root telemetry span of the job's phase tree (carried over from
    /// submission; `None` when telemetry is disabled).
    span: Option<SpanId>,
    /// The currently open phase span, a child of `span`.
    phase_span: Option<SpanId>,
    /// Name of the current phase, labelling its histogram and report rows.
    phase_name: &'static str,
    /// When the current phase was entered — the report's duration source
    /// when telemetry is disabled and spans return nothing.
    phase_entered: Instant,
}

impl JobRun {
    /// Produces the next dispatchable task message, updating phase-progress
    /// bookkeeping; `None` when the job is waiting on outstanding results.
    fn next_task_message(&mut self, task: TaskId) -> Option<PctMessage> {
        match self.phase {
            Phase::Screen => {
                if self.screen_outstanding || self.screen_next >= self.shards.len() {
                    return None;
                }
                let view = self.shards[self.screen_next].view(&self.cube).ok()?;
                self.screen_outstanding = true;
                Some(PctMessage::ScreenSeededTask {
                    task,
                    view,
                    seed: self.unique.clone(),
                    threshold_rad: self.config.screening_angle_rad,
                })
            }
            Phase::Derive => {
                if self.derive_outstanding {
                    return None;
                }
                self.derive_outstanding = true;
                self.unique_count = self.unique.len();
                Some(PctMessage::DeriveTask {
                    task,
                    unique: std::mem::take(&mut self.unique),
                    config: self.config,
                })
            }
            Phase::Transform => {
                if self.transform_next >= self.shards.len() {
                    return None;
                }
                let view = self.shards[self.transform_next].view(&self.cube).ok()?;
                self.transform_next += 1;
                Some(PctMessage::TransformTask {
                    task,
                    view,
                    mean: self.mean.clone()?,
                    transform: self.transform.clone()?,
                    scales: self.scales.clone(),
                })
            }
        }
    }
}

/// Closes `job`'s open phase span, accounting its duration into the phase
/// histogram and the report's per-phase totals, then opens the span of
/// `next` (when the job is moving on rather than terminating).  A free
/// function so it can run while `job` is borrowed out of the run table.
fn roll_phase(
    telemetry: &Telemetry,
    report: &mut ServiceReport,
    job: &mut JobRun,
    id: JobId,
    next: Option<&'static str>,
) {
    let ended = telemetry
        .span_end(job.phase_span.take())
        .unwrap_or_else(|| job.phase_entered.elapsed());
    telemetry.observe(
        "fusiond_phase_duration_seconds",
        &[("phase", job.phase_name)],
        ended,
    );
    report.record_phase(job.phase_name, ended);
    if let Some(name) = next {
        job.phase_span = telemetry.span_start(name, job.span, Some(id), "");
        job.phase_name = name;
        job.phase_entered = Instant::now();
    }
}

/// What a consumed result means for its job, decided while the job is
/// borrowed and acted on afterwards.
enum Outcome {
    InProgress,
    Complete,
    Failed(String),
}

/// How many recently completed group-lane task ids are remembered for
/// duplicate accounting.  Only replica groups produce duplicates (level - 1
/// extra results per task, plus re-issues), and those arrive promptly, so a
/// small bounded window keeps `duplicates_ignored` accurate without growing
/// with service lifetime.  An evicted id merely stops being counted.
const DEDUP_WINDOW: usize = 4096;

/// The scheduler: owns the pool and drives everything from one thread.
pub(crate) struct Scheduler {
    pool: WorkerPool,
    ctx: ThreadContext<PctMessage>,
    governor: Arc<AdmissionGovernor>,
    status: Arc<StatusTable>,
    cancels: Arc<Mutex<Vec<JobId>>>,
    shutdown: Arc<AtomicBool>,
    max_in_flight: usize,
    events: Arc<EventBus>,
    running: BTreeMap<JobId, JobRun>,
    tasks: HashMap<TaskId, InFlight>,
    completed_group_tasks: HashSet<TaskId>,
    completed_group_order: VecDeque<TaskId>,
    cancelled_queued: HashSet<JobId>,
    free_workers: VecDeque<String>,
    free_groups: VecDeque<String>,
    free_inline: VecDeque<String>,
    free_remote: VecDeque<String>,
    /// Routing names of the shared-memory executors, to tell their wake-up
    /// doorbells apart from real member heartbeats whatever the executors
    /// happen to be called.
    inline_names: HashSet<String>,
    next_task: TaskId,
    /// The worker watchdog of the standard *and* remote lanes: heartbeat
    /// silence flags a suspect, a mailbox probe confirms (workers are keyed
    /// as incarnation-0 [`MemberId`]s so the shared detector fits
    /// unchanged).  Remote workers heartbeat over the wire through their
    /// bridges, so one detector covers both sides of the process boundary.
    standard_watch: FailureDetector,
    /// Tasks of lost workers awaiting re-dispatch, oldest first.
    orphans: VecDeque<Orphan>,
    started: Instant,
    report: ServiceReport,
    chaos: ChaosPlan,
    chaos_fired: Vec<bool>,
    regenerations_seen: usize,
    telemetry: Telemetry,
    /// Open `recompute` spans: jobs whose group tasks were re-issued after a
    /// regeneration, closed when the job next consumes a result (or ends).
    recompute: HashMap<JobId, SpanId>,
}

impl Scheduler {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pool: WorkerPool,
        ctx: ThreadContext<PctMessage>,
        governor: Arc<AdmissionGovernor>,
        status: Arc<StatusTable>,
        cancels: Arc<Mutex<Vec<JobId>>>,
        shutdown: Arc<AtomicBool>,
        max_in_flight: usize,
        events: Arc<EventBus>,
        chaos: ChaosPlan,
        standard_detector: DetectorConfig,
        telemetry: Telemetry,
    ) -> Self {
        let mut standard_watch = FailureDetector::new(standard_detector);
        for name in pool.standard.iter().chain(&pool.remote.workers) {
            standard_watch.watch(MemberId::new(name.clone(), 0), 0);
        }
        let free_workers = pool.standard.iter().cloned().collect();
        let free_remote = pool.remote.workers.iter().cloned().collect();
        let free_groups = pool.groups.iter().cloned().collect();
        let free_inline: VecDeque<String> = pool.inline.executors.iter().cloned().collect();
        let inline_names: HashSet<String> = pool.inline.executors.iter().cloned().collect();
        let chaos_fired = vec![false; chaos.kills.len()];
        let report = ServiceReport {
            started_at: Some(SystemTime::now()),
            ..ServiceReport::default()
        };
        Self {
            pool,
            ctx,
            governor,
            status,
            cancels,
            shutdown,
            max_in_flight: max_in_flight.max(1),
            events,
            running: BTreeMap::new(),
            tasks: HashMap::new(),
            completed_group_tasks: HashSet::new(),
            completed_group_order: VecDeque::new(),
            cancelled_queued: HashSet::new(),
            free_workers,
            free_groups,
            free_inline,
            free_remote,
            inline_names,
            next_task: 1,
            standard_watch,
            orphans: VecDeque::new(),
            started: Instant::now(),
            report,
            chaos,
            chaos_fired,
            regenerations_seen: 0,
            telemetry,
            recompute: HashMap::new(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The live occupancy of every lane, handed to the routing policy.
    fn lane_snapshot(&self) -> LaneSnapshot {
        LaneSnapshot {
            standard: LaneLoad {
                total: self.pool.standard.len(),
                free: self.free_workers.len(),
            },
            resilient: LaneLoad {
                total: self.pool.groups.len(),
                free: self.free_groups.len(),
            },
            shared_memory: LaneLoad {
                total: self.pool.inline.executors.len(),
                free: self.free_inline.len(),
            },
            remote: LaneLoad {
                total: self.pool.remote.workers.len(),
                free: self.free_remote.len(),
            },
        }
    }

    /// The scheduler main loop; returns the final report at shutdown.
    pub fn run(mut self) -> ServiceReport {
        loop {
            self.drain_cancels();
            self.admit();
            self.dispatch();
            match self.ctx.recv_timeout(Duration::from_millis(5)) {
                Ok(envelope) => {
                    self.on_message(envelope);
                    while let Ok(Some(envelope)) = self.ctx.try_recv() {
                        self.on_message(envelope);
                    }
                }
                Err(ScpError::Timeout) => {}
                Err(_) => break,
            }
            while let Ok(result) = self.pool.inline.results.try_recv() {
                self.on_inline_result(result);
            }
            self.maintain_resilient();
            self.maintain_standard();
            self.enforce_deadlines();
            if self.shutdown.load(Ordering::Acquire)
                && self.running.is_empty()
                && self.governor.queue_is_empty()
            {
                break;
            }
        }
        self.finalize()
    }

    /// Applies client cancellation requests.
    fn drain_cancels(&mut self) {
        let drained: Vec<JobId> = {
            let mut cancels = self.cancels.lock().expect("cancel lock");
            std::mem::take(&mut *cancels)
        };
        for id in drained {
            if self.running.contains_key(&id) {
                self.fail_job(id, JobStatus::Cancelled, String::new());
            } else if self.status.status(id) == Some(JobStatus::Queued) {
                self.cancelled_queued.insert(id);
            }
        }
    }

    /// Marks a job terminal in the results plane, reports it back to the
    /// admission governor (releasing its in-flight bytes and crediting the
    /// tenant), and publishes the event.
    fn terminal_transition(
        &mut self,
        id: JobId,
        tenant: TenantId,
        status: JobStatus,
        output: Option<FusionOutput>,
        error: Option<String>,
    ) {
        self.governor.note_terminal(id, tenant, status);
        self.status.transition(id, status, output, error);
        self.events.publish(ServiceEvent::Terminal {
            job: id,
            tenant,
            status,
        });
    }

    /// Admits queued jobs while in-flight capacity remains, resolving each
    /// job's route against the live lane snapshot.
    fn admit(&mut self) {
        while self.running.len() < self.max_in_flight {
            let Some(queued) = self.governor.next() else {
                break;
            };
            let tenant = queued.spec.tenant;
            self.report.jobs_submitted += 1;
            if self.cancelled_queued.remove(&queued.id) {
                self.report.jobs_cancelled += 1;
                self.telemetry
                    .span_end_with_detail(queued.queued_span, Some("cancelled"));
                self.telemetry
                    .span_end_with_detail(queued.span, Some("cancelled"));
                self.terminal_transition(queued.id, tenant, JobStatus::Cancelled, None, None);
                continue;
            }
            let cube = match queued.spec.source.realize() {
                Ok(cube) => cube,
                Err(e) => {
                    self.report.jobs_failed += 1;
                    self.telemetry
                        .span_end_with_detail(queued.queued_span, Some("failed"));
                    self.telemetry
                        .span_end_with_detail(queued.span, Some("failed"));
                    self.terminal_transition(
                        queued.id,
                        tenant,
                        JobStatus::Failed,
                        None,
                        Some(e.to_string()),
                    );
                    continue;
                }
            };
            let shards = match partition_rows(cube.dims(), queued.spec.shards) {
                Ok(shards) => shards,
                Err(e) => {
                    self.report.jobs_failed += 1;
                    self.telemetry
                        .span_end_with_detail(queued.queued_span, Some("failed"));
                    self.telemetry
                        .span_end_with_detail(queued.span, Some("failed"));
                    self.terminal_transition(
                        queued.id,
                        tenant,
                        JobStatus::Failed,
                        None,
                        Some(e.to_string()),
                    );
                    continue;
                }
            };
            let request = RoutingRequest::for_dims(cube.dims(), shards.len());
            let (backend, auto_routed) =
                self.governor
                    .resolve(queued.spec.route, &request, &self.lane_snapshot());
            self.report.route_admitted(backend, auto_routed);
            // Close the `queued` span: its duration *is* the admission wait.
            let wait = self
                .telemetry
                .span_end(queued.queued_span)
                .unwrap_or_else(|| queued.submitted.elapsed());
            self.telemetry
                .observe("fusiond_admission_wait_seconds", &[], wait);
            let phase_name = match backend {
                BackendKind::SharedMemory => "inline",
                _ => "screen",
            };
            let phase_span =
                self.telemetry
                    .span_start(phase_name, queued.span, Some(queued.id), "");
            let run = JobRun {
                tenant,
                priority: queued.spec.priority,
                backend,
                config: queued.spec.config,
                cube,
                shards,
                deadline: queued.spec.timeout.map(|t| Instant::now() + t),
                submitted: queued.submitted,
                phase: Phase::Screen,
                unique: Vec::new(),
                unique_count: 0,
                screen_next: 0,
                screen_outstanding: false,
                derive_outstanding: false,
                inline_dispatched: false,
                transform_next: 0,
                strips: Vec::new(),
                eigenvalues: Vec::new(),
                mean: None,
                transform: None,
                scales: Vec::new(),
                span: queued.span,
                phase_span,
                phase_name,
                phase_entered: Instant::now(),
            };
            self.status
                .transition(queued.id, JobStatus::Running, None, None);
            self.events.publish_correlated(
                ServiceEvent::Admitted {
                    job: queued.id,
                    tenant,
                    route: backend,
                    auto: auto_routed,
                },
                queued.span,
            );
            self.running.insert(queued.id, run);
        }
    }

    /// Forms this tick's dispatch batch: runnable jobs in (priority,
    /// submission) order, each matched to free slots of its lane.
    fn dispatch(&mut self) {
        let mut order: Vec<(u8, JobId)> = self
            .running
            .iter()
            .map(|(id, job)| (job.priority.rank(), *id))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, id) in order {
            self.dispatch_job(id);
        }
    }

    /// Hands one whole shared-memory job to a free in-process executor.
    fn dispatch_inline(&mut self, id: JobId) {
        let Some(job) = self.running.get_mut(&id) else {
            return;
        };
        if job.inline_dispatched {
            return;
        }
        let Some(executor) = self.free_inline.pop_front() else {
            return;
        };
        job.inline_dispatched = true;
        let task = self.next_task;
        self.next_task += 1;
        let work = InlineJob {
            job: id,
            cube: Arc::clone(&job.cube),
            config: job.config,
        };
        // No payload accounting here: the inline lane ships an `Arc`, not a
        // message, so it neither clones nor "ships" sub-cube bytes — keeping
        // `payload_bytes_shipped` the message-plane denominator it has
        // always been in BENCH_history.csv.
        if self.pool.inline.dispatch(&executor, work) {
            self.report.tasks_dispatched += 1;
            self.report.route_task(BackendKind::SharedMemory);
            self.events.publish(ServiceEvent::Dispatched {
                job: id,
                route: BackendKind::SharedMemory,
                task,
                kind: "inline-job",
            });
        } else {
            // The executor thread is gone; its slot is not returned.
            self.fail_job(
                id,
                JobStatus::Failed,
                format!("shared-memory executor '{executor}' lost"),
            );
        }
    }

    /// Dispatches as many of one job's ready tasks as its lane has slots.
    fn dispatch_job(&mut self, id: JobId) {
        if matches!(
            self.running.get(&id).map(|job| job.backend),
            Some(BackendKind::SharedMemory)
        ) {
            self.dispatch_inline(id);
            return;
        }
        loop {
            let Some(job) = self.running.get_mut(&id) else {
                return;
            };
            let lane_free = match job.backend {
                BackendKind::Standard => !self.free_workers.is_empty(),
                BackendKind::Resilient => !self.free_groups.is_empty(),
                BackendKind::Remote => !self.free_remote.is_empty(),
                BackendKind::SharedMemory => unreachable!("handled by dispatch_inline"),
            };
            if !lane_free {
                return;
            }
            let task = self.next_task;
            // Measure (via the clone ledger) any sub-cube payload bytes the
            // task construction deep-copies: 0 on the view-based plane, and
            // attributed per phase so the bench can prove it per phase.
            let ledger = CloneLedger::snapshot();
            let Some(message) = job.next_task_message(task) else {
                return;
            };
            let cloned = ledger.delta();
            match ChaosPhase::of_message(&message) {
                Some(ChaosPhase::Screen) => self.report.bytes_cloned_screen += cloned,
                Some(ChaosPhase::Transform) => self.report.bytes_cloned_transform += cloned,
                _ => {}
            }
            self.report.payload_bytes_shipped += message.payload_bytes();
            self.fire_chaos_kills(id, &message);
            self.next_task += 1;
            let Some(job) = self.running.get_mut(&id) else {
                return;
            };
            let backend = job.backend;
            let kind = message.kind();
            match backend {
                BackendKind::Standard | BackendKind::Remote => {
                    let free = match backend {
                        BackendKind::Standard => &mut self.free_workers,
                        _ => &mut self.free_remote,
                    };
                    let Some(worker) = free.pop_front() else {
                        // A loss landed between the lane check and the pop;
                        // the task message is already built (and its phase
                        // bookkeeping advanced), so park it for re-dispatch
                        // instead of panicking.
                        self.orphans.push_back(Orphan {
                            task,
                            job: id,
                            message,
                            attempts: 0,
                            from: String::new(),
                        });
                        return;
                    };
                    self.tasks.insert(
                        task,
                        InFlight {
                            job: id,
                            assignee: Assignee::Worker(worker.clone()),
                            message: message.clone(),
                            sent_at: Instant::now(),
                            attempts: 0,
                        },
                    );
                    if self.ctx.send(&worker, message).is_err() {
                        // Dead mailbox discovered at send time — the watchdog
                        // would confirm it next sweep, but the task is
                        // already recorded in flight, so confirm the loss now
                        // and let the orphan queue re-dispatch it.
                        self.on_worker_lost(&worker);
                        return;
                    }
                    self.report.tasks_dispatched += 1;
                    self.report.route_task(backend);
                    self.events.publish(ServiceEvent::Dispatched {
                        job: id,
                        route: backend,
                        task,
                        kind,
                    });
                }
                BackendKind::Resilient => {
                    let Some(group) = self.free_groups.pop_front() else {
                        self.orphans.push_back(Orphan {
                            task,
                            job: id,
                            message,
                            attempts: 0,
                            from: String::new(),
                        });
                        return;
                    };
                    // Record the task before sending so a failure-triggered
                    // re-issue covers it.
                    self.tasks.insert(
                        task,
                        InFlight {
                            job: id,
                            assignee: Assignee::Group(group.clone()),
                            message: message.clone(),
                            sent_at: Instant::now(),
                            attempts: 0,
                        },
                    );
                    let dead = match self
                        .pool
                        .resilient
                        .group_send(&mut self.ctx, &group, &message)
                    {
                        Ok(dead) => dead,
                        Err(e) => {
                            self.tasks.remove(&task);
                            self.fail_job(id, JobStatus::Failed, e.to_string());
                            return;
                        }
                    };
                    self.report.tasks_dispatched += 1;
                    self.report.route_task(BackendKind::Resilient);
                    self.events.publish(ServiceEvent::Dispatched {
                        job: id,
                        route: BackendKind::Resilient,
                        task,
                        kind,
                    });
                    let now_ms = self.now_ms();
                    for failed in dead {
                        self.recover_member(failed, now_ms);
                    }
                }
                BackendKind::SharedMemory => unreachable!("handled by dispatch_inline"),
            }
        }
    }

    /// Consumes one finished whole-job result from the shared-memory lane.
    fn on_inline_result(&mut self, result: InlineResult) {
        self.free_inline.push_back(result.executor);
        self.report.results_received += 1;
        let id = result.job;
        let Some(job) = self.running.get(&id) else {
            // Job already cancelled, timed out or failed; slot reclaimed.
            return;
        };
        debug_assert!(matches!(job.backend, BackendKind::SharedMemory));
        match result.result {
            Ok(output) => {
                let mut job = self.running.remove(&id).expect("present: checked above");
                roll_phase(&self.telemetry, &mut self.report, &mut job, id, None);
                self.telemetry
                    .span_end_with_detail(job.span, Some("completed"));
                self.report.jobs_completed += 1;
                self.report.route_completed(BackendKind::SharedMemory);
                self.telemetry
                    .observe("fusiond_job_latency_seconds", &[], job.submitted.elapsed());
                self.report
                    .record_latency(job.priority, job.submitted.elapsed());
                self.terminal_transition(id, job.tenant, JobStatus::Completed, Some(output), None);
            }
            Err(error) => self.fail_job(id, JobStatus::Failed, error),
        }
    }

    /// Consumes one envelope from the pool.
    fn on_message(&mut self, envelope: Envelope<PctMessage>) {
        let now_ms = self.now_ms();
        let from = envelope.from;
        match envelope.payload {
            PctMessage::Heartbeat => {
                // Shared-memory executors ring a zero-payload doorbell after
                // each completion purely to cut the recv timeout short; the
                // results themselves are drained right after this match.
                if !self.inline_names.contains(&from) {
                    self.report.heartbeats += 1;
                    self.note_liveness(&from, now_ms);
                }
            }
            msg => {
                // Any traffic from a member is proof of life.
                self.note_liveness(&from, now_ms);
                let Some(task) = msg.task() else { return };
                // A reply from a worker the task has been reassigned away
                // from (it got its answer out just before dying, after the
                // watchdog re-dispatched): the live assignment stands, the
                // stale copy is a duplicate.
                if let Some(InFlight {
                    assignee: Assignee::Worker(name),
                    ..
                }) = self.tasks.get(&task)
                {
                    if *name != from {
                        self.report.duplicates_ignored += 1;
                        return;
                    }
                }
                let id = if let Some(inflight) = self.tasks.remove(&task) {
                    match inflight.assignee {
                        Assignee::Worker(name) => {
                            if self.pool.remote.workers.contains(&name) {
                                self.free_remote.push_back(name);
                            } else {
                                self.free_workers.push_back(name);
                            }
                        }
                        Assignee::Group(name) => {
                            self.free_groups.push_back(name);
                            self.remember_completed_group_task(task);
                        }
                    }
                    inflight.job
                } else if let Some(pos) = self.orphans.iter().position(|o| o.task == task) {
                    // The lost worker got its reply out before dying:
                    // consume it and drop the pending re-dispatch (there is
                    // no slot to return — the worker is gone).
                    let orphan = self.orphans.remove(pos).expect("position just found");
                    orphan.job
                } else {
                    if self.completed_group_tasks.contains(&task) {
                        self.report.duplicates_ignored += 1;
                    }
                    return;
                };
                self.report.results_received += 1;
                // A consumed result proves the post-regeneration pipeline is
                // flowing again: close any open `recompute` span.
                if let Some(span) = self.recompute.remove(&id) {
                    self.telemetry.span_end(Some(span));
                }
                let Some(job) = self.running.get_mut(&id) else {
                    // Job already cancelled, timed out or failed.
                    return;
                };
                let outcome = match msg {
                    PctMessage::SeededUnique { accepted, .. } => {
                        job.unique.extend(accepted);
                        job.screen_outstanding = false;
                        job.screen_next += 1;
                        if job.screen_next >= job.shards.len() {
                            job.phase = Phase::Derive;
                            roll_phase(&self.telemetry, &mut self.report, job, id, Some("derive"));
                        }
                        Outcome::InProgress
                    }
                    PctMessage::DerivedTransform {
                        mean,
                        transform,
                        eigenvalues,
                        ..
                    } => {
                        job.scales = ComponentScale::from_eigenvalues(&eigenvalues, 3)
                            .into_iter()
                            .map(|s| (s.min, s.max))
                            .collect();
                        job.mean = Some(mean);
                        job.transform = Some(transform);
                        job.eigenvalues = eigenvalues;
                        job.phase = Phase::Transform;
                        roll_phase(
                            &self.telemetry,
                            &mut self.report,
                            job,
                            id,
                            Some("transform"),
                        );
                        Outcome::InProgress
                    }
                    PctMessage::RgbStrip {
                        row_start,
                        rows,
                        width,
                        rgb,
                        ..
                    } => {
                        job.strips.push((row_start, rows, width, rgb));
                        if job.strips.len() >= job.shards.len() {
                            Outcome::Complete
                        } else {
                            Outcome::InProgress
                        }
                    }
                    PctMessage::TaskFailed { error, .. } => Outcome::Failed(error),
                    // Protocol messages the service never requests.
                    _ => Outcome::InProgress,
                };
                match outcome {
                    Outcome::InProgress => {}
                    Outcome::Complete => self.complete_job(id),
                    Outcome::Failed(error) => self.fail_job(id, JobStatus::Failed, error),
                }
            }
        }
    }

    /// Assembles and publishes a finished message-plane job.
    fn complete_job(&mut self, id: JobId) {
        let Some(mut job) = self.running.remove(&id) else {
            return;
        };
        if let Some(span) = self.recompute.remove(&id) {
            self.telemetry.span_end(Some(span));
        }
        roll_phase(&self.telemetry, &mut self.report, &mut job, id, None);
        let tenant = job.tenant;
        match assemble_image(job.cube.width(), job.cube.height(), job.strips) {
            Ok(image) => {
                let output = FusionOutput {
                    image,
                    eigenvalues: job.eigenvalues,
                    unique_count: job.unique_count,
                    pixels: job.cube.pixels(),
                };
                self.telemetry
                    .span_end_with_detail(job.span, Some("completed"));
                self.report.jobs_completed += 1;
                self.report.route_completed(job.backend);
                self.telemetry
                    .observe("fusiond_job_latency_seconds", &[], job.submitted.elapsed());
                self.report
                    .record_latency(job.priority, job.submitted.elapsed());
                self.terminal_transition(id, tenant, JobStatus::Completed, Some(output), None);
            }
            Err(e) => {
                let error = e.to_string();
                self.telemetry
                    .span_end_with_detail(job.span, Some("failed"));
                self.telemetry.dump_failure(Some(id), &error);
                self.report.jobs_failed += 1;
                self.terminal_transition(id, tenant, JobStatus::Failed, None, Some(error));
            }
        }
    }

    /// Removes a job with a non-success terminal status.  Its outstanding
    /// tasks stay in the table so their eventual results free the slots.
    fn fail_job(&mut self, id: JobId, status: JobStatus, error: String) {
        let Some(mut job) = self.running.remove(&id) else {
            return;
        };
        if let Some(span) = self.recompute.remove(&id) {
            self.telemetry.span_end(Some(span));
        }
        roll_phase(&self.telemetry, &mut self.report, &mut job, id, None);
        let label = match status {
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed-out",
            _ => "failed",
        };
        self.telemetry.span_end_with_detail(job.span, Some(label));
        match status {
            JobStatus::Failed => self.report.jobs_failed += 1,
            JobStatus::Cancelled => self.report.jobs_cancelled += 1,
            JobStatus::TimedOut => self.report.jobs_timed_out += 1,
            _ => {}
        }
        if status == JobStatus::Failed {
            self.telemetry.dump_failure(Some(id), &error);
        }
        let error = if error.is_empty() { None } else { Some(error) };
        self.terminal_transition(id, job.tenant, status, None, error);
    }

    /// Fires every not-yet-fired chaos kill anchored to this dispatch event
    /// (the first task of `job`'s phase, identified by the message kind).
    fn fire_chaos_kills(&mut self, job: JobId, message: &PctMessage) {
        if self.chaos.kills.is_empty() {
            return;
        }
        let Some(phase) = ChaosPhase::of_message(message) else {
            return;
        };
        let mut killed = Vec::new();
        for (kill, fired) in self.chaos.kills.iter().zip(self.chaos_fired.iter_mut()) {
            if !*fired && kill.job == job && kill.phase == phase {
                self.pool.resilient.injector.attack(&kill.member);
                // Stamp the kill time so the detection that eventually fires
                // can report its latency and back-date the `detect` span.
                self.telemetry.note_kill(&kill.member);
                killed.push(kill.member.clone());
                *fired = true;
            }
        }
        let span = self.running.get(&job).and_then(|j| j.phase_span);
        for member in killed {
            self.telemetry.instant("kill", Some(job), span, &member);
            self.events
                .publish_correlated(ServiceEvent::MemberKilled { member }, span);
        }
    }

    /// Periodic resilient-lane upkeep: sweep, probe, retransmit, regenerate.
    fn maintain_resilient(&mut self) {
        if self.pool.groups.is_empty() {
            return;
        }
        let now_ms = self.now_ms();
        let failures = self.pool.resilient.sweep_and_probe(&mut self.ctx, now_ms);
        for failed in failures {
            self.recover_member(failed, now_ms);
        }
        self.retransmit_overdue_group_tasks();
    }

    /// Refreshes the failure-detector lease of whichever lane `from`
    /// belongs to.  `heartbeat_from` parses `group#incarnation` routing
    /// names and ignores everything else, so plain worker names never
    /// collide with it.
    fn note_liveness(&mut self, from: &str, now_ms: u64) {
        self.pool.resilient.heartbeat_from(from, now_ms);
        if self.pool.standard.iter().any(|w| w == from)
            || self.pool.remote.workers.iter().any(|w| w == from)
        {
            self.standard_watch
                .heartbeat(&MemberId::new(from, 0), now_ms);
        }
    }

    /// Periodic standard/remote-lane upkeep: sweep the worker watchdog,
    /// probe the suspects' mailboxes (only a dead mailbox confirms a loss —
    /// anything else refreshes the lease, the `sweep_and_probe` pattern),
    /// then re-dispatch any orphaned tasks.  Probing a remote worker rings
    /// its bridge mailbox: a bridge that lost its socket has exited and
    /// dropped the mailbox, so the probe reports `Disconnected` exactly as
    /// a dead thread's would.
    fn maintain_standard(&mut self) {
        if !self.pool.standard.is_empty() || !self.pool.remote.workers.is_empty() {
            let now_ms = self.now_ms();
            for suspect in self.standard_watch.sweep(now_ms) {
                match self.ctx.send(&suspect.group, PctMessage::Heartbeat) {
                    Err(ScpError::Disconnected(_)) => {
                        let worker = suspect.group.clone();
                        self.on_worker_lost(&worker);
                    }
                    _ => self.standard_watch.heartbeat(&suspect, now_ms),
                }
            }
        }
        self.dispatch_orphans();
    }

    /// Handles one confirmed worker loss (standard thread or remote
    /// process): retire the worker, orphan its in-flight tasks for
    /// re-dispatch, and fail the lane over if it just drained to zero
    /// workers.
    fn on_worker_lost(&mut self, worker: &str) {
        let lane = if self.pool.standard.iter().any(|w| w == worker) {
            BackendKind::Standard
        } else if self.pool.remote.workers.iter().any(|w| w == worker) {
            BackendKind::Remote
        } else {
            // Already retired (a send failure and the watchdog can both
            // report the same loss).
            return;
        };
        if lane == BackendKind::Standard {
            self.pool.standard.retain(|w| w != worker);
            self.free_workers.retain(|w| w != worker);
        } else {
            self.pool.remote.workers.retain(|w| w != worker);
            self.free_remote.retain(|w| w != worker);
        }
        self.standard_watch.unwatch(&MemberId::new(worker, 0));
        self.report.workers_lost += 1;
        // The loss's telemetry hangs under the phase span of the job whose
        // tasks were riding on the dead worker (if any).
        let affected = self.tasks.values().find_map(|inflight| {
            matches!(&inflight.assignee, Assignee::Worker(w) if w == worker).then_some(inflight.job)
        });
        let parent = affected.and_then(|id| self.running.get(&id).and_then(|j| j.phase_span));
        if let Some(kill_nanos) = self.telemetry.take_kill(worker) {
            // Back-date the `detect` span to the kill; its width *is* the
            // detection latency.
            if let Some(now) = self.telemetry.now_nanos() {
                self.telemetry.observe(
                    "fusiond_detection_latency_seconds",
                    &[],
                    Duration::from_nanos(now.saturating_sub(kill_nanos)),
                );
            }
            self.telemetry
                .span_closed("detect", parent, affected, kill_nanos, worker);
        }
        self.telemetry
            .instant("worker-lost", affected, parent, worker);
        self.events.publish_correlated(
            ServiceEvent::WorkerLost {
                worker: worker.to_string(),
            },
            parent,
        );
        // Orphan every task the dead worker was holding; dropping tasks of
        // already-terminal jobs on the floor.
        let orphaned: Vec<TaskId> = self
            .tasks
            .iter()
            .filter_map(|(task, inflight)| {
                matches!(&inflight.assignee, Assignee::Worker(w) if w == worker).then_some(*task)
            })
            .collect();
        for task in orphaned {
            let inflight = self.tasks.remove(&task).expect("key just listed");
            if self.running.contains_key(&inflight.job) {
                self.orphans.push_back(Orphan {
                    task,
                    job: inflight.job,
                    message: inflight.message,
                    attempts: inflight.attempts.saturating_add(1),
                    from: worker.to_string(),
                });
            }
        }
        let lane_empty = match lane {
            BackendKind::Standard => self.pool.standard.is_empty(),
            _ => self.pool.remote.workers.is_empty(),
        };
        if lane_empty {
            self.fail_over_jobs(lane);
        }
    }

    /// Re-dispatches orphaned tasks to free slots of their job's (possibly
    /// failed-over) lane.  Orphans whose lane has no free slot right now
    /// stay queued for the next tick; orphans of finished jobs are dropped.
    fn dispatch_orphans(&mut self) {
        if self.orphans.is_empty() {
            return;
        }
        let mut deferred: VecDeque<Orphan> = VecDeque::new();
        while let Some(orphan) = self.orphans.pop_front() {
            let Some(job) = self.running.get(&orphan.job) else {
                continue;
            };
            match job.backend {
                BackendKind::Standard | BackendKind::Remote => {
                    let free = match job.backend {
                        BackendKind::Standard => &mut self.free_workers,
                        _ => &mut self.free_remote,
                    };
                    let Some(worker) = free.pop_front() else {
                        deferred.push_back(orphan);
                        continue;
                    };
                    self.tasks.insert(
                        orphan.task,
                        InFlight {
                            job: orphan.job,
                            assignee: Assignee::Worker(worker.clone()),
                            message: orphan.message.clone(),
                            sent_at: Instant::now(),
                            attempts: orphan.attempts,
                        },
                    );
                    if self.ctx.send(&worker, orphan.message.clone()).is_err() {
                        // This worker is gone too: re-park the orphan and
                        // retire the worker (which may orphan more tasks
                        // onto the queue we are draining — they get their
                        // turn in this same loop).
                        self.tasks.remove(&orphan.task);
                        deferred.push_back(orphan);
                        self.on_worker_lost(&worker);
                        continue;
                    }
                    self.note_reassigned(&orphan, &worker);
                }
                BackendKind::Resilient => {
                    let Some(group) = self.free_groups.pop_front() else {
                        deferred.push_back(orphan);
                        continue;
                    };
                    self.tasks.insert(
                        orphan.task,
                        InFlight {
                            job: orphan.job,
                            assignee: Assignee::Group(group.clone()),
                            message: orphan.message.clone(),
                            sent_at: Instant::now(),
                            attempts: orphan.attempts,
                        },
                    );
                    let dead =
                        match self
                            .pool
                            .resilient
                            .group_send(&mut self.ctx, &group, &orphan.message)
                        {
                            Ok(dead) => dead,
                            Err(e) => {
                                self.tasks.remove(&orphan.task);
                                self.fail_job(orphan.job, JobStatus::Failed, e.to_string());
                                continue;
                            }
                        };
                    self.note_reassigned(&orphan, &group);
                    let now_ms = self.now_ms();
                    for failed in dead {
                        self.recover_member(failed, now_ms);
                    }
                }
                // The whole job was failed over to an inline executor; its
                // message-plane tasks are moot (the executor recomputes the
                // job start to finish, byte-identical by construction).
                BackendKind::SharedMemory => continue,
            }
        }
        self.orphans = deferred;
    }

    /// Accounts and publishes one orphan landing on a new slot: a
    /// reassignment if it was ever delivered to a lost worker, a plain
    /// (deferred) first dispatch otherwise.
    fn note_reassigned(&mut self, orphan: &Orphan, to: &str) {
        let span = self.running.get(&orphan.job).and_then(|j| j.phase_span);
        let route = self
            .running
            .get(&orphan.job)
            .map(|j| j.backend)
            .unwrap_or(BackendKind::Standard);
        if orphan.from.is_empty() {
            self.report.tasks_dispatched += 1;
            self.report.route_task(route);
            self.events.publish_correlated(
                ServiceEvent::Dispatched {
                    job: orphan.job,
                    route,
                    task: orphan.task,
                    kind: orphan.message.kind(),
                },
                span,
            );
        } else {
            self.report.tasks_reassigned += 1;
            self.telemetry
                .count("fusiond_worker_reassignments_total", &[]);
            self.telemetry
                .instant("reassign", Some(orphan.job), span, to);
            self.events.publish_correlated(
                ServiceEvent::TaskReassigned {
                    job: orphan.job,
                    task: orphan.task,
                    from: orphan.from.clone(),
                    to: to.to_string(),
                },
                span,
            );
        }
    }

    /// A worker lane (`Standard` or `Remote`) drained to zero workers: move
    /// every running job of that lane to another enabled lane through the
    /// routing policy (honouring its lane clamps) instead of failing it.
    /// Queued jobs need nothing — admission resolves against the live
    /// snapshot, which now reads the lane as disabled.
    fn fail_over_jobs(&mut self, lane: BackendKind) {
        let stranded: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, job)| job.backend == lane)
            .map(|(id, _)| *id)
            .collect();
        if stranded.is_empty() {
            return;
        }
        let snapshot = self.lane_snapshot();
        for id in stranded {
            let Some(job) = self.running.get(&id) else {
                continue;
            };
            let request = RoutingRequest::for_dims(job.cube.dims(), job.shards.len());
            let (target, _) = self.governor.resolve(Route::Auto, &request, &snapshot);
            if target == lane || !snapshot.lane(target).enabled() {
                // The clamp found no other enabled lane.
                self.fail_job(
                    id,
                    JobStatus::Failed,
                    format!(
                        "{} lane drained and no other lane is configured",
                        lane.label()
                    ),
                );
                continue;
            }
            let job = self.running.get_mut(&id).expect("present: checked above");
            job.backend = target;
            if target == BackendKind::SharedMemory {
                // The inline lane recomputes the whole job from the shared
                // cube; partial message-plane progress (strips, orphans) is
                // discarded rather than merged, and the phase tree rolls to
                // `inline` like a natively-routed inline job's.
                job.inline_dispatched = false;
                job.strips.clear();
                roll_phase(&self.telemetry, &mut self.report, job, id, Some("inline"));
                self.orphans.retain(|o| o.job != id);
            }
            self.report.lane_failovers += 1;
            self.telemetry.count("fusiond_lane_failovers_total", &[]);
            let span = self.running.get(&id).and_then(|j| j.phase_span);
            self.telemetry
                .instant("lane-failover", Some(id), span, target.label());
            self.events.publish_correlated(
                ServiceEvent::LaneFailover {
                    job: id,
                    from: lane,
                    to: target,
                },
                span,
            );
        }
    }

    /// Re-sends group-lane tasks that have gone unanswered past their
    /// backoff (the shared [`OutstandingTask::backoff`] policy) to every
    /// *current* member of their group — covering survivors that never
    /// received the original send, the same task-loss window `pct`'s
    /// resilient manager closes.  Retransmits are idempotent: workers
    /// recompute and the result plane dedups by task id.
    fn retransmit_overdue_group_tasks(&mut self) {
        let retransmit_after = self.pool.resilient.retransmit_after;
        let overdue: Vec<(TaskId, String, PctMessage)> = self
            .tasks
            .iter()
            .filter_map(|(task, inflight)| match &inflight.assignee {
                Assignee::Group(group)
                    if inflight.sent_at.elapsed()
                        > OutstandingTask::backoff(retransmit_after, inflight.attempts) =>
                {
                    Some((*task, group.clone(), inflight.message.clone()))
                }
                _ => None,
            })
            .collect();
        let now_ms = self.now_ms();
        for (task, group, message) in overdue {
            let dead = match self
                .pool
                .resilient
                .group_send(&mut self.ctx, &group, &message)
            {
                Ok(dead) => dead,
                Err(_) => continue,
            };
            let mut job = None;
            if let Some(inflight) = self.tasks.get_mut(&task) {
                inflight.sent_at = Instant::now();
                inflight.attempts = inflight.attempts.saturating_add(1);
                job = Some(inflight.job);
            }
            self.report.tasks_retransmitted += 1;
            if let Some(job) = job {
                let span = self.running.get(&job).and_then(|j| j.phase_span);
                self.telemetry
                    .instant("retransmit", Some(job), span, &group);
                self.events.publish_correlated(
                    ServiceEvent::Retransmitted {
                        job,
                        task,
                        group: group.clone(),
                    },
                    span,
                );
            }
            for failed in dead {
                self.recover_member(failed, now_ms);
            }
        }
    }

    /// Records a completed group-lane task id in the bounded duplicate
    /// window (replica results for it may still be in flight).
    fn remember_completed_group_task(&mut self, task: TaskId) {
        if self.completed_group_tasks.insert(task) {
            self.completed_group_order.push_back(task);
            if self.completed_group_order.len() > DEDUP_WINDOW {
                if let Some(evicted) = self.completed_group_order.pop_front() {
                    self.completed_group_tasks.remove(&evicted);
                }
            }
        }
    }

    /// Tasks currently in flight on one replica group, keyed for re-issue.
    /// Only that group's tasks are referenced — re-issue never touches
    /// others, and with view payloads the message clones are `Arc` bumps.
    fn group_outstanding(&self, group: &str) -> HashMap<TaskId, OutstandingTask> {
        self.tasks
            .iter()
            .filter_map(|(task, inflight)| match &inflight.assignee {
                Assignee::Group(g) if g == group => Some((
                    *task,
                    OutstandingTask::new(g.clone(), inflight.message.clone()),
                )),
                _ => None,
            })
            .collect()
    }

    /// Regenerates a failed member; if regeneration is impossible, fails the
    /// jobs whose tasks were riding on that group.
    fn recover_member(&mut self, failed: MemberId, now_ms: u64) {
        let mut outstanding = self.group_outstanding(&failed.group);
        // The failure's telemetry hangs under the phase span of the job
        // whose tasks were riding on the dead member's group (if any).
        let affected = self.tasks.values().find_map(|inflight| {
            matches!(&inflight.assignee, Assignee::Group(g) if *g == failed.group)
                .then_some(inflight.job)
        });
        let parent = affected.and_then(|id| self.running.get(&id).and_then(|j| j.phase_span));
        let member = failed.routing_name();
        if let Some(kill_nanos) = self.telemetry.take_kill(&member) {
            // Back-date the `detect` span to the kill; its width *is* the
            // detection latency.
            if let Some(now) = self.telemetry.now_nanos() {
                self.telemetry.observe(
                    "fusiond_detection_latency_seconds",
                    &[],
                    Duration::from_nanos(now.saturating_sub(kill_nanos)),
                );
            }
            self.telemetry
                .span_closed("detect", parent, affected, kill_nanos, &member);
        }
        let regen_span = self
            .telemetry
            .span_start("regenerate", parent, affected, &member);
        let result = self.pool.resilient.handle_member_failure(
            &mut self.ctx,
            &self.pool.runtime,
            &mut outstanding,
            now_ms,
            &failed,
        );
        if let Some(regen_time) = self.telemetry.span_end(regen_span) {
            self.telemetry
                .observe("fusiond_regeneration_seconds", &[], regen_time);
        }
        if result.is_ok() {
            // The re-issued tasks now recompute lost work; the span closes
            // when the job next consumes a result.
            if let Some(id) = affected {
                if !self.recompute.contains_key(&id) {
                    if let Some(span) =
                        self.telemetry
                            .span_start("recompute", parent, Some(id), &failed.group)
                    {
                        self.recompute.insert(id, span);
                    }
                }
            }
            // The re-issue just delivered these tasks afresh; restart their
            // retransmit timers so the next sweep does not re-send them.
            for inflight in self.tasks.values_mut() {
                if matches!(&inflight.assignee, Assignee::Group(g) if *g == failed.group) {
                    inflight.sent_at = Instant::now();
                }
            }
            // Publish every regeneration the protocol performed since the
            // last look (normally exactly one).  The regenerator's history
            // is the live log; the run report only folds it in at shutdown.
            let history = self.pool.resilient.regenerator.history();
            for regen in &history[self.regenerations_seen..] {
                self.events.publish_correlated(
                    ServiceEvent::MemberRegenerated {
                        failed: regen.failed.routing_name(),
                        replacement: regen.replacement.routing_name(),
                    },
                    parent,
                );
            }
            self.regenerations_seen = self.pool.resilient.regenerator.history().len();
        }
        if let Err(e) = result {
            let affected: Vec<(TaskId, JobId)> = self
                .tasks
                .iter()
                .filter_map(|(task, inflight)| match &inflight.assignee {
                    Assignee::Group(group) if *group == failed.group => Some((*task, inflight.job)),
                    _ => None,
                })
                .collect();
            for (task, _) in &affected {
                self.tasks.remove(task);
            }
            for (_, id) in affected {
                self.fail_job(
                    id,
                    JobStatus::Failed,
                    format!("replica group '{}' unrecoverable: {e}", failed.group),
                );
            }
        }
    }

    /// Abandons jobs past their deadline.
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<JobId> = self
            .running
            .iter()
            .filter_map(|(id, job)| match job.deadline {
                Some(deadline) if now > deadline => Some(*id),
                _ => None,
            })
            .collect();
        for id in expired {
            self.fail_job(id, JobStatus::TimedOut, String::new());
        }
    }

    /// Tears the pool down and closes the books.
    fn finalize(mut self) -> ServiceReport {
        // Anything still tracked at this point (abnormal exit) fails.
        let leftover: Vec<JobId> = self.running.keys().copied().collect();
        for id in leftover {
            self.fail_job(id, JobStatus::Failed, "service stopped".to_string());
        }
        while let Some(queued) = self.governor.next() {
            self.report.jobs_submitted += 1;
            self.report.jobs_failed += 1;
            self.terminal_transition(
                queued.id,
                queued.spec.tenant,
                JobStatus::Failed,
                None,
                Some("service stopped".to_string()),
            );
        }
        let resilient_report = self.pool.shutdown(&mut self.ctx);
        self.report.regenerations = resilient_report.regenerations.len();
        self.report.members_attacked = resilient_report.members_attacked;
        self.report.queue_high_water = self.governor.queue_high_water();
        self.report.elapsed = self.started.elapsed();
        self.report.finished_at = Some(SystemTime::now());
        self.report
    }
}
