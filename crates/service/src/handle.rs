//! Owned, typed job handles — the client's end of one submitted job.
//!
//! `submit` used to return a bare [`JobId`] and leave the rest to id-keyed
//! free methods on the service, with two footguns: `wait(id)` consumed the
//! job's record, so a second `wait` reported `UnknownJob`; and nothing tied
//! a job's lifetime to the code that submitted it.  A [`JobHandle`] owns
//! those concerns:
//!
//! * [`JobHandle::wait`] / [`JobHandle::wait_timeout`] / [`JobHandle::try_wait`]
//!   resolve to a typed terminal [`JobOutcome`]; a second `wait` returns the
//!   typed [`ServiceError::OutcomeTaken`] instead of pretending the job
//!   never existed.
//! * [`JobHandle::status`] and [`JobHandle::cancel`] are handle methods, not
//!   id-keyed service calls — and `status` keeps answering (from the
//!   observed terminal state) after the outcome has been taken.
//! * Dropping a handle without waiting cancels the job and releases its
//!   record (**cancel-on-drop**), so abandoned submissions can't leak
//!   results or run to completion unobserved.  [`JobHandle::detach`] opts
//!   out: the job keeps running fire-and-forget, observable through the
//!   [`crate::ServiceEvent`] stream and the final report.
//!
//! Handles outlive the service: they hold the results plane by `Arc`, so a
//! handle can still `wait` (and observe the forced terminal state) after
//! [`crate::FusionService::shutdown`].

use crate::job::{JobId, JobStatus};
use crate::status::StatusTable;
use crate::{Result, ServiceError};
use pct::FusionOutput;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The typed terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job finished; the fused output is attached.
    Completed(FusionOutput),
    /// The job failed; the payload is the cause.
    Failed(String),
    /// The job was cancelled before completion.
    Cancelled,
    /// The job exceeded its deadline and was abandoned.
    TimedOut,
}

impl JobOutcome {
    /// The terminal [`JobStatus`] this outcome corresponds to.
    pub fn status(&self) -> JobStatus {
        match self {
            JobOutcome::Completed(_) => JobStatus::Completed,
            JobOutcome::Failed(_) => JobStatus::Failed,
            JobOutcome::Cancelled => JobStatus::Cancelled,
            JobOutcome::TimedOut => JobStatus::TimedOut,
        }
    }

    /// The fused output, when the job completed.
    pub fn output(&self) -> Option<&FusionOutput> {
        match self {
            JobOutcome::Completed(output) => Some(output),
            _ => None,
        }
    }

    /// Converts into the old-style result (`Completed` is `Ok`, every other
    /// terminal state its matching [`ServiceError`]).
    pub fn into_result(self) -> Result<FusionOutput> {
        match self {
            JobOutcome::Completed(output) => Ok(output),
            JobOutcome::Failed(cause) => Err(ServiceError::Failed(cause)),
            JobOutcome::Cancelled => Err(ServiceError::Cancelled),
            JobOutcome::TimedOut => Err(ServiceError::TimedOut),
        }
    }
}

/// The pieces of the service a handle needs to keep alive.
#[derive(Clone)]
pub(crate) struct HandlePlane {
    pub status: Arc<StatusTable>,
    pub cancels: Arc<Mutex<Vec<JobId>>>,
}

impl HandlePlane {
    /// Records a cancellation request if the job is known and not yet
    /// terminal; the scheduler applies it asynchronously.
    pub fn request_cancel(&self, id: JobId) -> bool {
        let live = matches!(self.status.status(id), Some(status) if !status.is_terminal());
        if live {
            self.cancels.lock().expect("cancel lock").push(id);
        }
        live
    }
}

/// An owned handle to one submitted job.
///
/// ```no_run
/// use hsi::SceneConfig;
/// use service::{CubeSource, FusionService, JobSpec, ServiceConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = FusionService::start(ServiceConfig::builder().build()?)?;
/// let spec = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1))).build()?;
/// let mut handle = service.submit(spec)?;
/// let outcome = handle.wait()?;
/// println!("{} unique pixels", outcome.output().unwrap().unique_count);
/// # Ok(())
/// # }
/// ```
#[must_use = "dropping a JobHandle cancels the job; call detach() to let it run"]
pub struct JobHandle {
    id: JobId,
    plane: HandlePlane,
    /// The terminal status observed through this handle, once known.
    observed: Option<JobStatus>,
    /// Whether `wait` already consumed the outcome.
    taken: bool,
    detached: bool,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("observed", &self.observed)
            .field("taken", &self.taken)
            .field("detached", &self.detached)
            .finish()
    }
}

impl JobHandle {
    pub(crate) fn new(id: JobId, plane: HandlePlane) -> Self {
        Self {
            id,
            plane,
            observed: None,
            taken: false,
            detached: false,
        }
    }

    /// The job's identifier (stable across the service's lifetime; what the
    /// event stream refers to).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's current lifecycle status.  Keeps answering from the
    /// observed terminal state after [`JobHandle::wait`] consumed the
    /// record.
    pub fn status(&self) -> Result<JobStatus> {
        match self.plane.status.status(self.id) {
            Some(status) => Ok(status),
            None => self.observed.ok_or(ServiceError::UnknownJob(self.id)),
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.status(), Ok(status) if status.is_terminal())
    }

    /// Blocks until the job reaches a terminal state and returns the typed
    /// outcome.  The outcome can be taken once; a second `wait` returns
    /// [`ServiceError::OutcomeTaken`] (the status stays queryable through
    /// [`JobHandle::status`]).
    pub fn wait(&mut self) -> Result<JobOutcome> {
        match self.wait_until(None)? {
            Some(outcome) => Ok(outcome),
            None => unreachable!("deadline-free wait returns an outcome or errors"),
        }
    }

    /// Blocks up to `timeout` for a terminal state.  `Ok(None)` means the
    /// job is still running when the timeout expires — the handle stays
    /// usable and a later `wait` can still take the outcome.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<JobOutcome>> {
        self.wait_until(Some(Instant::now() + timeout))
    }

    /// Non-blocking probe: `Ok(Some(..))` takes the outcome if the job is
    /// already terminal, `Ok(None)` if it is still running.
    pub fn try_wait(&mut self) -> Result<Option<JobOutcome>> {
        self.wait_until(Some(Instant::now()))
    }

    fn wait_until(&mut self, deadline: Option<Instant>) -> Result<Option<JobOutcome>> {
        if self.taken {
            return Err(ServiceError::OutcomeTaken(self.id));
        }
        match self.plane.status.wait_outcome(self.id, deadline)? {
            Some(outcome) => {
                self.taken = true;
                self.observed = Some(outcome.status());
                Ok(Some(outcome))
            }
            None => Ok(None),
        }
    }

    /// Requests cancellation.  Returns whether the job was known and not yet
    /// terminal when the request was recorded; the scheduler applies it
    /// asynchronously.
    pub fn cancel(&self) -> bool {
        self.plane.request_cancel(self.id)
    }

    /// Disarms cancel-on-drop and releases the handle: the job keeps
    /// running fire-and-forget, and its record is released at the terminal
    /// transition (no waiter is left to consume it, so retaining the full
    /// image would leak).  Returns the [`JobId`] so the caller can
    /// correlate the job's [`crate::ServiceEvent`]s.
    pub fn detach(mut self) -> JobId {
        self.detached = true;
        self.plane.status.abandon(self.id);
        self.id
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if self.detached || self.taken {
            return;
        }
        // Cancel-on-drop: stop the work if it still runs, and mark the
        // record abandoned so the results plane can release it at the
        // terminal transition (nobody is left to consume it).
        self.plane.request_cancel(self.id);
        self.plane.status.abandon(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::JobRecord;

    fn plane() -> HandlePlane {
        HandlePlane {
            status: Arc::new(StatusTable::new()),
            cancels: Arc::new(Mutex::new(Vec::new())),
        }
    }

    #[test]
    fn outcome_accessors_and_conversion() {
        let failed = JobOutcome::Failed("boom".into());
        assert_eq!(failed.status(), JobStatus::Failed);
        assert!(failed.output().is_none());
        assert_eq!(
            failed.into_result().unwrap_err(),
            ServiceError::Failed("boom".into())
        );
        assert_eq!(
            JobOutcome::Cancelled.into_result().unwrap_err(),
            ServiceError::Cancelled
        );
        assert_eq!(
            JobOutcome::TimedOut.into_result().unwrap_err(),
            ServiceError::TimedOut
        );
    }

    #[test]
    fn double_wait_is_a_typed_error_and_status_survives() {
        let plane = plane();
        plane.status.insert(5, JobRecord::queued());
        let mut handle = JobHandle::new(5, plane.clone());
        plane.status.transition(5, JobStatus::Cancelled, None, None);
        assert_eq!(handle.wait().unwrap(), JobOutcome::Cancelled);
        // The record is consumed, but the handle still knows the status...
        assert_eq!(handle.status().unwrap(), JobStatus::Cancelled);
        assert!(handle.is_terminal());
        // ...and a second wait is a typed error, not UnknownJob.
        assert_eq!(handle.wait().unwrap_err(), ServiceError::OutcomeTaken(5));
        assert_eq!(
            handle.try_wait().unwrap_err(),
            ServiceError::OutcomeTaken(5)
        );
    }

    #[test]
    fn wait_timeout_leaves_a_running_job_claimable() {
        let plane = plane();
        plane.status.insert(7, JobRecord::queued());
        let mut handle = JobHandle::new(7, plane.clone());
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(20)).unwrap(),
            None
        );
        assert_eq!(handle.try_wait().unwrap(), None);
        plane.status.transition(7, JobStatus::Completed, None, None);
        // Completed-without-output is an internal error — but the point
        // here is that the outcome is still takeable after the timeout.
        assert!(matches!(
            handle.wait().unwrap_err(),
            ServiceError::Internal(_)
        ));
    }

    #[test]
    fn drop_cancels_and_abandons_but_detach_only_abandons() {
        let plane = plane();
        plane.status.insert(1, JobRecord::queued());
        let handle = JobHandle::new(1, plane.clone());
        drop(handle);
        assert_eq!(plane.cancels.lock().unwrap().as_slice(), &[1]);
        // The abandoned record is released at its terminal transition.
        plane.status.transition(1, JobStatus::Cancelled, None, None);
        assert_eq!(plane.status.status(1), None);

        // Detach never cancels; the record stays live until terminal, then
        // is released (nobody is left to consume it).
        plane.status.insert(2, JobRecord::queued());
        let handle = JobHandle::new(2, plane.clone());
        assert_eq!(handle.detach(), 2);
        assert_eq!(plane.cancels.lock().unwrap().as_slice(), &[1]);
        plane.status.transition(2, JobStatus::Running, None, None);
        assert_eq!(plane.status.status(2), Some(JobStatus::Running));
        plane.status.transition(2, JobStatus::Completed, None, None);
        assert_eq!(plane.status.status(2), None, "released at terminal");
    }

    #[test]
    fn waited_handles_do_not_cancel_on_drop() {
        let plane = plane();
        plane.status.insert(3, JobRecord::queued());
        let mut handle = JobHandle::new(3, plane.clone());
        plane.status.transition(3, JobStatus::Cancelled, None, None);
        let _ = handle.wait().unwrap();
        drop(handle);
        assert!(plane.cancels.lock().unwrap().is_empty());
    }

    #[test]
    fn cancel_reports_liveness() {
        let plane = plane();
        plane.status.insert(9, JobRecord::queued());
        let handle = JobHandle::new(9, plane.clone());
        assert!(handle.cancel());
        plane.status.transition(9, JobStatus::Cancelled, None, None);
        assert!(!handle.cancel(), "terminal jobs are not cancellable");
        let _ = handle.detach();
    }
}
