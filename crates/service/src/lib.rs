//! `fusiond` — a sharded, batched fusion service layer over the PCT
//! pipelines.
//!
//! The paper's resilient PCT fuses *one* cube per run; this crate turns the
//! reproduction into a job-oriented service that multiplexes many fusion
//! requests over one long-lived, sharded worker pool:
//!
//! * **Ingestion front end** — a [`JobSpec`] (cube source, [`pct::PctConfig`],
//!   [`Route`], priority, shard count, optional deadline; built with the
//!   validating [`JobSpec::builder`]) is submitted through a bounded
//!   admission queue with backpressure ([`FusionService::submit`] blocks
//!   when full, [`FusionService::try_submit`] rejects).  Submission returns
//!   an owned [`JobHandle`]: `wait`/`wait_timeout`/`try_wait` resolve to a
//!   typed [`JobOutcome`], `cancel` and `status` are handle methods, and a
//!   dropped handle cancels its job unless [`JobHandle::detach`]ed.
//! * **Policy-driven routing** — a job's [`Route`] is either pinned to a
//!   lane or [`Route::Auto`], resolved at admission by the service's
//!   pluggable [`RoutingPolicy`] (by cube size, lane load, round-robin, or
//!   [`pct::FusionBackend::cost_hint`]) over four real lanes: *standard*
//!   workers, *resilient* replica groups, in-process *shared-memory*
//!   executors for small cubes, and *remote* worker processes spoken to
//!   over the versioned [`wire`] protocol.
//! * **Batch scheduler** — admitted jobs are sharded via `hsi::partition`,
//!   and their tasks are batch-dispatched in priority order onto a shared
//!   pool of long-lived `scp` workers: a *standard* lane of plain worker
//!   threads and a *resilient* lane of `resilience` replica groups owned by
//!   one [`pct::ResilientManagerState`] — no per-request pipeline spawning.
//!   Shared-memory jobs bypass the message plane entirely.
//! * **Results plane** — typed per-job outcomes through the handle,
//!   cancellation, per-job timeouts, a subscribable [`ServiceEvent`] stream
//!   ([`FusionService::subscribe`]) covering admission/dispatch/retransmit/
//!   kill/regeneration/terminal transitions, and a [`ServiceReport`] with
//!   queue-depth/latency/throughput and per-route counters.
//!
//! ## Determinism
//!
//! Scheduling is concurrent, but every job's output is **byte-identical to
//! [`pct::SequentialPct`]** on the same cube and configuration, regardless of
//! pool size, lane, interleaving with other jobs, or worker kills on the
//! resilient lane.  Three properties make that exact:
//!
//! 1. screening runs as a *chain* of seeded tasks over the job's shards
//!    (`pct::screening::screen_pixels_seeded` reproduces whole-image greedy
//!    screening bit-for-bit for consecutive splits),
//! 2. statistics (steps 3–6) are derived in a single task over the merged
//!    unique set, exactly as the sequential reference computes them, and
//! 3. the transform/colour phase is per-pixel pure, so row-strip fan-out
//!    reassembles to the identical image.
//!
//! Intra-job screening is therefore pipelined rather than fanned out; pool
//! utilisation comes from running many jobs concurrently, which is the
//! service's reason to exist.
//!
//! ## Admission & tenancy
//!
//! Every admission decision — queueing, route resolution and load shedding —
//! flows through one [`AdmissionGovernor`] (module [`admission`]).  Jobs
//! carry a [`TenantId`] and a [`JobClass`]; tenants get weighted fair-share
//! dequeueing (deterministic deficit round-robin) plus optional per-tenant
//! quotas, and a tiered [`PressurePolicy`] degrades load in order —
//! *downgrade* priority, then *shed*, then *reject* — with every refusal
//! carrying a machine-readable [`RetryAfter`] hint in both the typed
//! [`ServiceError`] and the [`ServiceEvent::Rejected`] event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod config;
pub mod events;
pub mod handle;
pub mod job;
pub mod report;
pub mod routing;
pub mod service;

mod pool;
mod queue;
mod remote;
mod scheduler;
mod status;

pub use admission::{
    AdmissionConfig, AdmissionGovernor, DrrQueue, JobClass, LoadView, PressureDecision,
    PressureGauge, PressurePolicy, RetryAfter, ShedReason, TenantId, TenantQuota,
};
pub use chaos::{ChaosPhase, ChaosPlan, PhaseKill};
pub use config::{ConfigError, PoolConfig, RemoteWorkerSpec, ServiceConfig, ServiceConfigBuilder};
pub use events::{EventSubscriber, ServiceEvent, StampedEvent};
pub use handle::{JobHandle, JobOutcome};
pub use job::{BackendKind, CubeSource, JobId, JobSpec, JobSpecBuilder, JobStatus, Priority};
pub use report::{LatencyStats, RouteStats, ServiceReport, TenantStats};
pub use routing::{
    CostHintPolicy, LaneLoad, LaneSnapshot, LeastLoadedPolicy, RoundRobinPolicy, Route,
    RoutingPolicy, RoutingRequest, SharedRoutingPolicy, SizeThresholdPolicy,
};
pub use service::FusionService;

/// Errors produced by the fusion service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission queue is full (backpressure): the job was rejected.
    /// The hint tells the submitter when a retry is worthwhile.
    Saturated {
        /// Machine-readable back-off hint.
        retry_after: RetryAfter,
    },
    /// The admission plane shed the job at a pressure watermark.
    Shed {
        /// The watermark (or quota) that triggered the shed.
        reason: ShedReason,
        /// Machine-readable back-off hint.
        retry_after: RetryAfter,
    },
    /// The tenant's per-tenant queued-job quota is exhausted.
    QuotaExceeded {
        /// The tenant whose quota is exhausted.
        tenant: TenantId,
        /// Machine-readable back-off hint.
        retry_after: RetryAfter,
    },
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// No job with this id is known to the service.
    UnknownJob(JobId),
    /// The job failed; the payload is the cause.
    Failed(String),
    /// The job was cancelled before it completed.
    Cancelled,
    /// The job exceeded its deadline and was abandoned.
    TimedOut,
    /// The handle's typed outcome was already taken by an earlier `wait`.
    OutcomeTaken(JobId),
    /// A job or service configuration value is invalid.
    InvalidConfig(String),
    /// An internal substrate error (message passing, resiliency, pipeline).
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Saturated { retry_after } => {
                write!(f, "admission queue is full ({retry_after})")
            }
            ServiceError::Shed {
                reason,
                retry_after,
            } => {
                write!(
                    f,
                    "job shed at {} watermark ({retry_after})",
                    reason.label()
                )
            }
            ServiceError::QuotaExceeded {
                tenant,
                retry_after,
            } => {
                write!(
                    f,
                    "tenant {} queued-job quota exhausted ({retry_after})",
                    tenant.label()
                )
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServiceError::Failed(cause) => write!(f, "job failed: {cause}"),
            ServiceError::Cancelled => write!(f, "job was cancelled"),
            ServiceError::TimedOut => write!(f, "job timed out"),
            ServiceError::OutcomeTaken(id) => {
                write!(
                    f,
                    "outcome of job {id} was already taken by an earlier wait"
                )
            }
            ServiceError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal service error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<scp::ScpError> for ServiceError {
    fn from(e: scp::ScpError) -> Self {
        ServiceError::Internal(format!("message passing: {e}"))
    }
}

impl From<pct::PctError> for ServiceError {
    fn from(e: pct::PctError) -> Self {
        ServiceError::Internal(format!("pipeline: {e}"))
    }
}

impl From<resilience::ResilienceError> for ServiceError {
    fn from(e: resilience::ResilienceError) -> Self {
        ServiceError::Internal(format!("resiliency: {e}"))
    }
}

impl From<hsi::HsiError> for ServiceError {
    fn from(e: hsi::HsiError) -> Self {
        ServiceError::Internal(format!("imagery: {e}"))
    }
}

impl From<wire::WireError> for ServiceError {
    fn from(e: wire::WireError) -> Self {
        ServiceError::Internal(format!("wire protocol: {e}"))
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServiceError>;
