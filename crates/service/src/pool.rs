//! The long-lived worker pool shared by every job.
//!
//! Two lanes over one `scp` runtime:
//!
//! * **standard** — plain worker threads running the distributed
//!   implementation's reactive `worker_loop`;
//! * **resilient** — replica groups owned by a [`pct::ResilientManagerState`]
//!   (kill switches, heartbeat detector, regenerator), the same machinery the
//!   resilient pipeline uses per run, here owned for the pool's lifetime.
//!
//! The scheduler addresses the pool through the manager [`ThreadContext`];
//! pool threads are spawned once at service start and live until shutdown —
//! no per-request pipeline spawning.

use crate::service::PoolConfig;
use crate::Result;
use pct::distributed::{worker_loop, MANAGER};
use pct::messages::PctMessage;
use pct::resilient::{AttackPlan, ResilientManagerState, ResilientRunReport};
use resilience::attack::AttackInjector;
use scp::{Runtime, RuntimeConfig, ThreadContext, ThreadHandle};

pub(crate) struct WorkerPool {
    pub runtime: Runtime<PctMessage>,
    /// Routing names of the standard-lane workers.
    pub standard: Vec<String>,
    /// Logical group names of the resilient lane.
    pub groups: Vec<String>,
    standard_handles: Vec<ThreadHandle<()>>,
    /// The folded resilient-lane state (membership, detector, regenerator,
    /// member handles).
    pub resilient: ResilientManagerState,
}

impl WorkerPool {
    /// Spawns the pool and returns it together with the manager context the
    /// scheduler drives it through.
    pub fn start(config: &PoolConfig) -> Result<(WorkerPool, ThreadContext<PctMessage>)> {
        // Channel validation is off for the same reason as the resilient
        // pipeline: regenerated members introduce routing names a static
        // graph cannot anticipate.
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let ctx = runtime.context(MANAGER)?;

        let standard: Vec<String> = (0..config.standard_workers.max(1))
            .map(|i| format!("svc{i}"))
            .collect();
        let standard_handles = standard
            .iter()
            .map(|name| runtime.spawn(name.clone(), worker_loop))
            .collect::<scp::Result<Vec<_>>>()?;

        let groups: Vec<String> = (0..config.replica_groups)
            .map(|i| format!("rg{i}"))
            .collect();
        let resilient = ResilientManagerState::build(
            &runtime,
            &groups,
            config.replication_level.max(1),
            config.detector,
            AttackPlan::none(),
        )?;

        Ok((
            WorkerPool {
                runtime,
                standard,
                groups,
                standard_handles,
                resilient,
            },
            ctx,
        ))
    }

    /// The kill-switch registry of the resilient lane (for attack drills).
    pub fn injector(&self) -> AttackInjector {
        self.resilient.injector.clone()
    }

    /// Shuts both lanes down and returns the resilient lane's run report.
    pub fn shutdown(mut self, ctx: &mut ThreadContext<PctMessage>) -> ResilientRunReport {
        for name in &self.standard {
            let _ = ctx.send(name, PctMessage::Shutdown);
        }
        for handle in self.standard_handles.drain(..) {
            handle.join();
        }
        self.resilient.shutdown(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_starts_and_shuts_down_idle() {
        let config = PoolConfig {
            standard_workers: 2,
            replica_groups: 2,
            replication_level: 2,
            ..PoolConfig::default()
        };
        let (pool, mut ctx) = WorkerPool::start(&config).unwrap();
        assert_eq!(pool.standard, vec!["svc0", "svc1"]);
        assert_eq!(pool.groups, vec!["rg0", "rg1"]);
        assert_eq!(pool.resilient.membership.all_members().len(), 4);
        let mut targets = pool.injector().targets();
        targets.sort();
        assert_eq!(targets, vec!["rg0#0", "rg0#1", "rg1#0", "rg1#1"]);
        let report = pool.shutdown(&mut ctx);
        assert!(report.regenerations.is_empty());
    }

    #[test]
    fn pool_can_run_without_a_resilient_lane() {
        let config = PoolConfig {
            standard_workers: 1,
            replica_groups: 0,
            ..PoolConfig::default()
        };
        let (pool, mut ctx) = WorkerPool::start(&config).unwrap();
        assert!(pool.groups.is_empty());
        assert!(pool.resilient.membership.all_members().is_empty());
        let report = pool.shutdown(&mut ctx);
        assert!(report.members_attacked.is_empty());
    }
}
