//! The long-lived worker pool shared by every job.
//!
//! Four lanes:
//!
//! * **standard** — plain worker threads running a reactive task loop over
//!   one `scp` runtime.  Each worker registers a kill switch in the pool's
//!   shared [`AttackInjector`] and heartbeats the manager (idle and after
//!   every reply), so the scheduler's watchdog can *detect* a lost worker
//!   instead of discovering the dead mailbox at send time;
//! * **resilient** — replica groups owned by a [`pct::ResilientManagerState`]
//!   (kill switches, heartbeat detector, regenerator), the same machinery the
//!   resilient pipeline uses per run, here owned for the pool's lifetime;
//! * **shared-memory** — in-process executor threads that run whole jobs
//!   start-to-finish against the shared `Arc` cube with **zero protocol
//!   messages**: work arrives over a plain channel and the pipeline is the
//!   sequential reference (`SequentialPct::run_shared`), which *is* the
//!   service's byte-identity contract.  The cheapest path for small cubes;
//! * **remote** — worker *processes* behind the versioned [`wire`] protocol,
//!   each fronted by a [`crate::remote::RemoteLane`] bridge thread so the
//!   scheduler addresses them like any standard worker.  Same task loop,
//!   same heartbeat cadence, same watchdog — across a process boundary.
//!
//! The scheduler addresses the message-plane lanes through the manager
//! [`ThreadContext`] and the shared-memory lane through [`InlineLane`];
//! all threads are spawned once at service start and live until shutdown —
//! no per-request pipeline spawning.

use crate::config::PoolConfig;
use crate::job::JobId;
use crate::remote::RemoteLane;
use crate::Result;
use hsi::HyperCube;
use pct::distributed::{handle_task, MANAGER};
use pct::messages::PctMessage;
use pct::resilient::{AttackPlan, ResilientManagerState, ResilientRunReport};
use pct::{FusionOutput, PctConfig, SequentialPct};
use resilience::attack::{AttackInjector, KillSwitch};
use scp::{Runtime, RuntimeConfig, ScpError, ThreadContext, ThreadHandle};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// One whole job handed to a shared-memory executor.
pub(crate) struct InlineJob {
    pub job: JobId,
    pub cube: Arc<HyperCube>,
    pub config: PctConfig,
}

/// What a shared-memory executor sends back.
pub(crate) struct InlineResult {
    pub executor: String,
    pub job: JobId,
    pub result: std::result::Result<FusionOutput, String>,
}

/// The standard-lane worker loop: `pct::distributed::worker_loop` plus the
/// two liveness hooks the resilient lane's `member_loop` proves out — a
/// [`KillSwitch`] polled at every timeout boundary (so chaos drills can take
/// a standard worker down mid-job) and heartbeats to the manager (idle and
/// after every reply) that feed the scheduler's standard-lane watchdog.
/// Dying silently — no goodbye message — is the point: the watchdog must
/// detect the silence, not be told.
fn standard_worker_loop(mut ctx: ThreadContext<PctMessage>, kill: KillSwitch) {
    loop {
        if kill.is_killed() {
            return;
        }
        match ctx.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => match envelope.payload {
                PctMessage::Shutdown => return,
                msg => {
                    if let Some(reply) = handle_task(msg) {
                        if kill.is_killed() {
                            return;
                        }
                        if ctx.send(MANAGER, reply).is_err() {
                            return;
                        }
                        let _ = ctx.send(MANAGER, PctMessage::Heartbeat);
                    }
                }
            },
            Err(ScpError::Timeout) => {
                if ctx.send(MANAGER, PctMessage::Heartbeat).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// The in-process shared-memory executor lane.
pub(crate) struct InlineLane {
    /// Names of the executors (`shm0`, `shm1`, ...).
    pub executors: Vec<String>,
    senders: HashMap<String, Sender<InlineJob>>,
    /// Results from every executor, drained by the scheduler.
    pub results: Receiver<InlineResult>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl InlineLane {
    fn start(runtime: &Runtime<PctMessage>, count: usize) -> Result<InlineLane> {
        let (result_tx, results) = std::sync::mpsc::channel::<InlineResult>();
        let mut executors = Vec::new();
        let mut senders = HashMap::new();
        let mut handles = Vec::new();
        for i in 0..count {
            let name = format!("shm{i}");
            let (tx, rx) = std::sync::mpsc::channel::<InlineJob>();
            let result_tx = result_tx.clone();
            let thread_name = name.clone();
            // The executor also holds an scp context: results travel over
            // the plain channel (they carry the full output), but a
            // zero-payload doorbell through the message plane wakes the
            // scheduler out of its recv timeout immediately, so inline
            // completions are not quantized to the scheduler tick.
            let mut doorbell = runtime.context(name.clone())?;
            let handle = std::thread::Builder::new()
                .name(format!("fusiond-{name}"))
                .spawn(move || {
                    // The executor loop: one whole job per message, computed
                    // by the sequential reference over the shared cube, which
                    // is byte-identical to every other lane by the service's
                    // determinism contract.  A panic inside the pipeline is
                    // caught and reported as a job failure — otherwise the
                    // job would stay Running forever (hanging every waiter
                    // and shutdown) and the slot would be lost.
                    while let Ok(work) = rx.recv() {
                        let result =
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                SequentialPct::new(work.config).run_shared(&work.cube)
                            })) {
                                Ok(run) => run.map_err(|e| e.to_string()),
                                Err(panic) => Err(format!(
                                    "shared-memory executor panicked: {}",
                                    panic_message(panic.as_ref())
                                )),
                            };
                        if result_tx
                            .send(InlineResult {
                                executor: thread_name.clone(),
                                job: work.job,
                                result,
                            })
                            .is_err()
                        {
                            return;
                        }
                        let _ = doorbell.send(MANAGER, PctMessage::Heartbeat);
                    }
                })
                .expect("failed to spawn shared-memory executor");
            executors.push(name.clone());
            senders.insert(name, tx);
            handles.push(handle);
        }
        Ok(InlineLane {
            executors,
            senders,
            results,
            handles,
        })
    }

    /// Hands one whole job to a named executor.  Returns whether the
    /// executor accepted it (false only if its thread died).
    pub fn dispatch(&self, executor: &str, work: InlineJob) -> bool {
        match self.senders.get(executor) {
            Some(tx) => tx.send(work).is_ok(),
            None => false,
        }
    }

    /// Closes the work channels and joins the executors.  Results already
    /// sent stay readable until the lane is dropped.
    fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

pub(crate) struct WorkerPool {
    pub runtime: Runtime<PctMessage>,
    /// Routing names of the standard-lane workers.
    pub standard: Vec<String>,
    /// Logical group names of the resilient lane.
    pub groups: Vec<String>,
    standard_handles: Vec<ThreadHandle<()>>,
    /// The folded resilient-lane state (membership, detector, regenerator,
    /// member handles).
    pub resilient: ResilientManagerState,
    /// The in-process shared-memory executor lane.
    pub inline: InlineLane,
    /// The remote worker-process lane (wire protocol over TCP).
    pub remote: RemoteLane,
}

impl WorkerPool {
    /// Spawns the pool and returns it together with the manager context the
    /// scheduler drives it through.
    pub fn start(
        config: &PoolConfig,
        telemetry: telemetry::Telemetry,
    ) -> Result<(WorkerPool, ThreadContext<PctMessage>)> {
        // Channel validation is off for the same reason as the resilient
        // pipeline: regenerated members introduce routing names a static
        // graph cannot anticipate.
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let ctx = runtime.context(MANAGER)?;

        let groups: Vec<String> = (0..config.replica_groups)
            .map(|i| format!("rg{i}"))
            .collect();
        let resilient = ResilientManagerState::build(
            &runtime,
            &groups,
            config.replication_level.max(1),
            config.detector,
            AttackPlan::none(),
        )?
        .with_telemetry(telemetry);

        // Standard workers register kill switches in the *same* injector as
        // the replica members, so one attack surface (`inject_attack`,
        // `ChaosPlan`) covers both message-plane lanes.
        let standard: Vec<String> = (0..config.standard_workers)
            .map(|i| format!("svc{i}"))
            .collect();
        let standard_handles = standard
            .iter()
            .map(|name| {
                let kill = resilient.injector.register(name.clone());
                runtime.spawn(name.clone(), move |ctx| standard_worker_loop(ctx, kill))
            })
            .collect::<scp::Result<Vec<_>>>()?;

        let inline = InlineLane::start(&runtime, config.shared_memory_executors)?;
        let remote = RemoteLane::start(&runtime, &config.remote_workers)?;

        Ok((
            WorkerPool {
                runtime,
                standard,
                groups,
                standard_handles,
                resilient,
                inline,
                remote,
            },
            ctx,
        ))
    }

    /// The shared kill-switch registry covering both message-plane lanes —
    /// replica members *and* standard workers (for attack drills).
    pub fn injector(&self) -> AttackInjector {
        self.resilient.injector.clone()
    }

    /// Shuts all four lanes down and returns the resilient lane's run
    /// report.
    pub fn shutdown(mut self, ctx: &mut ThreadContext<PctMessage>) -> ResilientRunReport {
        for name in &self.standard {
            let _ = ctx.send(name, PctMessage::Shutdown);
        }
        // Remote workers get Shutdown through their bridge mailboxes; a
        // worker lost earlier has a dead mailbox and the send just fails.
        for name in &self.remote.workers {
            let _ = ctx.send(name, PctMessage::Shutdown);
        }
        for handle in self.standard_handles.drain(..) {
            handle.join();
        }
        self.inline.shutdown();
        self.remote.shutdown();
        self.resilient.shutdown(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::{SceneConfig, SceneGenerator};

    #[test]
    fn pool_starts_and_shuts_down_idle() {
        let config = PoolConfig {
            standard_workers: 2,
            replica_groups: 2,
            replication_level: 2,
            shared_memory_executors: 2,
            ..PoolConfig::default()
        };
        let (pool, mut ctx) = WorkerPool::start(&config, telemetry::Telemetry::disabled()).unwrap();
        assert_eq!(pool.standard, vec!["svc0", "svc1"]);
        assert_eq!(pool.groups, vec!["rg0", "rg1"]);
        assert_eq!(pool.inline.executors, vec!["shm0", "shm1"]);
        assert!(pool.remote.workers.is_empty());
        assert_eq!(pool.resilient.membership.all_members().len(), 4);
        let mut targets = pool.injector().targets();
        targets.sort();
        assert_eq!(
            targets,
            vec!["rg0#0", "rg0#1", "rg1#0", "rg1#1", "svc0", "svc1"],
            "standard workers share the replica members' kill registry"
        );
        let report = pool.shutdown(&mut ctx);
        assert!(report.regenerations.is_empty());
    }

    #[test]
    fn pool_can_run_without_a_resilient_lane() {
        let config = PoolConfig {
            standard_workers: 1,
            replica_groups: 0,
            shared_memory_executors: 0,
            ..PoolConfig::default()
        };
        let (pool, mut ctx) = WorkerPool::start(&config, telemetry::Telemetry::disabled()).unwrap();
        assert!(pool.groups.is_empty());
        assert!(pool.inline.executors.is_empty());
        assert!(pool.resilient.membership.all_members().is_empty());
        let report = pool.shutdown(&mut ctx);
        assert!(report.members_attacked.is_empty());
    }

    #[test]
    fn inline_lane_computes_the_sequential_reference() {
        let (pool, mut ctx) = WorkerPool::start(
            &PoolConfig {
                standard_workers: 1,
                replica_groups: 0,
                shared_memory_executors: 1,
                ..PoolConfig::default()
            },
            telemetry::Telemetry::disabled(),
        )
        .unwrap();
        let cube = Arc::new(
            SceneGenerator::new(SceneConfig::small(11))
                .unwrap()
                .generate(),
        );
        assert!(pool.inline.dispatch(
            "shm0",
            InlineJob {
                job: 42,
                cube: Arc::clone(&cube),
                config: PctConfig::paper(),
            }
        ));
        assert!(!pool.inline.dispatch(
            "shm9",
            InlineJob {
                job: 1,
                cube: Arc::clone(&cube),
                config: PctConfig::paper(),
            }
        ));
        let result = pool.inline.results.recv().unwrap();
        assert_eq!(result.job, 42);
        assert_eq!(result.executor, "shm0");
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(result.result.unwrap(), reference);
        pool.shutdown(&mut ctx);
    }
}
