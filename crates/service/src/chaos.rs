//! Deterministic chaos injection for the resilient lane.
//!
//! Attack drills via [`crate::FusionService::inject_attack`] kill a member
//! "whenever the call happens to land", which is fine for demos but useless
//! for a reproducible kill matrix.  A [`ChaosPlan`] instead ties each kill
//! to a *scheduler event*: the dispatch of the first task of a given job's
//! given phase.  The scheduler fires the kill switch immediately before
//! sending that task, so a seeded workload plus a plan replays the exact
//! same failure at the exact same protocol point every run — the substrate
//! of the chaos test matrix (member index × phase).

use crate::job::JobId;
use pct::messages::PctMessage;

/// The job phase a [`PhaseKill`] is anchored to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// The seeded-screening chain (steps 1–2).
    Screen,
    /// The single derive task (steps 3–6).
    Derive,
    /// The transform/colour fan-out (steps 7–8).
    Transform,
}

impl ChaosPhase {
    /// The phase a dispatched task message belongs to, if it is a task.
    pub fn of_message(msg: &PctMessage) -> Option<ChaosPhase> {
        match msg {
            PctMessage::ScreenTask { .. } | PctMessage::ScreenSeededTask { .. } => {
                Some(ChaosPhase::Screen)
            }
            PctMessage::DeriveTask { .. } => Some(ChaosPhase::Derive),
            PctMessage::TransformTask { .. } => Some(ChaosPhase::Transform),
            _ => None,
        }
    }

    /// A short label for reports and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosPhase::Screen => "screen",
            ChaosPhase::Derive => "derive",
            ChaosPhase::Transform => "transform",
        }
    }
}

/// One scheduled kill: when the scheduler dispatches the first task of
/// `phase` for job `job`, the member `member` is killed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseKill {
    /// The job whose phase anchors the kill (ids are assigned in submission
    /// order starting at 1).
    pub job: JobId,
    /// The phase whose first dispatched task triggers the kill.
    pub phase: ChaosPhase,
    /// Routing name of the member to kill (e.g. `rg0#1`).
    pub member: String,
}

/// A deterministic schedule of member kills, anchored to scheduler events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The kills to perform; each fires at most once.
    pub kills: Vec<PhaseKill>,
}

impl ChaosPlan {
    /// No chaos.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single phase-anchored kill.
    pub fn kill_at(job: JobId, phase: ChaosPhase, member: impl Into<String>) -> Self {
        Self {
            kills: vec![PhaseKill {
                job,
                phase,
                member: member.into(),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::{CubeDims, CubeView, HyperCube};
    use std::sync::Arc;

    #[test]
    fn message_phases_are_classified() {
        let cube = Arc::new(HyperCube::zeros(CubeDims::new(2, 2, 2)));
        let view = CubeView::full(Arc::clone(&cube));
        let screen = PctMessage::ScreenSeededTask {
            task: 1,
            view: view.clone(),
            seed: vec![],
            threshold_rad: 0.1,
        };
        assert_eq!(ChaosPhase::of_message(&screen), Some(ChaosPhase::Screen));
        let derive = PctMessage::DeriveTask {
            task: 2,
            unique: vec![],
            config: pct::PctConfig::paper(),
        };
        assert_eq!(ChaosPhase::of_message(&derive), Some(ChaosPhase::Derive));
        assert_eq!(ChaosPhase::of_message(&PctMessage::Heartbeat), None);
        assert_eq!(ChaosPhase::Transform.label(), "transform");
    }

    #[test]
    fn kill_at_builds_a_single_entry_plan() {
        let plan = ChaosPlan::kill_at(3, ChaosPhase::Derive, "rg0#1");
        assert_eq!(plan.kills.len(), 1);
        assert_eq!(plan.kills[0].job, 3);
        assert_eq!(plan.kills[0].member, "rg0#1");
        assert!(ChaosPlan::none().kills.is_empty());
    }
}
