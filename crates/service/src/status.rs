//! The shared job-status table: the results plane between the scheduler and
//! waiting clients.

use crate::job::{JobId, JobStatus};
use crate::{Result, ServiceError};
use pct::FusionOutput;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Everything the service remembers about one job.
#[derive(Debug, Clone)]
pub(crate) struct JobRecord {
    pub status: JobStatus,
    pub output: Option<FusionOutput>,
    pub error: Option<String>,
}

impl JobRecord {
    pub fn queued() -> Self {
        Self {
            status: JobStatus::Queued,
            output: None,
            error: None,
        }
    }
}

/// Concurrently readable job table with change notification.
#[derive(Default)]
pub(crate) struct StatusTable {
    records: Mutex<HashMap<JobId, JobRecord>>,
    changed: Condvar,
}

impl StatusTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, id: JobId, record: JobRecord) {
        self.records.lock().expect("status lock").insert(id, record);
    }

    pub fn remove(&self, id: JobId) {
        self.records.lock().expect("status lock").remove(&id);
    }

    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.records
            .lock()
            .expect("status lock")
            .get(&id)
            .map(|r| r.status)
    }

    /// Transitions a job to a (possibly terminal) status, recording output or
    /// error, and wakes waiters.  Terminal states are never overwritten.
    pub fn transition(
        &self,
        id: JobId,
        status: JobStatus,
        output: Option<FusionOutput>,
        error: Option<String>,
    ) {
        let mut records = self.records.lock().expect("status lock");
        if let Some(record) = records.get_mut(&id) {
            if record.status.is_terminal() {
                return;
            }
            record.status = status;
            record.output = output;
            record.error = error;
        }
        drop(records);
        self.changed.notify_all();
    }

    /// Blocks until the job reaches a terminal status, then *consumes* its
    /// record and maps it to the client-facing result.  Consuming bounds the
    /// table: a long-lived service would otherwise retain every completed
    /// job's full image forever.  A second wait on the same id reports the
    /// job as unknown.
    pub fn wait_terminal(&self, id: JobId) -> Result<FusionOutput> {
        let mut records = self.records.lock().expect("status lock");
        loop {
            let Some(record) = records.get(&id) else {
                return Err(ServiceError::UnknownJob(id));
            };
            if record.status.is_terminal() {
                break;
            }
            records = self.changed.wait(records).expect("status lock");
        }
        let record = records.remove(&id).expect("present: checked above");
        match record.status {
            JobStatus::Completed => record
                .output
                .ok_or_else(|| ServiceError::Internal("completed without output".into())),
            JobStatus::Failed => Err(ServiceError::Failed(
                record.error.unwrap_or_else(|| "unknown".into()),
            )),
            JobStatus::Cancelled => Err(ServiceError::Cancelled),
            JobStatus::TimedOut => Err(ServiceError::TimedOut),
            JobStatus::Queued | JobStatus::Running => {
                unreachable!("loop exits only on terminal status")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn transition_and_wait_round_trip() {
        let table = Arc::new(StatusTable::new());
        table.insert(7, JobRecord::queued());
        assert_eq!(table.status(7), Some(JobStatus::Queued));

        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.wait_terminal(7))
        };
        table.transition(7, JobStatus::Running, None, None);
        table.transition(7, JobStatus::Failed, None, Some("boom".into()));
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            ServiceError::Failed("boom".into())
        );
    }

    #[test]
    fn terminal_states_are_sticky_and_wait_consumes() {
        let table = StatusTable::new();
        table.insert(1, JobRecord::queued());
        table.transition(1, JobStatus::Cancelled, None, None);
        table.transition(1, JobStatus::Running, None, None);
        assert_eq!(table.status(1), Some(JobStatus::Cancelled));
        assert_eq!(table.wait_terminal(1).unwrap_err(), ServiceError::Cancelled);
        // The record was consumed by the wait; the table does not grow.
        assert_eq!(table.status(1), None);
        assert_eq!(
            table.wait_terminal(1).unwrap_err(),
            ServiceError::UnknownJob(1)
        );
    }

    #[test]
    fn unknown_job_is_an_error() {
        let table = StatusTable::new();
        assert_eq!(table.status(9), None);
        assert_eq!(
            table.wait_terminal(9).unwrap_err(),
            ServiceError::UnknownJob(9)
        );
        table.insert(9, JobRecord::queued());
        table.remove(9);
        assert_eq!(table.status(9), None);
    }
}
