//! The shared job-status table: the results plane between the scheduler and
//! waiting clients.

use crate::handle::JobOutcome;
use crate::job::{JobId, JobStatus};
use crate::{Result, ServiceError};
use pct::FusionOutput;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Everything the service remembers about one job.
#[derive(Debug, Clone)]
pub(crate) struct JobRecord {
    pub status: JobStatus,
    pub output: Option<FusionOutput>,
    pub error: Option<String>,
    /// Set when the owning handle was dropped without taking the outcome:
    /// nobody is left to consume the record, so the terminal transition
    /// releases it instead of retaining the full image.
    pub abandoned: bool,
}

impl JobRecord {
    pub fn queued() -> Self {
        Self {
            status: JobStatus::Queued,
            output: None,
            error: None,
            abandoned: false,
        }
    }

    /// Maps a terminal record to the typed outcome.
    fn into_outcome(self) -> Result<JobOutcome> {
        match self.status {
            JobStatus::Completed => match self.output {
                Some(output) => Ok(JobOutcome::Completed(output)),
                None => Err(ServiceError::Internal("completed without output".into())),
            },
            JobStatus::Failed => Ok(JobOutcome::Failed(
                self.error.unwrap_or_else(|| "unknown".into()),
            )),
            JobStatus::Cancelled => Ok(JobOutcome::Cancelled),
            JobStatus::TimedOut => Ok(JobOutcome::TimedOut),
            JobStatus::Queued | JobStatus::Running => {
                Err(ServiceError::Internal("non-terminal outcome".into()))
            }
        }
    }
}

/// Concurrently readable job table with change notification.
#[derive(Default)]
pub(crate) struct StatusTable {
    records: Mutex<HashMap<JobId, JobRecord>>,
    changed: Condvar,
}

impl StatusTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, id: JobId, record: JobRecord) {
        self.records.lock().expect("status lock").insert(id, record);
    }

    pub fn remove(&self, id: JobId) {
        self.records.lock().expect("status lock").remove(&id);
    }

    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.records
            .lock()
            .expect("status lock")
            .get(&id)
            .map(|r| r.status)
    }

    /// Transitions a job to a (possibly terminal) status, recording output or
    /// error, and wakes waiters.  Terminal states are never overwritten; a
    /// terminal transition of an abandoned record releases it immediately.
    pub fn transition(
        &self,
        id: JobId,
        status: JobStatus,
        output: Option<FusionOutput>,
        error: Option<String>,
    ) {
        let mut records = self.records.lock().expect("status lock");
        if let Some(record) = records.get_mut(&id) {
            if record.status.is_terminal() {
                return;
            }
            record.status = status;
            record.output = output;
            record.error = error;
            if record.abandoned && status.is_terminal() {
                records.remove(&id);
            }
        }
        drop(records);
        self.changed.notify_all();
    }

    /// Marks a record as having no waiter left: if it is already terminal it
    /// is released now, otherwise the terminal transition releases it.
    pub fn abandon(&self, id: JobId) {
        let mut records = self.records.lock().expect("status lock");
        if let Some(record) = records.get_mut(&id) {
            if record.status.is_terminal() {
                records.remove(&id);
            } else {
                record.abandoned = true;
            }
        }
    }

    /// Blocks until the job reaches a terminal status (or `deadline`
    /// passes), then *consumes* its record and maps it to the typed
    /// [`JobOutcome`].  Consuming bounds the table: a long-lived service
    /// would otherwise retain every completed job's full image forever.
    ///
    /// `Ok(None)` means the deadline expired first; the record is untouched
    /// and a later call can still take the outcome.  An unknown id is
    /// [`ServiceError::UnknownJob`].
    pub fn wait_outcome(&self, id: JobId, deadline: Option<Instant>) -> Result<Option<JobOutcome>> {
        let mut records = self.records.lock().expect("status lock");
        loop {
            let Some(record) = records.get(&id) else {
                return Err(ServiceError::UnknownJob(id));
            };
            if record.status.is_terminal() {
                break;
            }
            match deadline {
                None => records = self.changed.wait(records).expect("status lock"),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Ok(None);
                    }
                    let (guard, _timeout) = self
                        .changed
                        .wait_timeout(records, remaining)
                        .expect("status lock");
                    records = guard;
                }
            }
        }
        let record = records.remove(&id).expect("present: checked above");
        drop(records);
        record.into_outcome().map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn transition_and_wait_round_trip() {
        let table = Arc::new(StatusTable::new());
        table.insert(7, JobRecord::queued());
        assert_eq!(table.status(7), Some(JobStatus::Queued));

        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.wait_outcome(7, None))
        };
        table.transition(7, JobStatus::Running, None, None);
        table.transition(7, JobStatus::Failed, None, Some("boom".into()));
        assert_eq!(
            waiter.join().unwrap().unwrap(),
            Some(JobOutcome::Failed("boom".into()))
        );
    }

    #[test]
    fn terminal_states_are_sticky_and_wait_consumes() {
        let table = StatusTable::new();
        table.insert(1, JobRecord::queued());
        table.transition(1, JobStatus::Cancelled, None, None);
        table.transition(1, JobStatus::Running, None, None);
        assert_eq!(table.status(1), Some(JobStatus::Cancelled));
        assert_eq!(
            table.wait_outcome(1, None).unwrap(),
            Some(JobOutcome::Cancelled)
        );
        // The record was consumed by the wait; the table does not grow.
        assert_eq!(table.status(1), None);
        assert_eq!(
            table.wait_outcome(1, None).unwrap_err(),
            ServiceError::UnknownJob(1)
        );
    }

    #[test]
    fn unknown_job_is_an_error() {
        let table = StatusTable::new();
        assert_eq!(table.status(9), None);
        assert_eq!(
            table.wait_outcome(9, None).unwrap_err(),
            ServiceError::UnknownJob(9)
        );
        table.insert(9, JobRecord::queued());
        table.remove(9);
        assert_eq!(table.status(9), None);
    }

    #[test]
    fn wait_outcome_times_out_without_consuming() {
        let table = StatusTable::new();
        table.insert(3, JobRecord::queued());
        let deadline = Some(Instant::now() + Duration::from_millis(15));
        assert_eq!(table.wait_outcome(3, deadline).unwrap(), None);
        assert_eq!(table.status(3), Some(JobStatus::Queued));
        table.transition(3, JobStatus::TimedOut, None, None);
        assert_eq!(
            table.wait_outcome(3, None).unwrap(),
            Some(JobOutcome::TimedOut)
        );
    }

    #[test]
    fn abandoned_records_are_released_at_the_terminal_transition() {
        let table = StatusTable::new();
        table.insert(4, JobRecord::queued());
        table.abandon(4);
        assert_eq!(table.status(4), Some(JobStatus::Queued), "still tracked");
        table.transition(4, JobStatus::Cancelled, None, None);
        assert_eq!(table.status(4), None, "released at terminal");

        // Abandoning an already-terminal record releases it immediately.
        table.insert(5, JobRecord::queued());
        table.transition(5, JobStatus::Failed, None, None);
        table.abandon(5);
        assert_eq!(table.status(5), None);
    }
}
