//! Service configuration: typed errors and validating builders.
//!
//! Struct-literal configuration let invalid shapes (zero in-flight jobs, a
//! pool with no lanes) surface only at `FusionService::start`, as stringly
//! errors.  [`ServiceConfig::builder`] and [`crate::JobSpec::builder`]
//! validate at build time and return a typed [`ConfigError`], which converts
//! into [`ServiceError`] so `?` composes across the crate boundary.
//!
//! ```
//! use service::ServiceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ServiceConfig::builder()
//!     .standard_workers(4)
//!     .replica_groups(2)
//!     .replication_level(2)
//!     .shared_memory_executors(2)
//!     .queue_capacity(32)
//!     .max_in_flight(8)
//!     .build()?;
//! assert_eq!(config.queue_capacity, 32);
//! # Ok(())
//! # }
//! ```

use crate::admission::{AdmissionConfig, PressurePolicy, TenantId, TenantQuota};
use crate::chaos::ChaosPlan;
use crate::routing::{default_policy, RoutingPolicy, SharedRoutingPolicy};
use crate::ServiceError;
use resilience::DetectorConfig;
use std::sync::Arc;
use telemetry::Telemetry;

/// A typed configuration defect, produced by the validating builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_in_flight` was zero: the scheduler could never admit a job.
    ZeroMaxInFlight,
    /// `queue_capacity` was zero: no submission could ever be accepted.
    ZeroQueueCapacity,
    /// The pool has no execution lane at all (no standard workers, no
    /// replica groups, no shared-memory executors, no remote workers).
    NoLanes,
    /// `replica_groups` is non-zero but `replication_level` is zero.
    ZeroReplicationLevel,
    /// A job spec asked for zero shards.
    ZeroShards,
    /// A tenant quota carries a fair-share weight of zero: the tenant
    /// could never be dequeued.
    ZeroTenantWeight(TenantId),
    /// A tenant quota bounds the tenant's queue at zero jobs: no
    /// submission of that tenant could ever be accepted.
    ZeroTenantQuota(TenantId),
    /// The embedded pipeline configuration is invalid; the payload is the
    /// pipeline's own message.
    Pipeline(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMaxInFlight => write!(f, "max_in_flight must be at least 1"),
            ConfigError::ZeroQueueCapacity => write!(f, "queue_capacity must be at least 1"),
            ConfigError::NoLanes => write!(
                f,
                "the pool needs at least one lane (standard workers, replica groups, shared-memory executors or remote workers)"
            ),
            ConfigError::ZeroReplicationLevel => {
                write!(f, "replica groups need a replication level of at least 1")
            }
            ConfigError::ZeroShards => write!(f, "a job needs at least one shard"),
            ConfigError::ZeroTenantWeight(tenant) => {
                write!(f, "tenant {tenant} needs a fair-share weight of at least 1")
            }
            ConfigError::ZeroTenantQuota(tenant) => {
                write!(f, "tenant {tenant} needs a queue quota of at least 1")
            }
            ConfigError::Pipeline(msg) => write!(f, "pipeline configuration: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::InvalidConfig(e.to_string())
    }
}

/// How one remote-lane worker comes into existence.
///
/// Whatever the variant, the worker ends up on the far side of a framed,
/// CRC-checked, version-handshaken [`wire`] connection and is driven by the
/// exact task loop the standard lane runs in-process — same heartbeat
/// cadence, same failure detection, same re-dispatch on loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteWorkerSpec {
    /// Spawn a worker *process* (typically the `fusiond-worker` binary) and
    /// have it dial back into the service over loopback TCP.  The service
    /// appends its listener address as the final argument.
    Spawn {
        /// Program to execute.
        command: String,
        /// Arguments before the appended listener address.
        args: Vec<String>,
    },
    /// Connect out to a worker already listening at `addr`
    /// (`fusiond-worker --listen <addr>`).
    Connect {
        /// `host:port` the worker listens on.
        addr: String,
    },
    /// An in-process thread speaking the full wire protocol over real
    /// loopback TCP — every byte is framed, checksummed and handshaken
    /// exactly as with a separate process.  Meant for tests and benches
    /// that want the protocol path without process management.
    Thread,
}

/// Sizing of the shared worker pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Plain worker threads of the standard lane (0 disables the lane).
    pub standard_workers: usize,
    /// Replica groups of the resilient lane (0 disables the lane).
    pub replica_groups: usize,
    /// Members per replica group (the paper evaluates level 2).
    pub replication_level: usize,
    /// In-process shared-memory executors (0 disables the lane).  Each runs
    /// whole small jobs start-to-finish with zero protocol messages.
    pub shared_memory_executors: usize,
    /// Failure-detector tuning for the resilient lane.
    pub detector: DetectorConfig,
    /// Failure-detector tuning for the standard lane's worker watchdog
    /// (heartbeat-silence plus mailbox probe, the same detection the
    /// resilient lane runs per member).  Kept separate from
    /// [`PoolConfig::detector`] so the two lanes can trade detection
    /// latency independently.
    pub standard_detector: DetectorConfig,
    /// Remote-lane workers, one per spec (empty disables the lane).  Each
    /// worker lives across a process boundary behind the versioned wire
    /// protocol and is watched by the same watchdog as the standard lane.
    pub remote_workers: Vec<RemoteWorkerSpec>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let detector = DetectorConfig {
            heartbeat_period_ms: 50,
            miss_threshold: 8,
        };
        Self {
            standard_workers: 4,
            replica_groups: 2,
            replication_level: 2,
            shared_memory_executors: 2,
            detector,
            standard_detector: detector,
            remote_workers: Vec::new(),
        }
    }
}

/// Service-level configuration.  Build one with [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool sizing.
    pub pool: PoolConfig,
    /// Bound of the admission queue (the backpressure point).
    pub queue_capacity: usize,
    /// Maximum number of jobs admitted (running) concurrently.
    pub max_in_flight: usize,
    /// The policy resolving [`crate::Route::Auto`] jobs to a lane.
    pub routing: SharedRoutingPolicy,
    /// The admission plane: tenant quotas, fair-share weights, and the
    /// tiered-degradation watermarks.
    pub admission: AdmissionConfig,
    /// Deterministic chaos schedule: member kills anchored to scheduler
    /// dispatch events (empty by default).
    pub chaos: ChaosPlan,
    /// Observability handle: spans, metrics and the flight recorder.
    /// Disabled by default, in which case every instrumentation point
    /// costs one branch.
    pub telemetry: Telemetry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::default(),
            queue_capacity: 64,
            max_in_flight: 16,
            routing: default_policy(),
            admission: AdmissionConfig::default(),
            chaos: ChaosPlan::none(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ServiceConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }

    /// Validates a configuration however it was produced (the builder calls
    /// this; `FusionService::start` calls it again so struct-literal
    /// configurations get the same checks).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_in_flight == 0 {
            return Err(ConfigError::ZeroMaxInFlight);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        let pool = &self.pool;
        if pool.standard_workers == 0
            && pool.replica_groups == 0
            && pool.shared_memory_executors == 0
            && pool.remote_workers.is_empty()
        {
            return Err(ConfigError::NoLanes);
        }
        if pool.replica_groups > 0 && pool.replication_level == 0 {
            return Err(ConfigError::ZeroReplicationLevel);
        }
        self.admission.validate()?;
        Ok(())
    }
}

/// Validating builder for [`ServiceConfig`] — see [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Replaces the whole pool sizing block.
    pub fn pool(mut self, pool: PoolConfig) -> Self {
        self.config.pool = pool;
        self
    }

    /// Number of standard-lane worker threads (0 disables the lane).
    pub fn standard_workers(mut self, workers: usize) -> Self {
        self.config.pool.standard_workers = workers;
        self
    }

    /// Number of resilient-lane replica groups (0 disables the lane).
    pub fn replica_groups(mut self, groups: usize) -> Self {
        self.config.pool.replica_groups = groups;
        self
    }

    /// Members per replica group.
    pub fn replication_level(mut self, level: usize) -> Self {
        self.config.pool.replication_level = level;
        self
    }

    /// Number of in-process shared-memory executors (0 disables the lane).
    pub fn shared_memory_executors(mut self, executors: usize) -> Self {
        self.config.pool.shared_memory_executors = executors;
        self
    }

    /// Failure-detector tuning for the resilient lane.
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.config.pool.detector = detector;
        self
    }

    /// Failure-detector tuning for the standard lane's worker watchdog.
    pub fn standard_detector(mut self, detector: DetectorConfig) -> Self {
        self.config.pool.standard_detector = detector;
        self
    }

    /// Replaces the remote-lane worker specs (empty disables the lane).
    pub fn remote_workers(mut self, specs: Vec<RemoteWorkerSpec>) -> Self {
        self.config.pool.remote_workers = specs;
        self
    }

    /// Appends one remote-lane worker.
    pub fn remote_worker(mut self, spec: RemoteWorkerSpec) -> Self {
        self.config.pool.remote_workers.push(spec);
        self
    }

    /// Bound of the admission queue.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Maximum number of concurrently running jobs.
    pub fn max_in_flight(mut self, max: usize) -> Self {
        self.config.max_in_flight = max;
        self
    }

    /// The routing policy resolving [`crate::Route::Auto`] jobs.
    pub fn routing_policy(mut self, policy: impl RoutingPolicy + 'static) -> Self {
        self.config.routing = Arc::new(policy);
        self
    }

    /// A pre-shared routing policy handle.
    pub fn routing(mut self, policy: SharedRoutingPolicy) -> Self {
        self.config.routing = policy;
        self
    }

    /// Replaces the whole admission-plane block.
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Sets one tenant's quota (fair-share weight and queue bound).
    pub fn tenant_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.config.admission.quotas.insert(tenant, quota);
        self
    }

    /// The quota of tenants without an explicit [`Self::tenant_quota`].
    pub fn default_tenant_quota(mut self, quota: TenantQuota) -> Self {
        self.config.admission.default_quota = quota;
        self
    }

    /// The tiered-degradation watermarks applied at submission.
    pub fn pressure(mut self, pressure: PressurePolicy) -> Self {
        self.config.admission.pressure = pressure;
        self
    }

    /// Deterministic chaos schedule.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.config.chaos = plan;
        self
    }

    /// Observability handle shared by the scheduler, admission plane and
    /// resilient lane.  Pass [`Telemetry::enabled`] (or
    /// [`Telemetry::with_clock`] in tests) to record spans, metrics and
    /// the flight recorder; the default disabled handle records nothing.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoundRobinPolicy;

    #[test]
    fn builder_produces_validated_defaults() {
        let config = ServiceConfig::builder().build().unwrap();
        assert_eq!(config.queue_capacity, 64);
        assert_eq!(config.max_in_flight, 16);
        assert_eq!(config.pool.shared_memory_executors, 2);
        assert_eq!(config.routing.name(), "size-threshold");
    }

    #[test]
    fn builder_rejects_degenerate_shapes() {
        assert_eq!(
            ServiceConfig::builder()
                .max_in_flight(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMaxInFlight
        );
        assert_eq!(
            ServiceConfig::builder()
                .queue_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQueueCapacity
        );
        assert_eq!(
            ServiceConfig::builder()
                .standard_workers(0)
                .replica_groups(0)
                .shared_memory_executors(0)
                .build()
                .unwrap_err(),
            ConfigError::NoLanes
        );
        // A remote worker alone is a lane: the same shape passes with one.
        let remote_only = ServiceConfig::builder()
            .standard_workers(0)
            .replica_groups(0)
            .shared_memory_executors(0)
            .remote_worker(RemoteWorkerSpec::Thread)
            .build()
            .unwrap();
        assert_eq!(remote_only.pool.remote_workers.len(), 1);
        assert_eq!(
            ServiceConfig::builder()
                .replica_groups(1)
                .replication_level(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroReplicationLevel
        );
    }

    #[test]
    fn builder_rejects_degenerate_tenant_quotas() {
        assert_eq!(
            ServiceConfig::builder()
                .tenant_quota(TenantId(4), TenantQuota::weighted(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroTenantWeight(TenantId(4))
        );
        assert_eq!(
            ServiceConfig::builder()
                .tenant_quota(TenantId(4), TenantQuota::weighted(2).with_max_queued(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroTenantQuota(TenantId(4))
        );
        let config = ServiceConfig::builder()
            .tenant_quota(TenantId(4), TenantQuota::weighted(2).with_max_queued(8))
            .default_tenant_quota(TenantQuota::weighted(1))
            .pressure(PressurePolicy::unbounded().with_downgrade_queue_depth(4))
            .build()
            .unwrap();
        assert_eq!(config.admission.quotas.get(&TenantId(4)).unwrap().weight, 2);
        assert_eq!(config.admission.pressure.downgrade_queue_depth, 4);
    }

    #[test]
    fn builder_swaps_the_routing_policy() {
        let config = ServiceConfig::builder()
            .routing_policy(RoundRobinPolicy::default())
            .build()
            .unwrap();
        assert_eq!(config.routing.name(), "round-robin");
    }

    #[test]
    fn config_errors_render_and_convert() {
        let err = ConfigError::NoLanes;
        assert!(err.to_string().contains("at least one lane"));
        let service_err: ServiceError = ConfigError::ZeroShards.into();
        assert!(matches!(service_err, ServiceError::InvalidConfig(_)));
        // The std::error::Error impl composes with `?` behind a Box.
        let boxed: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroMaxInFlight);
        assert!(boxed.to_string().contains("max_in_flight"));
    }
}
