//! The public face of `fusiond`: starting the service, submitting jobs,
//! observing events, shutting down.
//!
//! Submission returns an owned [`JobHandle`] — waiting, polling,
//! cancellation and cancel-on-drop live there.  (The pre-handle id-keyed
//! methods spent one release as `#[deprecated]` shims and are gone.)

use crate::admission::{AdmissionGovernor, ShedReason, TenantId};
use crate::config::ServiceConfig;
use crate::events::{EventBus, EventSubscriber, ServiceEvent};
use crate::handle::{HandlePlane, JobHandle};
use crate::job::{BackendKind, JobId, JobSpec};
use crate::pool::WorkerPool;
use crate::queue::QueuedJob;
use crate::report::ServiceReport;
use crate::routing::Route;
use crate::scheduler::Scheduler;
use crate::status::{JobRecord, StatusTable};
use crate::{Result, ServiceError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::Telemetry;

/// A running fusion service: one scheduler thread driving one long-lived
/// four-lane worker pool, fed through a bounded admission queue.
///
/// ```no_run
/// use hsi::SceneConfig;
/// use service::{CubeSource, FusionService, JobSpec, ServiceConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = FusionService::start(ServiceConfig::builder().build()?)?;
/// let mut handle = service.submit(
///     JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(1))).build()?,
/// )?;
/// let outcome = handle.wait()?;
/// println!("fused {} pixels", outcome.output().unwrap().pixels);
/// service.shutdown();
/// # Ok(())
/// # }
/// ```
///
/// Dropping the service without calling [`FusionService::shutdown`] tears the
/// pool down but discards the report.
pub struct FusionService {
    governor: Arc<AdmissionGovernor>,
    status: Arc<StatusTable>,
    cancels: Arc<Mutex<Vec<JobId>>>,
    shutdown_flag: Arc<AtomicBool>,
    events: Arc<EventBus>,
    injector: resilience::attack::AttackInjector,
    lane_totals: [usize; 4],
    /// `(routing name, OS pid)` of every remote worker, captured at start.
    remote_workers: Vec<(String, Option<u32>)>,
    next_job: AtomicU64,
    scheduler: Option<JoinHandle<ServiceReport>>,
    telemetry: Telemetry,
}

impl FusionService {
    /// Starts the pool and the scheduler thread.
    pub fn start(config: ServiceConfig) -> Result<FusionService> {
        config.validate()?;
        let telemetry = config.telemetry.clone();
        let (pool, ctx) = WorkerPool::start(&config.pool, telemetry.clone())?;
        let injector = pool.injector();
        let lane_totals = [
            pool.standard.len(),
            pool.groups.len(),
            pool.inline.executors.len(),
            pool.remote.workers.len(),
        ];
        let remote_workers = pool.remote.worker_pids();
        let governor = Arc::new(
            AdmissionGovernor::new(
                config.queue_capacity,
                config.admission.clone(),
                Arc::clone(&config.routing),
            )
            .with_telemetry(telemetry.clone()),
        );
        let status = Arc::new(StatusTable::new());
        let cancels = Arc::new(Mutex::new(Vec::new()));
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let events = Arc::new(EventBus::with_telemetry(telemetry.clone()));
        let scheduler = Scheduler::new(
            pool,
            ctx,
            Arc::clone(&governor),
            Arc::clone(&status),
            Arc::clone(&cancels),
            Arc::clone(&shutdown_flag),
            config.max_in_flight,
            Arc::clone(&events),
            config.chaos.clone(),
            config.pool.standard_detector,
            telemetry.clone(),
        );
        let handle = std::thread::Builder::new()
            .name("fusiond-scheduler".to_string())
            .spawn(move || scheduler.run())
            .expect("failed to spawn scheduler thread");
        Ok(FusionService {
            governor,
            status,
            cancels,
            shutdown_flag,
            events,
            injector,
            lane_totals,
            remote_workers,
            next_job: AtomicU64::new(1),
            scheduler: Some(handle),
            telemetry,
        })
    }

    /// Whether the pool has the lane a pinned route asks for.
    fn lane_exists(&self, kind: BackendKind) -> bool {
        let [standard, resilient, shared_memory, remote] = self.lane_totals;
        match kind {
            BackendKind::Standard => standard > 0,
            BackendKind::Resilient => resilient > 0,
            BackendKind::SharedMemory => shared_memory > 0,
            BackendKind::Remote => remote > 0,
        }
    }

    /// `(routing name, OS pid)` of every remote-lane worker.  The pid is
    /// `None` for workers that are not separate processes
    /// ([`crate::RemoteWorkerSpec::Thread`] and
    /// [`crate::RemoteWorkerSpec::Connect`]); chaos drills use the pid to
    /// kill a real worker process from outside.
    pub fn remote_workers(&self) -> &[(String, Option<u32>)] {
        &self.remote_workers
    }

    fn enqueue(&self, spec: JobSpec, blocking: bool) -> Result<JobHandle> {
        spec.validate()?;
        if let Route::Pinned(kind) = spec.route {
            if !self.lane_exists(kind) {
                return Err(ServiceError::InvalidConfig(format!(
                    "job pinned to the {} lane, but the pool has none",
                    kind.label()
                )));
            }
        }
        // Pay any cube-generation cost here, on the submitting thread — the
        // scheduler's control plane must never stall on ingestion.
        let spec = spec.into_realized()?;
        let tenant = spec.tenant;
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.status.insert(id, JobRecord::queued());
        // Root span of the job's phase tree, plus the `queued` child the
        // scheduler closes at admission (both `None` if telemetry is off).
        let span = self
            .telemetry
            .span_start("job", None, Some(id), &tenant.label());
        let queued_span = self.telemetry.span_start("queued", span, Some(id), "");
        let queued = QueuedJob {
            id,
            submitted: Instant::now(),
            spec,
            span,
            queued_span,
        };
        match self.governor.submit(queued, blocking) {
            Ok(()) => Ok(JobHandle::new(
                id,
                HandlePlane {
                    status: Arc::clone(&self.status),
                    cancels: Arc::clone(&self.cancels),
                },
            )),
            Err(e) => {
                self.status.remove(id);
                self.telemetry
                    .span_end_with_detail(queued_span, Some("rejected"));
                self.telemetry.span_end_with_detail(span, Some("rejected"));
                self.publish_rejection(id, tenant, &e);
                Err(e)
            }
        }
    }

    /// Mirrors a typed admission refusal onto the event stream, so
    /// observers can account rejections they did not themselves submit.
    fn publish_rejection(&self, id: JobId, tenant: TenantId, error: &ServiceError) {
        let (reason, retry_after) = match error {
            ServiceError::Saturated { retry_after } => (ShedReason::Saturated, *retry_after),
            ServiceError::Shed {
                reason,
                retry_after,
            } => (*reason, *retry_after),
            ServiceError::QuotaExceeded { retry_after, .. } => (ShedReason::Quota, *retry_after),
            // Shutdown (and anything else) is not an admission verdict.
            _ => return,
        };
        self.events.publish(ServiceEvent::Rejected {
            job: id,
            tenant,
            reason,
            retry_after,
        });
    }

    /// Submits a job, blocking while the admission queue is full.  The
    /// returned [`JobHandle`] owns the job: wait on it, cancel through it,
    /// or [`JobHandle::detach`] it to let the job run unobserved.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle> {
        self.enqueue(spec, true)
    }

    /// Submits a job, rejecting immediately with [`ServiceError::Saturated`]
    /// when the admission queue is full (backpressure).
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle> {
        self.enqueue(spec, false)
    }

    /// Opens an independent subscription to the [`ServiceEvent`] stream
    /// (admissions with their resolved route, dispatches, retransmits,
    /// member kills and regenerations, terminal transitions).
    pub fn subscribe(&self) -> EventSubscriber {
        self.events.subscribe()
    }

    /// Number of jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.governor.queue_depth()
    }

    /// Number of jobs one tenant currently holds in the admission queue.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.governor.tenant_depth(tenant)
    }

    /// Bound of the admission queue (the backpressure point).
    pub fn queue_capacity(&self) -> usize {
        self.governor.queue_capacity()
    }

    /// The admission plane itself — effective quotas, live depths and
    /// in-flight byte accounting.
    pub fn admission(&self) -> &AdmissionGovernor {
        &self.governor
    }

    /// Routing names of the resilient lane's live attack targets.
    pub fn attack_targets(&self) -> Vec<String> {
        self.injector.targets()
    }

    /// Kills a pool member by routing name — a replica member (`rg0#1`) or
    /// a standard worker (`svc0`) — as an attack drill.  Returns whether
    /// the member was a registered target.
    pub fn inject_attack(&self, member: &str) -> bool {
        let hit = self.injector.attack(member);
        if hit {
            // Stamp the kill time so the eventual detection can report its
            // latency and back-date the `detect` span.
            self.telemetry.note_kill(member);
            self.telemetry.instant("kill", None, None, member);
            self.events.publish(ServiceEvent::MemberKilled {
                member: member.to_string(),
            });
        }
        hit
    }

    /// Number of live event-stream subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.events.subscriber_count()
    }

    /// The service's telemetry handle: spans, metrics snapshot
    /// ([`Telemetry::snapshot_prometheus`]) and the flight recorder
    /// ([`Telemetry::chrome_trace`]).  Disabled unless the configuration
    /// supplied an enabled handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Graceful shutdown: stops accepting jobs, drains the queue and every
    /// running job, tears the pool down and returns the final report.
    /// Outstanding [`JobHandle`]s stay valid: they hold the results plane
    /// and observe the final terminal states.
    pub fn shutdown(mut self) -> ServiceReport {
        self.shutdown_flag.store(true, Ordering::Release);
        self.governor.close();
        let mut report = match self.scheduler.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => ServiceReport::default(),
        };
        self.governor.fold_into(&mut report);
        report
    }
}

impl Drop for FusionService {
    fn drop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            self.shutdown_flag.store(true, Ordering::Release);
            self.governor.close();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PoolConfig, RemoteWorkerSpec};
    use crate::handle::JobOutcome;
    use crate::job::{CubeSource, JobStatus, Priority};
    use hsi::{CubeDims, SceneConfig, SceneGenerator};
    use pct::{PctConfig, SequentialPct};
    use std::sync::Arc;
    use std::time::Duration;

    fn tiny_pool() -> ServiceConfig {
        ServiceConfig::builder()
            .pool(PoolConfig {
                standard_workers: 2,
                replica_groups: 1,
                replication_level: 2,
                shared_memory_executors: 1,
                remote_workers: vec![RemoteWorkerSpec::Thread],
                ..PoolConfig::default()
            })
            .queue_capacity(16)
            .max_in_flight(4)
            .build()
            .unwrap()
    }

    fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, bands);
        config
    }

    #[test]
    fn jobs_complete_byte_identical_to_sequential_on_every_lane() {
        let service = FusionService::start(tiny_pool()).unwrap();
        // The Thread remote worker is a worker without a process of its own.
        assert_eq!(service.remote_workers(), &[("rw0".to_string(), None)]);
        let mut jobs = Vec::new();
        for (i, kind) in BackendKind::ALL.iter().enumerate() {
            let config = scene(40 + i as u64, 16, 8);
            let cube = Arc::new(SceneGenerator::new(config).unwrap().generate());
            let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                .pinned(*kind)
                .shards(3)
                .build()
                .unwrap();
            let handle = service.submit(spec).unwrap();
            jobs.push((handle, cube));
        }
        for (mut handle, cube) in jobs {
            assert!(handle.status().is_ok());
            let outcome = handle.wait().unwrap();
            let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
            assert_eq!(
                outcome.output().expect("completed"),
                &reference,
                "job {} diverged from sequential",
                handle.id()
            );
            // The record is consumed, but the handle still reports status.
            assert_eq!(handle.status().unwrap(), JobStatus::Completed);
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 4);
        assert_eq!(report.jobs_failed, 0);
        for kind in BackendKind::ALL {
            assert_eq!(report.route(kind).jobs_completed, 1, "{}", kind.label());
            assert_eq!(report.route(kind).auto_routed, 0);
        }
    }

    #[test]
    fn auto_routing_sends_small_cubes_to_the_shared_memory_lane() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let cube = Arc::new(SceneGenerator::new(scene(7, 12, 6)).unwrap().generate());
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .route(Route::Auto)
            .priority(Priority::High)
            .build()
            .unwrap();
        let mut handle = service.submit(spec).unwrap();
        let outcome = handle.wait().unwrap();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(outcome, JobOutcome::Completed(reference));
        let report = service.shutdown();
        let shm = report.route(BackendKind::SharedMemory);
        assert_eq!(shm.jobs_routed, 1);
        assert_eq!(shm.auto_routed, 1);
        assert_eq!(shm.jobs_completed, 1);
        assert!(report.latency.contains_key(&Priority::High));
    }

    #[test]
    fn pinned_submission_without_lane_is_rejected() {
        let mut config = tiny_pool();
        config.pool.replica_groups = 0;
        let service = FusionService::start(config).unwrap();
        let err = service
            .submit(
                JobSpec::builder(CubeSource::Synthetic(scene(1, 8, 4)))
                    .pinned(BackendKind::Resilient)
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        service.shutdown();
    }

    #[test]
    fn zero_timeout_job_times_out() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let mut handle = service
            .submit(
                JobSpec::builder(CubeSource::Synthetic(scene(3, 24, 12)))
                    .pinned(BackendKind::Standard)
                    .timeout(Duration::ZERO)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap(), JobOutcome::TimedOut);
        let report = service.shutdown();
        assert_eq!(report.jobs_timed_out, 1);
    }

    #[test]
    fn detached_jobs_run_to_completion_unobserved() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let cube = Arc::new(SceneGenerator::new(scene(9, 12, 6)).unwrap().generate());
        let events = service.subscribe();
        let id = service
            .submit(
                JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .detach();
        // No handle is left; the event stream still reports the terminal
        // transition and the report accounts the job.
        let terminal = events
            .wait_for(
                Duration::from_secs(30),
                |e| matches!(e, crate::ServiceEvent::Terminal { job, .. } if *job == id),
            )
            .expect("terminal event");
        assert_eq!(
            terminal,
            crate::ServiceEvent::Terminal {
                job: id,
                tenant: TenantId::default(),
                status: JobStatus::Completed
            }
        );
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 1);
    }

    #[test]
    fn dropped_handles_cancel_their_jobs() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let spec = JobSpec::builder(CubeSource::Synthetic(scene(5, 48, 24)))
            .pinned(BackendKind::Standard)
            .shards(2)
            .build()
            .unwrap();
        let handle = service.submit(spec).unwrap();
        let id = handle.id();
        drop(handle);
        let report = service.shutdown();
        assert_eq!(
            report.jobs_cancelled + report.jobs_completed,
            1,
            "job {id} neither cancelled nor completed"
        );
    }
}
