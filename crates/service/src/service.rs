//! The public face of `fusiond`: configuration, submission, status, results.

use crate::job::{BackendKind, JobId, JobSpec, JobStatus};
use crate::pool::WorkerPool;
use crate::queue::{AdmissionQueue, QueuedJob};
use crate::report::ServiceReport;
use crate::scheduler::Scheduler;
use crate::status::{JobRecord, StatusTable};
use crate::{Result, ServiceError};
use pct::FusionOutput;
use resilience::DetectorConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing of the shared worker pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Plain worker threads of the standard lane.
    pub standard_workers: usize,
    /// Replica groups of the resilient lane (0 disables the lane).
    pub replica_groups: usize,
    /// Members per replica group (the paper evaluates level 2).
    pub replication_level: usize,
    /// Failure-detector tuning for the resilient lane.
    pub detector: DetectorConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            standard_workers: 4,
            replica_groups: 2,
            replication_level: 2,
            detector: DetectorConfig {
                heartbeat_period_ms: 50,
                miss_threshold: 8,
            },
        }
    }
}

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool sizing.
    pub pool: PoolConfig,
    /// Bound of the admission queue (the backpressure point).
    pub queue_capacity: usize,
    /// Maximum number of jobs admitted (running) concurrently.
    pub max_in_flight: usize,
    /// Deterministic chaos schedule: member kills anchored to scheduler
    /// dispatch events (empty by default).
    pub chaos: crate::chaos::ChaosPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::default(),
            queue_capacity: 64,
            max_in_flight: 16,
            chaos: crate::chaos::ChaosPlan::none(),
        }
    }
}

/// A running fusion service: one scheduler thread driving one long-lived
/// worker pool, fed through a bounded admission queue.
///
/// Dropping the service without calling [`FusionService::shutdown`] tears the
/// pool down but discards the report.
pub struct FusionService {
    queue: Arc<AdmissionQueue>,
    status: Arc<StatusTable>,
    cancels: Arc<Mutex<Vec<JobId>>>,
    shutdown_flag: Arc<AtomicBool>,
    injector: resilience::attack::AttackInjector,
    resilient_lane: bool,
    next_job: AtomicU64,
    rejected: AtomicU64,
    scheduler: Option<JoinHandle<ServiceReport>>,
}

impl FusionService {
    /// Starts the pool and the scheduler thread.
    pub fn start(config: ServiceConfig) -> Result<FusionService> {
        if config.max_in_flight == 0 {
            return Err(ServiceError::InvalidConfig(
                "max_in_flight must be at least 1".to_string(),
            ));
        }
        let (pool, ctx) = WorkerPool::start(&config.pool)?;
        let injector = pool.injector();
        let resilient_lane = !pool.groups.is_empty();
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let status = Arc::new(StatusTable::new());
        let cancels = Arc::new(Mutex::new(Vec::new()));
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let scheduler = Scheduler::new(
            pool,
            ctx,
            Arc::clone(&queue),
            Arc::clone(&status),
            Arc::clone(&cancels),
            Arc::clone(&shutdown_flag),
            config.max_in_flight,
            config.chaos.clone(),
        );
        let handle = std::thread::Builder::new()
            .name("fusiond-scheduler".to_string())
            .spawn(move || scheduler.run())
            .expect("failed to spawn scheduler thread");
        Ok(FusionService {
            queue,
            status,
            cancels,
            shutdown_flag,
            injector,
            resilient_lane,
            next_job: AtomicU64::new(1),
            rejected: AtomicU64::new(0),
            scheduler: Some(handle),
        })
    }

    fn enqueue(&self, spec: JobSpec, blocking: bool) -> Result<JobId> {
        spec.validate()?;
        if spec.backend == BackendKind::Resilient && !self.resilient_lane {
            return Err(ServiceError::InvalidConfig(
                "resilient backend requested but the pool has no replica groups".to_string(),
            ));
        }
        // Pay any cube-generation cost here, on the submitting thread — the
        // scheduler's control plane must never stall on ingestion.
        let spec = spec.into_realized()?;
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.status.insert(id, JobRecord::queued());
        let queued = QueuedJob {
            id,
            submitted: Instant::now(),
            spec,
        };
        let pushed = if blocking {
            self.queue.push_blocking(queued)
        } else {
            self.queue.try_push(queued)
        };
        match pushed {
            Ok(()) => Ok(id),
            Err(e) => {
                self.status.remove(id);
                if e == ServiceError::Saturated {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Submits a job, blocking while the admission queue is full.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId> {
        self.enqueue(spec, true)
    }

    /// Submits a job, rejecting immediately with [`ServiceError::Saturated`]
    /// when the admission queue is full (backpressure).
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId> {
        self.enqueue(spec, false)
    }

    /// Current lifecycle status of a job, if known.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.status.status(id)
    }

    /// Blocks until the job reaches a terminal state and returns its output
    /// (or the terminal error).  The job's record is consumed: a later
    /// `wait` or [`FusionService::status`] for the same id reports it as
    /// unknown.  This keeps the results plane bounded over a long service
    /// lifetime.
    pub fn wait(&self, id: JobId) -> Result<FusionOutput> {
        self.status.wait_terminal(id)
    }

    /// Requests cancellation of a job.  Returns whether the job was known
    /// and not yet terminal when the request was recorded; the scheduler
    /// applies it asynchronously.
    pub fn cancel(&self, id: JobId) -> bool {
        let live = matches!(
            self.status.status(id),
            Some(status) if !status.is_terminal()
        );
        if live {
            self.cancels.lock().expect("cancel lock").push(id);
        }
        live
    }

    /// Number of jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Bound of the admission queue (the backpressure point).
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Routing names of the resilient lane's live attack targets.
    pub fn attack_targets(&self) -> Vec<String> {
        self.injector.targets()
    }

    /// Kills a resilient-lane member by routing name (attack drill).
    /// Returns whether the member was a registered target.
    pub fn inject_attack(&self, member: &str) -> bool {
        self.injector.attack(member)
    }

    /// Graceful shutdown: stops accepting jobs, drains the queue and every
    /// running job, tears the pool down and returns the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.shutdown_flag.store(true, Ordering::Release);
        self.queue.close();
        let mut report = match self.scheduler.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => ServiceReport::default(),
        };
        report.jobs_rejected = self.rejected.load(Ordering::Relaxed);
        report
    }
}

impl Drop for FusionService {
    fn drop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            self.shutdown_flag.store(true, Ordering::Release);
            self.queue.close();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CubeSource, Priority};
    use hsi::{CubeDims, SceneConfig, SceneGenerator};
    use pct::{PctConfig, SequentialPct};
    use std::sync::Arc;
    use std::time::Duration;

    fn tiny_pool() -> ServiceConfig {
        ServiceConfig {
            pool: PoolConfig {
                standard_workers: 2,
                replica_groups: 1,
                replication_level: 2,
                ..PoolConfig::default()
            },
            queue_capacity: 16,
            max_in_flight: 4,
            ..ServiceConfig::default()
        }
    }

    fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, bands);
        config
    }

    #[test]
    fn jobs_complete_byte_identical_to_sequential() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let mut jobs = Vec::new();
        for i in 0..4u64 {
            let config = scene(40 + i, 16, 8);
            let cube = Arc::new(SceneGenerator::new(config).unwrap().generate());
            let backend = if i % 2 == 0 {
                BackendKind::Standard
            } else {
                BackendKind::Resilient
            };
            let spec = JobSpec::new(CubeSource::InMemory(Arc::clone(&cube)))
                .with_backend(backend)
                .with_shards(3);
            let id = service.submit(spec).unwrap();
            jobs.push((id, cube));
        }
        for (id, cube) in jobs {
            assert!(service.status(id).is_some());
            let output = service.wait(id).unwrap();
            let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
            assert_eq!(output, reference, "job {id} diverged from sequential");
            // wait() consumed the record.
            assert_eq!(service.status(id), None);
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 4);
        assert_eq!(report.jobs_failed, 0);
    }

    #[test]
    fn synthetic_sources_and_priorities_flow_through() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let id = service
            .submit(
                JobSpec::new(CubeSource::Synthetic(scene(7, 12, 6)))
                    .with_priority(Priority::High)
                    .with_shards(2),
            )
            .unwrap();
        let output = service.wait(id).unwrap();
        let cube = SceneGenerator::new(scene(7, 12, 6)).unwrap().generate();
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube).unwrap();
        assert_eq!(output, reference);
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 1);
        assert!(report.latency.contains_key(&Priority::High));
    }

    #[test]
    fn resilient_submission_without_lane_is_rejected() {
        let mut config = tiny_pool();
        config.pool.replica_groups = 0;
        let service = FusionService::start(config).unwrap();
        let err = service
            .submit(
                JobSpec::new(CubeSource::Synthetic(scene(1, 8, 4)))
                    .with_backend(BackendKind::Resilient),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        service.shutdown();
    }

    #[test]
    fn zero_timeout_job_times_out() {
        let service = FusionService::start(tiny_pool()).unwrap();
        let id = service
            .submit(
                JobSpec::new(CubeSource::Synthetic(scene(3, 24, 12))).with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(service.wait(id).unwrap_err(), ServiceError::TimedOut);
        let report = service.shutdown();
        assert_eq!(report.jobs_timed_out, 1);
    }

    #[test]
    fn unknown_job_queries() {
        let service = FusionService::start(tiny_pool()).unwrap();
        assert_eq!(service.status(99), None);
        assert!(!service.cancel(99));
        assert_eq!(service.wait(99).unwrap_err(), ServiceError::UnknownJob(99));
        service.shutdown();
    }
}
