//! The bounded, priority-ordered admission queue.
//!
//! Submissions enter here; the scheduler drains from here.  The queue is the
//! backpressure point of the service: `try_push` rejects when full (the
//! caller sees [`ServiceError::Saturated`]) and `push_blocking` parks the
//! submitter until space frees up or the queue closes.  Within the bound the
//! queue orders by priority, FIFO within a priority.

use crate::job::{JobId, JobSpec, Priority};
use crate::ServiceError;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A job as it travels from the front end to the scheduler.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// The job's identifier.
    pub id: JobId,
    /// When the front end accepted it (latency is measured from here).
    pub submitted: Instant,
    /// The full specification.
    pub spec: JobSpec,
}

struct Entry {
    rank: u8,
    seq: u64,
    job: QueuedJob,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: more urgent first; among equals, earlier submission first.
        self.rank.cmp(&other.rank).then(other.seq.cmp(&self.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    high_water: usize,
    closed: bool,
}

/// The bounded admission queue shared by the front end and the scheduler.
pub(crate) struct AdmissionQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    space: Condvar,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                high_water: 0,
                closed: false,
            }),
            space: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push_locked(inner: &mut Inner, priority: Priority, job: QueuedJob) {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry {
            rank: priority.rank(),
            seq,
            job,
        });
        inner.high_water = inner.high_water.max(inner.heap.len());
    }

    /// Non-blocking submission: rejects with `Saturated` when full.
    pub fn try_push(&self, job: QueuedJob) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(ServiceError::ShuttingDown);
        }
        if inner.heap.len() >= self.capacity {
            return Err(ServiceError::Saturated);
        }
        let priority = job.spec.priority;
        Self::push_locked(&mut inner, priority, job);
        Ok(())
    }

    /// Blocking submission: waits for space, errs only on shutdown.
    pub fn push_blocking(&self, job: QueuedJob) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().expect("queue lock");
        while !inner.closed && inner.heap.len() >= self.capacity {
            inner = self.space.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return Err(ServiceError::ShuttingDown);
        }
        let priority = job.spec.priority;
        Self::push_locked(&mut inner, priority, job);
        Ok(())
    }

    /// Scheduler side: takes the most urgent queued job, if any.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        let entry = inner.heap.pop();
        if entry.is_some() {
            self.space.notify_one();
        }
        entry.map(|e| e.job)
    }

    /// Number of jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("queue lock").high_water
    }

    /// Stops accepting submissions and wakes all blocked submitters.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CubeSource, JobSpec};
    use hsi::SceneConfig;
    use std::sync::Arc;
    use std::time::Duration;

    fn job(id: JobId, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            submitted: Instant::now(),
            spec: JobSpec::new(CubeSource::Synthetic(SceneConfig::small(id)))
                .with_priority(priority),
        }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = AdmissionQueue::new(10);
        q.try_push(job(1, Priority::Low)).unwrap();
        q.try_push(job(2, Priority::Normal)).unwrap();
        q.try_push(job(3, Priority::High)).unwrap();
        q.try_push(job(4, Priority::Normal)).unwrap();
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![3, 2, 4, 1]);
    }

    #[test]
    fn saturation_rejects_and_high_water_tracks() {
        let q = AdmissionQueue::new(2);
        q.try_push(job(1, Priority::Normal)).unwrap();
        q.try_push(job(2, Priority::Normal)).unwrap();
        assert_eq!(
            q.try_push(job(3, Priority::High)).unwrap_err(),
            ServiceError::Saturated
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        q.pop().unwrap();
        q.try_push(job(3, Priority::High)).unwrap();
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_push(job(1, Priority::Normal)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(job(2, Priority::Normal)));
        // Give the pusher a moment to park, then free space.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.pop().unwrap().id, 1);
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn close_rejects_and_wakes_blocked_pushers() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_push(job(1, Priority::Normal)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(job(2, Priority::Normal)));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(
            pusher.join().unwrap().unwrap_err(),
            ServiceError::ShuttingDown
        );
        assert_eq!(
            q.try_push(job(3, Priority::Normal)).unwrap_err(),
            ServiceError::ShuttingDown
        );
        // Already-queued jobs still drain.
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(job(1, Priority::Normal)).unwrap();
        assert!(q.try_push(job(2, Priority::Normal)).is_err());
    }
}
