//! The bounded, tenant-aware admission queue.
//!
//! Submissions enter here; the scheduler drains from here.  The queue is
//! the backpressure point of the service: `try_push` rejects when full
//! (the caller sees [`ServiceError::Saturated`] with the plane's
//! [`crate::RetryAfter`] hint) and `push_blocking` parks the submitter
//! until space frees up or the queue closes.  Within the bound, ordering
//! is the admission plane's deterministic weighted fair share
//! ([`crate::DrrQueue`]): deficit round-robin across tenants,
//! priority-then-FIFO within a tenant.  With a single tenant this
//! degenerates to the old global priority queue.

use crate::admission::{DrrQueue, RetryAfter, TenantId};
use crate::job::{JobId, JobSpec};
use crate::ServiceError;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A job as it travels from the front end to the scheduler.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// The job's identifier.
    pub id: JobId,
    /// When the front end accepted it (latency is measured from here).
    pub submitted: Instant,
    /// The full specification.
    pub spec: JobSpec,
    /// The job's root telemetry span, opened at submission (`None` with
    /// telemetry disabled).
    pub span: Option<telemetry::SpanId>,
    /// The `queued` child span, closed at admission to measure queue wait.
    pub queued_span: Option<telemetry::SpanId>,
}

struct Inner {
    queue: DrrQueue<QueuedJob>,
    high_water: usize,
    closed: bool,
}

/// The bounded admission queue shared by the front end and the scheduler.
pub(crate) struct AdmissionQueue {
    capacity: usize,
    retry_after: RetryAfter,
    inner: Mutex<Inner>,
    space: Condvar,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` jobs (floor 1); `retry_after` is
    /// the back-off hint attached to saturation rejections.
    pub fn new(capacity: usize, retry_after: RetryAfter) -> Self {
        Self {
            capacity: capacity.max(1),
            retry_after,
            inner: Mutex::new(Inner {
                queue: DrrQueue::new(),
                high_water: 0,
                closed: false,
            }),
            space: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push_locked(inner: &mut Inner, weight: u64, job: QueuedJob) {
        let tenant = job.spec.tenant;
        let priority = job.spec.priority;
        inner.queue.push(tenant, weight, priority, job);
        inner.high_water = inner.high_water.max(inner.queue.len());
    }

    /// Non-blocking submission: rejects with `Saturated` when full.
    pub fn try_push(&self, job: QueuedJob, weight: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(ServiceError::ShuttingDown);
        }
        if inner.queue.len() >= self.capacity {
            return Err(ServiceError::Saturated {
                retry_after: self.retry_after,
            });
        }
        Self::push_locked(&mut inner, weight, job);
        Ok(())
    }

    /// Blocking submission: waits for space, errs only on shutdown.
    pub fn push_blocking(&self, job: QueuedJob, weight: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().expect("queue lock");
        while !inner.closed && inner.queue.len() >= self.capacity {
            inner = self.space.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return Err(ServiceError::ShuttingDown);
        }
        Self::push_locked(&mut inner, weight, job);
        Ok(())
    }

    /// Scheduler side: takes the next job under weighted fair dequeue.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        let entry = inner.queue.pop();
        if entry.is_some() {
            self.space.notify_one();
        }
        entry.map(|(_, job)| job)
    }

    /// Number of jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").queue.len()
    }

    /// Number of jobs one tenant currently has queued.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.inner
            .lock()
            .expect("queue lock")
            .queue
            .tenant_len(tenant)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("queue lock").high_water
    }

    /// Stops accepting submissions and wakes all blocked submitters.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CubeSource, JobSpec, Priority};
    use hsi::SceneConfig;
    use std::sync::Arc;
    use std::time::Duration;

    fn hint() -> RetryAfter {
        RetryAfter(Duration::from_millis(25))
    }

    fn job(id: JobId, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            submitted: Instant::now(),
            spec: JobSpec::new(CubeSource::Synthetic(SceneConfig::small(id)))
                .with_priority(priority),
            span: None,
            queued_span: None,
        }
    }

    fn tenant_job(id: JobId, tenant: TenantId) -> QueuedJob {
        QueuedJob {
            id,
            submitted: Instant::now(),
            spec: JobSpec::new(CubeSource::Synthetic(SceneConfig::small(id))).with_tenant(tenant),
            span: None,
            queued_span: None,
        }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = AdmissionQueue::new(10, hint());
        q.try_push(job(1, Priority::Low), 1).unwrap();
        q.try_push(job(2, Priority::Normal), 1).unwrap();
        q.try_push(job(3, Priority::High), 1).unwrap();
        q.try_push(job(4, Priority::Normal), 1).unwrap();
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![3, 2, 4, 1]);
    }

    #[test]
    fn weighted_tenants_interleave_fairly() {
        let q = AdmissionQueue::new(16, hint());
        for i in 0..4u64 {
            q.try_push(tenant_job(10 + i, TenantId(1)), 2).unwrap();
            q.try_push(tenant_job(20 + i, TenantId(2)), 1).unwrap();
        }
        assert_eq!(q.tenant_depth(TenantId(1)), 4);
        assert_eq!(q.tenant_depth(TenantId(2)), 4);
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        // Two from tenant 1 per one from tenant 2 while both are backlogged.
        assert_eq!(order, vec![10, 11, 20, 12, 13, 21, 22, 23]);
        assert_eq!(q.tenant_depth(TenantId(1)), 0);
    }

    #[test]
    fn saturation_rejects_and_high_water_tracks() {
        let q = AdmissionQueue::new(2, hint());
        q.try_push(job(1, Priority::Normal), 1).unwrap();
        q.try_push(job(2, Priority::Normal), 1).unwrap();
        assert_eq!(
            q.try_push(job(3, Priority::High), 1).unwrap_err(),
            ServiceError::Saturated {
                retry_after: hint()
            }
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        q.pop().unwrap();
        q.try_push(job(3, Priority::High), 1).unwrap();
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(AdmissionQueue::new(1, hint()));
        q.try_push(job(1, Priority::Normal), 1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(job(2, Priority::Normal), 1));
        // Give the pusher a moment to park, then free space.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.pop().unwrap().id, 1);
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn close_rejects_and_wakes_blocked_pushers() {
        let q = Arc::new(AdmissionQueue::new(1, hint()));
        q.try_push(job(1, Priority::Normal), 1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(job(2, Priority::Normal), 1));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(
            pusher.join().unwrap().unwrap_err(),
            ServiceError::ShuttingDown
        );
        assert_eq!(
            q.try_push(job(3, Priority::Normal), 1).unwrap_err(),
            ServiceError::ShuttingDown
        );
        // Already-queued jobs still drain.
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = AdmissionQueue::new(0, hint());
        assert_eq!(q.capacity(), 1);
        q.try_push(job(1, Priority::Normal), 1).unwrap();
        assert!(q.try_push(job(2, Priority::Normal), 1).is_err());
    }
}
