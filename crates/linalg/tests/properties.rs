//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic invariants the PCT pipeline relies on:
//! scale-invariance of the spectral angle, mergeability of covariance
//! accumulators, orthogonality of Jacobi eigenvectors and trace preservation.

use linalg::{
    covariance::{covariance_matrix, mean_vector, CovarianceAccumulator},
    eigen::{sorted_eigenpairs, JacobiOptions},
    reduce, Matrix, SymMatrix, Vector,
};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

fn pixel_set(bands: usize, max_pixels: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(finite_vec(bands), 1..max_pixels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spectral_angle_is_symmetric(a in finite_vec(8), b in finite_vec(8)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let ab = va.spectral_angle(&vb).unwrap();
        let ba = vb.spectral_angle(&va).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn spectral_angle_in_valid_range(a in finite_vec(8), b in finite_vec(8)) {
        let angle = Vector::from_vec(a).spectral_angle(&Vector::from_vec(b)).unwrap();
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&angle));
    }

    #[test]
    fn spectral_angle_scale_invariant(a in finite_vec(6), b in finite_vec(6), s in 0.001..1000.0f64) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let base = va.spectral_angle(&vb).unwrap();
        let scaled = va.scale(s).spectral_angle(&vb).unwrap();
        prop_assert!((base - scaled).abs() < 1e-7);
    }

    #[test]
    fn dot_product_commutes(a in finite_vec(16), b in finite_vec(16)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        prop_assert!((va.dot(&vb).unwrap() - vb.dot(&va).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn neumaier_sum_matches_exact_on_integers(values in prop::collection::vec(-1000i32..1000, 0..200)) {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let exact: i64 = values.iter().map(|&v| v as i64).sum();
        prop_assert_eq!(reduce::neumaier_sum(floats.iter().copied()), exact as f64);
    }

    #[test]
    fn running_sum_split_merge_invariant(values in prop::collection::vec(-1e6..1e6f64, 1..200), split in 0usize..200) {
        let split = split % values.len();
        let mut whole = reduce::RunningSum::new();
        for v in &values { whole.add(*v); }
        let mut left = reduce::RunningSum::new();
        let mut right = reduce::RunningSum::new();
        for v in &values[..split] { left.add(*v); }
        for v in &values[split..] { right.add(*v); }
        left.merge(&right);
        prop_assert!((whole.total() - left.total()).abs() < 1e-6 * (1.0 + whole.total().abs()));
    }

    #[test]
    fn covariance_merge_matches_sequential(pixels in pixel_set(4, 40), split in 0usize..40) {
        let pixels: Vec<Vector> = pixels.into_iter().map(Vector::from_vec).collect();
        let split = split % pixels.len();
        let mean = mean_vector(&pixels).unwrap();
        let seq = covariance_matrix(&pixels).unwrap();

        let mut a = CovarianceAccumulator::new(mean.clone());
        let mut b = CovarianceAccumulator::new(mean.clone());
        a.push_all(&pixels[..split]).unwrap();
        b.push_all(&pixels[split..]).unwrap();
        a.merge(&b).unwrap();
        let merged = a.finalize().unwrap();
        let scale = 1.0 + seq.frobenius_norm();
        prop_assert!(seq.max_abs_diff(&merged).unwrap() < 1e-7 * scale);
    }

    #[test]
    fn covariance_diagonal_nonnegative(pixels in pixel_set(3, 30)) {
        let pixels: Vec<Vector> = pixels.into_iter().map(Vector::from_vec).collect();
        let cov = covariance_matrix(&pixels).unwrap();
        for i in 0..cov.dim() {
            prop_assert!(cov.get(i, i) >= -1e-9);
        }
    }

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace(rows in prop::collection::vec(finite_vec(5), 5)) {
        let dense = Matrix::from_rows(&rows).unwrap();
        let sym = SymMatrix::from_dense(&dense).unwrap();
        let (vals, _) = sorted_eigenpairs(&sym, JacobiOptions::default()).unwrap();
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - sym.trace()).abs() < 1e-6 * (1.0 + sym.trace().abs()));
    }

    #[test]
    fn jacobi_rows_are_orthonormal(rows in prop::collection::vec(finite_vec(4), 4)) {
        let dense = Matrix::from_rows(&rows).unwrap();
        let sym = SymMatrix::from_dense(&dense).unwrap();
        let (_, t) = sorted_eigenpairs(&sym, JacobiOptions::default()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let d = Vector::from(t.row(i)).dot(&Vector::from(t.row(j))).unwrap();
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expected).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn jacobi_eigenvalues_sorted_descending(rows in prop::collection::vec(finite_vec(6), 6)) {
        let dense = Matrix::from_rows(&rows).unwrap();
        let sym = SymMatrix::from_dense(&dense).unwrap();
        let (vals, _) = sorted_eigenpairs(&sym, JacobiOptions::default()).unwrap();
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn sym_matrix_rank_one_update_is_symmetric(x in finite_vec(7)) {
        let v = Vector::from_vec(x);
        let mut s = SymMatrix::zeros(7);
        s.rank_one_update(&v).unwrap();
        for i in 0..7 {
            for j in 0..7 {
                prop_assert_eq!(s.get(i, j), s.get(j, i));
            }
        }
    }

    #[test]
    fn matrix_transpose_preserves_frobenius(rows in prop::collection::vec(finite_vec(5), 3)) {
        let m = Matrix::from_rows(&rows).unwrap();
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-9);
    }
}
