//! Dense row-major matrices.
//!
//! Used for the transformation matrix `A` of step 6 (rows are the sorted
//! eigenvectors of the covariance matrix) and for the fixed 3x3 colour-mapping
//! matrix of step 8.

use crate::vector::Vector;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_row_major",
                left: rows * cols,
                right: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// Returns an error when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    left: cols,
                    right: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable slice of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as a freshly allocated vector.
    pub fn column(&self, c: usize) -> Vector {
        Vector::from_vec((0..self.rows).map(|r| self[(r, c)]).collect())
    }

    /// Matrix–vector product `A x`.
    pub fn mul_vector(&self, x: &Vector) -> Result<Vector> {
        if self.cols != x.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vector",
                left: self.cols,
                right: x.len(),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.as_slice()) {
                acc += a * b;
            }
            out.push(acc);
        }
        Ok(Vector::from_vec(out))
    }

    /// Matrix–matrix product `A B`.
    pub fn mul_matrix(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_matrix",
                left: self.cols,
                right: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::reduce::neumaier_sum(self.data.iter().map(|x| x * x)).sqrt()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                left: self.rows * self.cols,
                right: other.rows * other.cols,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Returns the top `k` rows as a new matrix (used to keep the first few
    /// principal components).
    pub fn top_rows(&self, k: usize) -> Matrix {
        let k = k.min(self.rows);
        Matrix {
            rows: k,
            cols: self.cols,
            data: self.data[..k * self.cols].to_vec(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let i = Matrix::identity(4);
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(i.mul_vector(&x).unwrap(), x);
    }

    #[test]
    fn from_row_major_rejects_bad_length() {
        assert!(Matrix::from_row_major(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn matrix_vector_product_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = Vector::from_vec(vec![5.0, 6.0]);
        let y = a.mul_vector(&x).unwrap();
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn matrix_matrix_product_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.mul_matrix(&b).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let a = Matrix::zeros(2, 5);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (5, 2));
    }

    #[test]
    fn column_extraction() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(a.column(1).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn top_rows_truncates_and_saturates() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(a.top_rows(2).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.top_rows(10).rows(), 3);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_the_largest_entrywise_gap() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
    }

    #[test]
    fn mul_incompatible_shapes_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul_matrix(&b).is_err());
        assert!(a.mul_vector(&Vector::zeros(2)).is_err());
    }
}
