//! Dense linear-algebra substrate for the Resilient Image Fusion reproduction.
//!
//! The spectral-screening PCT algorithm of Achalakul, Lee and Taylor operates
//! on *pixel vectors* (one sample per spectral band) and on the `n x n`
//! symmetric covariance matrix of the screened pixel set, where `n` is the
//! number of spectral bands (210 for the HYDICE cube used in the paper).
//!
//! This crate provides exactly the operations the eight algorithm steps need,
//! with no external numerical dependencies:
//!
//! * [`Vector`] — a dense `f64` vector with the dot products, norms and
//!   spectral-angle helpers used by step 1 (spectral screening) and step 3
//!   (mean vector).
//! * [`Matrix`] — a dense row-major `f64` matrix used for the transformation
//!   matrix of step 6 and the colour-mapping matrix of step 8.
//! * [`SymMatrix`] — a packed symmetric matrix used for covariance sums
//!   (steps 4–5).
//! * [`covariance`] — outer-product accumulation `C += (x - m)(x - m)^T`
//!   exactly as written in step 4 of the paper.
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices plus
//!   eigenpair sorting by descending eigenvalue (step 6).
//! * [`reduce`] — numerically robust reductions (Kahan/Neumaier summation,
//!   pairwise mean) used wherever many floating point values are folded.
//!
//! The types are deliberately simple (`Vec<f64>` storage, no lifetimes in the
//! public API) so they serialise cheaply across the message-passing layers in
//! the `scp` and `netsim` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod covariance;
pub mod eigen;
pub mod matrix;
pub mod reduce;
pub mod sym;
pub mod vector;

pub use covariance::CovarianceAccumulator;
pub use eigen::{sorted_eigenpairs, EigenDecomposition, JacobiOptions};
pub use matrix::Matrix;
pub use sym::SymMatrix;
pub use vector::Vector;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// The Jacobi sweep limit was reached before convergence.
    NotConverged {
        /// Number of sweeps performed.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius norm.
        off_norm_bits: u64,
    },
    /// An operation that requires a non-empty operand received an empty one.
    Empty {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => {
                write!(f, "dimension mismatch in {op}: {left} vs {right}")
            }
            LinalgError::NotConverged {
                sweeps,
                off_norm_bits,
            } => write!(
                f,
                "Jacobi eigensolver did not converge after {sweeps} sweeps (off-diagonal norm {})",
                f64::from_bits(*off_norm_bits)
            ),
            LinalgError::Empty { op } => write!(f, "operation {op} requires a non-empty operand"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
