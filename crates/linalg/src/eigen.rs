//! Cyclic Jacobi eigensolver for symmetric matrices (algorithm step 6).
//!
//! Step 6 of the paper computes the eigenvectors of the covariance matrix and
//! sorts them by descending eigenvalue so the high-variance spectral content
//! is packed into the leading principal components.  The paper notes this
//! step is `O(n^3)` in the number of bands and is executed sequentially by
//! the manager because its cost depends on the band count (≤ 210), not the
//! image size.
//!
//! The cyclic Jacobi method is used here because it is simple, dependency
//! free, numerically robust for symmetric matrices, and produces orthogonal
//! eigenvectors to machine precision — properties the property-based tests in
//! this module assert directly.

use crate::matrix::Matrix;
use crate::sym::SymMatrix;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// Options controlling the Jacobi iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JacobiOptions {
    /// Maximum number of full sweeps over all off-diagonal entries.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm relative to
    /// the matrix Frobenius norm.
    pub tolerance: f64,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 64,
            tolerance: 1e-12,
        }
    }
}

/// Result of an eigen-decomposition: `A = V diag(lambda) V^T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenDecomposition {
    /// Eigenvalues, in the order produced by the solver (see
    /// [`sorted_eigenpairs`] for the descending order the PCT needs).
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors stored as *columns* of this matrix, in the same order as
    /// `eigenvalues`.
    pub eigenvectors: Matrix,
    /// Number of sweeps the solver performed.
    pub sweeps: usize,
}

impl EigenDecomposition {
    /// Returns eigenvector `k` as a row vector.
    pub fn eigenvector(&self, k: usize) -> crate::Vector {
        self.eigenvectors.column(k)
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += a[(i, j)] * a[(i, j)];
            }
        }
    }
    acc.sqrt()
}

/// Computes the eigen-decomposition of a symmetric matrix with the cyclic
/// Jacobi method.
pub fn jacobi_eigen(matrix: &SymMatrix, options: JacobiOptions) -> Result<EigenDecomposition> {
    let n = matrix.dim();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: Vec::new(),
            eigenvectors: Matrix::zeros(0, 0),
            sweeps: 0,
        });
    }
    let mut a = matrix.to_dense();
    let mut v = Matrix::identity(n);
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);

    let mut sweeps = 0;
    while sweeps < options.max_sweeps {
        let off = off_diagonal_norm(&a);
        if off <= options.tolerance * scale {
            break;
        }
        sweeps += 1;
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Rotation angle that annihilates a[p][q].
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to A from both sides: A <- J^T A J.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate the eigenvector matrix: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let off = off_diagonal_norm(&a);
    if off > options.tolerance * scale * 1e3 && sweeps >= options.max_sweeps {
        return Err(LinalgError::NotConverged {
            sweeps,
            off_norm_bits: off.to_bits(),
        });
    }

    let eigenvalues = (0..n).map(|i| a[(i, i)]).collect();
    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors: v,
        sweeps,
    })
}

/// Computes the eigen-decomposition and returns the eigenpairs sorted by
/// descending eigenvalue, as step 6 of the paper requires ("sorted according
/// to their corresponding eigenvalues which provide a measure of their
/// variances").
///
/// The returned matrix has the sorted eigenvectors as *rows*, i.e. it is the
/// transformation matrix `A` applied to centred pixel vectors in step 7.
pub fn sorted_eigenpairs(matrix: &SymMatrix, options: JacobiOptions) -> Result<(Vec<f64>, Matrix)> {
    let decomp = jacobi_eigen(matrix, options)?;
    let n = decomp.dim();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        decomp.eigenvalues[b]
            .partial_cmp(&decomp.eigenvalues[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| decomp.eigenvalues[i]).collect();
    let mut transform = Matrix::zeros(n, n);
    for (row, &src) in order.iter().enumerate() {
        for k in 0..n {
            transform[(row, k)] = decomp.eigenvectors[(k, src)];
        }
        // Canonicalise the sign: eigenvectors are only defined up to sign,
        // and different (but equivalent) inputs — e.g. covariance matrices
        // built from slightly different unique sets in the sequential versus
        // distributed pipelines — could otherwise flip a component and
        // invert a colour channel.  Make the largest-magnitude entry
        // positive so every implementation agrees.
        let mut max_idx = 0;
        let mut max_abs = 0.0_f64;
        for k in 0..n {
            if transform[(row, k)].abs() > max_abs {
                max_abs = transform[(row, k)].abs();
                max_idx = k;
            }
        }
        if transform[(row, max_idx)] < 0.0 {
            for k in 0..n {
                transform[(row, k)] = -transform[(row, k)];
            }
        }
    }
    Ok((eigenvalues, transform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn sym_from_rows(rows: &[Vec<f64>]) -> SymMatrix {
        SymMatrix::from_dense(&Matrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let m = sym_from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let (vals, _) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = sym_from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, _) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_sum_to_trace() {
        let m = sym_from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.5],
            vec![-2.0, 0.5, 3.0],
        ]);
        let (vals, _) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - m.trace()).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal_rows() {
        let m = sym_from_rows(&[
            vec![5.0, 2.0, 1.0, 0.0],
            vec![2.0, 4.0, 0.5, 1.0],
            vec![1.0, 0.5, 3.0, 0.2],
            vec![0.0, 1.0, 0.2, 2.0],
        ]);
        let (_, t) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let ri = Vector::from(t.row(i));
                let rj = Vector::from(t.row(j));
                let dot = ri.dot(&rj).unwrap();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "rows {i},{j} dot = {dot}");
            }
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        // A = V^T diag(lambda) V where V rows are eigenvectors.
        let m = sym_from_rows(&[
            vec![6.0, 2.0, 0.0],
            vec![2.0, 5.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let (vals, t) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        let mut diag = Matrix::zeros(3, 3);
        for i in 0..3 {
            diag[(i, i)] = vals[i];
        }
        let reconstructed = t
            .transpose()
            .mul_matrix(&diag)
            .unwrap()
            .mul_matrix(&t)
            .unwrap();
        let dense = m.to_dense();
        assert!(reconstructed.max_abs_diff(&dense).unwrap() < 1e-9);
    }

    #[test]
    fn transform_of_eigenvector_scales_by_eigenvalue() {
        let m = sym_from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let decomp = jacobi_eigen(&m, JacobiOptions::default()).unwrap();
        let dense = m.to_dense();
        for k in 0..2 {
            let v = decomp.eigenvector(k);
            let av = dense.mul_vector(&v).unwrap();
            let lv = v.scale(decomp.eigenvalues[k]);
            for (a, b) in av.iter().zip(lv.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_matrix_decomposes_trivially() {
        let m = SymMatrix::zeros(0);
        let d = jacobi_eigen(&m, JacobiOptions::default()).unwrap();
        assert!(d.eigenvalues.is_empty());
    }

    #[test]
    fn one_by_one_matrix() {
        let mut m = SymMatrix::zeros(1);
        m.set(0, 0, 42.0);
        let (vals, t) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        assert_eq!(vals, vec![42.0]);
        assert!((t[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_correlated_data_puts_variance_in_first_component() {
        // Strongly correlated two-band data: nearly all variance along (1,1).
        let pixels: Vec<Vector> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.1;
                Vector::from_vec(vec![
                    t + 0.01 * (i as f64).sin(),
                    t - 0.01 * (i as f64).cos(),
                ])
            })
            .collect();
        let cov = crate::covariance::covariance_matrix(&pixels).unwrap();
        let (vals, t) = sorted_eigenpairs(&cov, JacobiOptions::default()).unwrap();
        assert!(vals[0] > 100.0 * vals[1]);
        // First eigenvector should be close to (1,1)/sqrt(2) up to sign.
        let e0 = t.row(0);
        assert!((e0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!((e0[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
    }

    #[test]
    fn larger_random_like_matrix_converges() {
        // Deterministic pseudo-random symmetric matrix, 30x30.
        let n = 30;
        let mut m = SymMatrix::zeros(n);
        let mut state = 0x12345678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                m.set(i, j, next());
            }
        }
        let (vals, t) = sorted_eigenpairs(&m, JacobiOptions::default()).unwrap();
        // Eigenvalues sorted descending.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Rows orthonormal.
        for i in 0..n {
            let ri = Vector::from(t.row(i));
            assert!((ri.norm() - 1.0).abs() < 1e-8);
        }
        // Trace preserved.
        let sum: f64 = vals.iter().sum();
        assert!((sum - m.trace()).abs() < 1e-7);
    }
}
