//! Dense `f64` vectors and the spectral-angle primitives of algorithm step 1.

use crate::reduce;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense vector of `f64` values.
///
/// In the fusion pipeline a `Vector` is most often a *pixel vector*: the
/// per-band radiance samples of a single spatial location of the
/// hyper-spectral cube.  The spectral-angle helpers ([`Vector::spectral_angle`])
/// implement the classification metric of step 1 of the paper:
/// `alpha(x, y) = arccos(x . y / (|x| |y|))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Vector length (number of components / spectral bands).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product `self . other`.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(reduce::neumaier_sum(
            self.data.iter().zip(&other.data).map(|(a, b)| a * b),
        ))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        reduce::neumaier_sum(self.data.iter().map(|x| x * x)).sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        reduce::neumaier_sum(self.data.iter().map(|x| x.abs()))
    }

    /// Maximum absolute component.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Spectral angle between two pixel vectors in radians.
    ///
    /// This is the screening metric of step 1 of the paper:
    /// `alpha(x, y) = arccos((x . y) / (|x| |y|))`.  The cosine argument is
    /// clamped to `[-1, 1]` so rounding noise can never produce a NaN.
    ///
    /// Returns an error when the vectors have different lengths; returns
    /// `pi / 2` when either vector has zero norm (a zero pixel carries no
    /// spectral direction, so it is treated as maximally dissimilar — this
    /// keeps degenerate pixels out of every similarity class).
    pub fn spectral_angle(&self, other: &Vector) -> Result<f64> {
        let dot = self.dot(other)?;
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return Ok(std::f64::consts::FRAC_PI_2);
        }
        let cos = (dot / denom).clamp(-1.0, 1.0);
        Ok(cos.acos())
    }

    /// Squared Euclidean distance to another vector.
    pub fn distance_sq(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "distance_sq",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(reduce::neumaier_sum(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b) * (a - b)),
        ))
    }

    /// Component-wise subtraction producing a new vector.
    pub fn sub_vec(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }

    /// Component-wise addition producing a new vector.
    pub fn add_vec(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        ))
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign_vec(&mut self, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "add_assign",
                left: self.len(),
                right: other.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every component by `scale`.
    pub fn scale(&self, scale: f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|x| x * scale).collect())
    }

    /// Multiplies every component by `scale` in place.
    pub fn scale_in_place(&mut self, scale: f64) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Returns a unit vector pointing in the same direction, or a zero vector
    /// if the norm is zero.
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Mean of the components.
    pub fn mean(&self) -> Result<f64> {
        if self.is_empty() {
            return Err(LinalgError::Empty { op: "mean" });
        }
        Ok(reduce::neumaier_sum(self.data.iter().copied()) / self.len() as f64)
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector::from_vec(data)
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector::from_vec(data.to_vec())
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        self.add_vec(rhs)
            .expect("vector addition dimension mismatch")
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        self.sub_vec(rhs)
            .expect("vector subtraction dimension mismatch")
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.add_assign_vec(rhs)
            .expect("vector add-assign dimension mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn v(data: &[f64]) -> Vector {
        Vector::from_vec(data.to_vec())
    }

    #[test]
    fn dot_product_matches_manual_computation() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_product_dimension_mismatch_is_an_error() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        let a = v(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn spectral_angle_of_identical_direction_is_zero() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = a.scale(7.5);
        assert!(a.spectral_angle(&b).unwrap().abs() < 1e-9);
    }

    #[test]
    fn spectral_angle_of_orthogonal_vectors_is_half_pi() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        assert!((a.spectral_angle(&b).unwrap() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn spectral_angle_of_opposite_vectors_is_pi() {
        let a = v(&[1.0, 1.0]);
        let b = v(&[-1.0, -1.0]);
        assert!((a.spectral_angle(&b).unwrap() - PI).abs() < 1e-6);
    }

    #[test]
    fn spectral_angle_with_zero_vector_is_half_pi() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[1.0, 2.0]);
        assert_eq!(a.spectral_angle(&b).unwrap(), FRAC_PI_2);
    }

    #[test]
    fn spectral_angle_is_scale_invariant() {
        let a = v(&[0.2, 0.9, 0.4]);
        let b = v(&[0.8, 0.1, 0.3]);
        let angle = a.spectral_angle(&b).unwrap();
        let angle_scaled = a.scale(123.0).spectral_angle(&b.scale(0.004)).unwrap();
        assert!((angle - angle_scaled).abs() < 1e-9);
    }

    #[test]
    fn add_and_sub_are_inverses() {
        let a = v(&[1.0, -2.0, 3.5]);
        let b = v(&[0.5, 4.0, -1.0]);
        let sum = a.add_vec(&b).unwrap();
        let back = sum.sub_vec(&b).unwrap();
        for (x, y) in back.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[3.0, -4.0, 12.0]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_vector_stays_zero() {
        let a = Vector::zeros(4);
        assert_eq!(a.normalized(), Vector::zeros(4));
    }

    #[test]
    fn mean_of_empty_vector_errors() {
        assert!(matches!(
            Vector::zeros(0).mean(),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn mean_of_constant_vector_is_the_constant() {
        assert_eq!(Vector::filled(10, 2.5).mean().unwrap(), 2.5);
    }

    #[test]
    fn operator_overloads_match_methods() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[3.0, 5.0]);
        assert_eq!(&a + &b, a.add_vec(&b).unwrap());
        assert_eq!(&a - &b, a.sub_vec(&b).unwrap());
        assert_eq!(&a * 2.0, a.scale(2.0));
    }

    #[test]
    fn distance_sq_matches_norm_of_difference() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[4.0, 6.0, 3.0]);
        let d = a.distance_sq(&b).unwrap();
        let diff = a.sub_vec(&b).unwrap();
        assert!((d - diff.dot(&diff).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn indexing_reads_and_writes_components() {
        let mut a = v(&[1.0, 2.0, 3.0]);
        a[1] = 10.0;
        assert_eq!(a[1], 10.0);
        assert_eq!(a.as_slice(), &[1.0, 10.0, 3.0]);
    }
}
