//! Numerically robust reductions.
//!
//! The covariance and mean-vector steps of the PCT fold hundreds of thousands
//! of floating-point products per matrix entry.  Naive summation loses
//! precision when partial sums grow large; the paper's original C code used
//! double accumulation, and this module goes one step further with
//! compensated (Neumaier) summation plus a pairwise variant used by the
//! parallel reduction paths so that sequential and distributed results agree
//! to tight tolerances, which is what the cross-implementation tests assert.

/// Compensated (Neumaier/Kahan–Babuška) summation over an iterator.
///
/// Errors are bounded by `O(eps)` independent of the number of terms instead
/// of the `O(n * eps)` of naive summation.
pub fn neumaier_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0_f64;
    let mut compensation = 0.0_f64;
    for value in values {
        let t = sum + value;
        if sum.abs() >= value.abs() {
            compensation += (sum - t) + value;
        } else {
            compensation += (value - t) + sum;
        }
        sum = t;
    }
    sum + compensation
}

/// Pairwise (cascade) summation over a slice.
///
/// Used by the tree-structured parallel reductions: the error behaviour of a
/// binary reduction tree matches this function, so a distributed sum compared
/// against `pairwise_sum` of the same data agrees to round-off.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 64;
    if values.len() <= BASE {
        return neumaier_sum(values.iter().copied());
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

/// Arithmetic mean using compensated summation. Returns `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(neumaier_sum(values.iter().copied()) / values.len() as f64)
    }
}

/// Population variance using the two-pass algorithm with compensated sums.
/// Returns `None` for empty input.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(neumaier_sum(values.iter().map(|x| (x - m) * (x - m))) / values.len() as f64)
}

/// A running compensated accumulator that can be merged, mirroring how the
/// distributed workers each hold a partial sum that the manager later merges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningSum {
    sum: f64,
    compensation: f64,
    count: u64,
}

impl RunningSum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
        self.count += 1;
    }

    /// Merges another accumulator into this one (order independent up to
    /// round-off), as the manager does with worker partial sums.
    pub fn merge(&mut self, other: &RunningSum) {
        let t = self.sum + other.sum;
        if self.sum.abs() >= other.sum.abs() {
            self.compensation += (self.sum - t) + other.sum;
        } else {
            self.compensation += (other.sum - t) + self.sum;
        }
        self.sum = t;
        self.compensation += other.compensation;
        self.count += other.count;
    }

    /// Final compensated total.
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Number of values accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the accumulated values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.total() / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_handles_catastrophic_cancellation() {
        // 1.0 + 1e100 - 1e100 == 1.0 with compensation, 0.0 naively.
        let values = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(values.iter().copied()), 2.0);
    }

    #[test]
    fn pairwise_matches_neumaier_on_well_conditioned_data() {
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let a = neumaier_sum(values.iter().copied());
        let b = pairwise_sum(&values);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mean_and_variance_of_constants() {
        let values = vec![4.0; 1000];
        assert_eq!(mean(&values), Some(4.0));
        assert_eq!(variance(&values), Some(0.0));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn variance_of_simple_sequence() {
        // Population variance of [1, 2, 3, 4] is 1.25.
        let values = [1.0, 2.0, 3.0, 4.0];
        assert!((variance(&values).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn running_sum_merge_equals_single_accumulator() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut whole = RunningSum::new();
        for v in &values {
            whole.add(*v);
        }
        let mut left = RunningSum::new();
        let mut right = RunningSum::new();
        for v in &values[..500] {
            left.add(*v);
        }
        for v in &values[500..] {
            right.add(*v);
        }
        left.merge(&right);
        assert!((whole.total() - left.total()).abs() < 1e-12);
        assert_eq!(whole.count(), left.count());
    }

    #[test]
    fn running_sum_mean_of_empty_is_none() {
        assert_eq!(RunningSum::new().mean(), None);
    }

    #[test]
    fn running_sum_mean_matches_slice_mean() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut acc = RunningSum::new();
        for v in &values {
            acc.add(*v);
        }
        assert!((acc.mean().unwrap() - 49.5).abs() < 1e-12);
    }
}
