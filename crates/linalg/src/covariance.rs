//! Covariance accumulation exactly as written in steps 3–5 of the paper.
//!
//! Step 3 computes the mean vector `m` of the screened (unique) pixel set;
//! step 4 has each worker accumulate `sum_p = Σ (I_ij - m)(I_ij - m)^T` over
//! its share of the set; step 5 has the manager average the partial sums into
//! the covariance matrix.  [`CovarianceAccumulator`] is that per-worker
//! partial sum: it can be fed pixel vectors, merged with other accumulators
//! (the manager side of step 5) and finalised into a [`SymMatrix`].

use crate::sym::SymMatrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A mergeable accumulator for the mean-subtracted covariance sum.
///
/// The paper computes the mean vector first (step 3) and then accumulates
/// centred outer products (step 4).  The accumulator therefore takes the mean
/// at construction time; this mirrors the message flow of the distributed
/// algorithm, where the manager broadcasts `m` before handing out step-4
/// sub-problems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovarianceAccumulator {
    mean: Vector,
    sum: SymMatrix,
    count: u64,
}

impl CovarianceAccumulator {
    /// Creates an accumulator for pixel vectors with the given mean.
    pub fn new(mean: Vector) -> Self {
        let n = mean.len();
        Self {
            mean,
            sum: SymMatrix::zeros(n),
            count: 0,
        }
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.mean.len()
    }

    /// Number of pixel vectors accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean vector the accumulator centres with.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Accumulates one pixel vector: `sum += (x - m)(x - m)^T`.
    pub fn push(&mut self, pixel: &Vector) -> Result<()> {
        if pixel.len() != self.mean.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "covariance push",
                left: self.mean.len(),
                right: pixel.len(),
            });
        }
        let centred = pixel.sub_vec(&self.mean)?;
        self.sum.rank_one_update(&centred)?;
        self.count += 1;
        Ok(())
    }

    /// Accumulates a batch of pixel vectors.
    pub fn push_all<'a, I: IntoIterator<Item = &'a Vector>>(&mut self, pixels: I) -> Result<()> {
        for p in pixels {
            self.push(p)?;
        }
        Ok(())
    }

    /// Merges another accumulator (a different worker's partial sum).
    ///
    /// Both accumulators must have been built with the same mean vector —
    /// in the distributed algorithm the manager broadcasts one mean, so a
    /// mismatch indicates a protocol bug and is reported as an error.
    pub fn merge(&mut self, other: &CovarianceAccumulator) -> Result<()> {
        if self.mean.len() != other.mean.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "covariance merge",
                left: self.mean.len(),
                right: other.mean.len(),
            });
        }
        self.sum.add_assign_sym(&other.sum)?;
        self.count += other.count;
        Ok(())
    }

    /// Finalises into the covariance matrix (step 5: divide by the number of
    /// accumulated pixel vectors). Returns an error when nothing was
    /// accumulated.
    pub fn finalize(&self) -> Result<SymMatrix> {
        if self.count == 0 {
            return Err(LinalgError::Empty {
                op: "covariance finalize",
            });
        }
        let mut cov = self.sum.clone();
        cov.scale_in_place(1.0 / self.count as f64);
        Ok(cov)
    }

    /// Returns the raw (un-normalised) covariance sum, as shipped over the
    /// network in step 4.
    pub fn raw_sum(&self) -> &SymMatrix {
        &self.sum
    }
}

/// Computes the mean pixel vector of a set (step 3).
///
/// Returns an error for an empty set or inconsistent vector lengths.
pub fn mean_vector(pixels: &[Vector]) -> Result<Vector> {
    let first = pixels
        .first()
        .ok_or(LinalgError::Empty { op: "mean_vector" })?;
    let n = first.len();
    let mut acc = vec![crate::reduce::RunningSum::new(); n];
    for p in pixels {
        if p.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "mean_vector",
                left: n,
                right: p.len(),
            });
        }
        for (a, v) in acc.iter_mut().zip(p.as_slice()) {
            a.add(*v);
        }
    }
    Ok(Vector::from_vec(
        acc.iter().map(|a| a.mean().unwrap_or(0.0)).collect(),
    ))
}

/// Convenience: computes the full covariance matrix of a pixel set
/// sequentially (mean + accumulate + finalise), the reference against which
/// the distributed implementation is validated.
pub fn covariance_matrix(pixels: &[Vector]) -> Result<SymMatrix> {
    let mean = mean_vector(pixels)?;
    let mut acc = CovarianceAccumulator::new(mean);
    acc.push_all(pixels)?;
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pixels() -> Vec<Vector> {
        (0..50)
            .map(|i| {
                let t = i as f64;
                Vector::from_vec(vec![t, 2.0 * t + 1.0, (t * 0.3).sin() * 5.0])
            })
            .collect()
    }

    #[test]
    fn mean_vector_of_constant_set_is_the_constant() {
        let pixels = vec![Vector::filled(4, 3.25); 17];
        let m = mean_vector(&pixels).unwrap();
        for v in m.iter() {
            assert!((v - 3.25).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_vector_of_empty_set_errors() {
        assert!(matches!(mean_vector(&[]), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn mean_vector_rejects_ragged_pixels() {
        let pixels = vec![Vector::zeros(3), Vector::zeros(4)];
        assert!(mean_vector(&pixels).is_err());
    }

    #[test]
    fn covariance_of_constant_set_is_zero() {
        let pixels = vec![Vector::filled(3, 9.0); 10];
        let cov = covariance_matrix(&pixels).unwrap();
        assert!(cov.frobenius_norm() < 1e-12);
    }

    #[test]
    fn covariance_diagonal_is_per_band_variance() {
        let pixels = sample_pixels();
        let cov = covariance_matrix(&pixels).unwrap();
        for band in 0..3 {
            let values: Vec<f64> = pixels.iter().map(|p| p[band]).collect();
            let var = crate::reduce::variance(&values).unwrap();
            assert!((cov.get(band, band) - var).abs() < 1e-9);
        }
    }

    #[test]
    fn perfectly_correlated_bands_have_full_cross_covariance() {
        let pixels = sample_pixels();
        let cov = covariance_matrix(&pixels).unwrap();
        // Band 1 = 2 * band 0 + 1, so cov(0,1) = 2 * var(0).
        assert!((cov.get(0, 1) - 2.0 * cov.get(0, 0)).abs() < 1e-9);
    }

    #[test]
    fn merged_partial_sums_match_sequential_covariance() {
        let pixels = sample_pixels();
        let mean = mean_vector(&pixels).unwrap();
        let sequential = covariance_matrix(&pixels).unwrap();

        // Emulate 4 workers, uneven split.
        let chunks = [&pixels[..7], &pixels[7..20], &pixels[20..21], &pixels[21..]];
        let mut manager = CovarianceAccumulator::new(mean.clone());
        for chunk in chunks {
            let mut worker = CovarianceAccumulator::new(mean.clone());
            worker.push_all(chunk).unwrap();
            manager.merge(&worker).unwrap();
        }
        let merged = manager.finalize().unwrap();
        assert!(sequential.max_abs_diff(&merged).unwrap() < 1e-9);
    }

    #[test]
    fn finalize_without_data_errors() {
        let acc = CovarianceAccumulator::new(Vector::zeros(3));
        assert!(acc.finalize().is_err());
    }

    #[test]
    fn push_rejects_wrong_band_count() {
        let mut acc = CovarianceAccumulator::new(Vector::zeros(3));
        assert!(acc.push(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn count_tracks_pushes_and_merges() {
        let mut a = CovarianceAccumulator::new(Vector::zeros(2));
        a.push(&Vector::zeros(2)).unwrap();
        a.push(&Vector::filled(2, 1.0)).unwrap();
        let mut b = CovarianceAccumulator::new(Vector::zeros(2));
        b.push(&Vector::filled(2, 2.0)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn covariance_is_positive_semidefinite_on_diagonal() {
        let pixels = sample_pixels();
        let cov = covariance_matrix(&pixels).unwrap();
        for i in 0..cov.dim() {
            assert!(cov.get(i, i) >= -1e-12);
        }
    }
}
