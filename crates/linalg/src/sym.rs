//! Packed symmetric matrices used for covariance sums (steps 4–5).
//!
//! A covariance matrix over `n` spectral bands is symmetric, so only the
//! upper triangle (including the diagonal) is stored — `n (n + 1) / 2`
//! entries instead of `n^2`.  For the 210-band HYDICE cube this also halves
//! the bytes each worker ships back to the manager in step 4, which matters
//! for the communication model in `netsim`.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A symmetric `f64` matrix stored as a packed upper triangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    n: usize,
    /// Upper triangle in row-major packed order:
    /// `(0,0), (0,1), ..., (0,n-1), (1,1), ..., (n-1,n-1)`.
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n x n` symmetric zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (packed) entries.
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the packed storage, used when shipping partial
    /// covariance sums between workers and the manager.
    pub fn packed(&self) -> &[f64] {
        &self.data
    }

    /// Reconstructs a symmetric matrix from packed storage.
    pub fn from_packed(n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != n * (n + 1) / 2 {
            return Err(LinalgError::DimensionMismatch {
                op: "from_packed",
                left: n * (n + 1) / 2,
                right: data.len(),
            });
        }
        Ok(Self { n, data })
    }

    fn index(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        debug_assert!(j < self.n);
        // Offset of row i in the packed upper triangle plus column offset.
        i * self.n - i * (i + 1) / 2 + j
    }

    /// Reads entry `(i, j)` (symmetric access).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Writes entry `(i, j)` (and by symmetry `(j, i)`).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// Adds `value` to entry `(i, j)`.
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] += value;
    }

    /// Column-tile width of the blocked [`SymMatrix::rank_one_update`].
    /// 128 `f64`s = 1 KiB of `x` per tile: the tile of `x[j]` values stays
    /// resident in L1 across every row of the block instead of being
    /// re-streamed once per row, which is what makes the blocked walk
    /// cache-friendly at 210 bands and beyond.
    const ROU_TILE: usize = 128;

    /// Rank-one update `self += x x^T`, the inner operation of step 4.
    ///
    /// The triangular loop is blocked into `ROU_TILE`-wide column tiles.
    /// Each packed entry is still updated exactly once with
    /// the same single `+= x[i] * x[j]`, so the result is **bit-identical**
    /// to the naive walk ([`SymMatrix::rank_one_update_reference`], kept as
    /// the comparison oracle for tests and the kernels bench) — reordering
    /// independent updates cannot change any entry's rounding.
    pub fn rank_one_update(&mut self, x: &Vector) -> Result<()> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "rank_one_update",
                left: self.n,
                right: x.len(),
            });
        }
        let xs = x.as_slice();
        let n = self.n;
        for jb in (0..n).step_by(Self::ROU_TILE) {
            let j_end = (jb + Self::ROU_TILE).min(n);
            let x_tile = &xs[jb..j_end];
            // Rows at or above the tile's diagonal block contribute to it.
            for (i, &xi) in xs.iter().enumerate().take(j_end) {
                let j0 = jb.max(i);
                let row = i * n - i * (i + 1) / 2;
                let dst = &mut self.data[row + j0..row + j_end];
                let src = &x_tile[j0 - jb..];
                for (d, &xj) in dst.iter_mut().zip(src) {
                    *d += xi * xj;
                }
            }
        }
        Ok(())
    }

    /// The textbook triangular walk of the rank-one update: one linear pass
    /// over the packed upper triangle.  Retained as the bit-exact reference
    /// the blocked [`SymMatrix::rank_one_update`] is compared against.
    pub fn rank_one_update_reference(&mut self, x: &Vector) -> Result<()> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "rank_one_update_reference",
                left: self.n,
                right: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut idx = 0;
        for (i, &xi) in xs.iter().enumerate() {
            for &xj in &xs[i..] {
                self.data[idx] += xi * xj;
                idx += 1;
            }
        }
        Ok(())
    }

    /// Element-wise addition of another symmetric matrix (merging the partial
    /// covariance sums from different workers).
    pub fn add_assign_sym(&mut self, other: &SymMatrix) -> Result<()> {
        if self.n != other.n {
            return Err(LinalgError::DimensionMismatch {
                op: "add_assign_sym",
                left: self.n,
                right: other.n,
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every entry (dividing the covariance sum by the sample count).
    pub fn scale_in_place(&mut self, scale: f64) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Converts to a full dense matrix (needed by the Jacobi eigensolver).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in i..self.n {
                let v = self.get(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// Builds a packed symmetric matrix from a dense matrix, averaging the two
    /// triangles so slightly asymmetric numerical input is symmetrised.
    pub fn from_dense(m: &Matrix) -> Result<Self> {
        if m.rows() != m.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "from_dense",
                left: m.rows(),
                right: m.cols(),
            });
        }
        let n = m.rows();
        let mut s = Self::zeros(n);
        for i in 0..n {
            for j in i..n {
                s.set(i, j, 0.5 * (m[(i, j)] + m[(j, i)]));
            }
        }
        Ok(s)
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }

    /// Frobenius norm of the full (unpacked) matrix.
    pub fn frobenius_norm(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in i..self.n {
                let v = self.get(i, j);
                acc += if i == j { v * v } else { 2.0 * v * v };
            }
        }
        acc.sqrt()
    }

    /// Maximum absolute difference between two symmetric matrices.
    pub fn max_abs_diff(&self, other: &SymMatrix) -> Result<f64> {
        if self.n != other.n {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                left: self.n,
                right: other.n,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_indexing_is_symmetric() {
        let mut m = SymMatrix::zeros(4);
        m.set(1, 3, 7.5);
        assert_eq!(m.get(3, 1), 7.5);
        assert_eq!(m.get(1, 3), 7.5);
    }

    #[test]
    fn packed_len_is_triangular_number() {
        assert_eq!(SymMatrix::zeros(210).packed_len(), 210 * 211 / 2);
    }

    #[test]
    fn rank_one_update_matches_dense_outer_product() {
        let x = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let mut s = SymMatrix::zeros(3);
        s.rank_one_update(&x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((s.get(i, j) - x[i] * x[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rank_one_update_rejects_wrong_dimension() {
        let mut s = SymMatrix::zeros(3);
        assert!(s.rank_one_update(&Vector::zeros(4)).is_err());
        assert!(s.rank_one_update_reference(&Vector::zeros(4)).is_err());
    }

    #[test]
    fn blocked_rank_one_update_is_bit_identical_to_the_reference() {
        // Dimensions straddling the tile width (including the paper's 210
        // bands), accumulated over many updates from a messy deterministic
        // sequence: every packed entry must match the naive walk bit for
        // bit, not approximately.
        for n in [1usize, 7, 127, 128, 129, 210, 300] {
            let mut blocked = SymMatrix::zeros(n);
            let mut naive = SymMatrix::zeros(n);
            for k in 0..5u64 {
                let x = Vector::from_vec(
                    (0..n)
                        .map(|i| {
                            let t = (i as f64 + 1.3) * (k as f64 + 0.7);
                            t.sin() * 1e3 + 1.0 / t
                        })
                        .collect(),
                );
                blocked.rank_one_update(&x).unwrap();
                naive.rank_one_update_reference(&x).unwrap();
            }
            assert_eq!(
                blocked.packed().len(),
                naive.packed().len(),
                "n={n}: packed length"
            );
            for (idx, (a, b)) in blocked.packed().iter().zip(naive.packed()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "n={n}: entry {idx} diverged ({a} vs {b})"
                );
            }
        }
    }

    #[test]
    fn merging_partial_sums_matches_single_accumulation() {
        let xs: Vec<Vector> = (0..20)
            .map(|i| Vector::from_vec(vec![i as f64, (i * i) as f64 * 0.1, (i as f64).sin()]))
            .collect();
        let mut whole = SymMatrix::zeros(3);
        for x in &xs {
            whole.rank_one_update(x).unwrap();
        }
        let mut a = SymMatrix::zeros(3);
        let mut b = SymMatrix::zeros(3);
        for x in &xs[..10] {
            a.rank_one_update(x).unwrap();
        }
        for x in &xs[10..] {
            b.rank_one_update(x).unwrap();
        }
        a.add_assign_sym(&b).unwrap();
        assert!(whole.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn dense_round_trip_preserves_entries() {
        let mut s = SymMatrix::zeros(5);
        for i in 0..5 {
            for j in i..5 {
                s.set(i, j, (i * 10 + j) as f64);
            }
        }
        let round = SymMatrix::from_dense(&s.to_dense()).unwrap();
        assert!(s.max_abs_diff(&round).unwrap() < 1e-12);
    }

    #[test]
    fn from_dense_symmetrises_asymmetric_input() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 1.0]]).unwrap();
        let s = SymMatrix::from_dense(&m).unwrap();
        assert_eq!(s.get(0, 1), 3.0);
    }

    #[test]
    fn from_dense_rejects_non_square() {
        assert!(SymMatrix::from_dense(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn from_packed_validates_length() {
        assert!(SymMatrix::from_packed(3, vec![0.0; 5]).is_err());
        assert!(SymMatrix::from_packed(3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn trace_and_identity() {
        assert_eq!(SymMatrix::identity(7).trace(), 7.0);
    }

    #[test]
    fn frobenius_norm_counts_off_diagonals_twice() {
        let mut s = SymMatrix::zeros(2);
        s.set(0, 1, 3.0);
        // Full matrix is [[0,3],[3,0]] with Frobenius norm sqrt(18).
        assert!((s.frobenius_norm() - 18.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn scale_in_place_scales_all_entries() {
        let mut s = SymMatrix::identity(3);
        s.scale_in_place(0.5);
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.trace(), 1.5);
    }
}
