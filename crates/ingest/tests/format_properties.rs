//! Property tests for the interleaved cube wire format and the streaming
//! decoder: for arbitrary dimensions, every interleave, and arbitrary
//! (sample-splitting) chunk sizes, a written cube decodes **bit-identical**
//! to the in-memory original — and truncated payloads, mid-sample ends and
//! corrupt headers are typed errors, never wrong cubes.

use hsi::io::{
    interleave_to_bip_offset, write_cube_as, CubeFileHeader, Interleave, CUBE_FILE_HEADER_LEN,
};
use hsi::{CubeDims, HyperCube};
use ingest::{IngestError, StreamDecoder};
use proptest::prelude::*;

/// A deterministic cube whose every sample is a distinct, salt-dependent
/// value, so bit-identity failures cannot hide behind repeated samples.
fn coded_cube(dims: CubeDims, salt: f64) -> HyperCube {
    let samples: Vec<f64> = (0..dims.samples())
        .map(|i| salt + (i as f64) * 0.618_033_9 + (i as f64).cos() * 1e-3)
        .collect();
    HyperCube::from_samples(dims, samples).expect("length matches")
}

/// Full wire bytes (header + payload) of `cube` in `interleave` order,
/// produced through the real `hsi::io` writer.
fn wire_bytes(cube: &HyperCube, interleave: Interleave, case: &str) -> Vec<u8> {
    let mut path = std::env::temp_dir();
    path.push(format!("ingest_prop_{}_{case}.hsif", std::process::id()));
    write_cube_as(cube, interleave, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Decodes `payload` through a [`StreamDecoder`] in chunks whose sizes
/// cycle through `chunk_sizes` (any of which may split an `f64`).
fn decode_chunked(
    header: CubeFileHeader,
    payload: &[u8],
    chunk_sizes: &[usize],
) -> ingest::Result<std::sync::Arc<HyperCube>> {
    let mut decoder = StreamDecoder::new(header);
    let mut pos = 0;
    let mut i = 0;
    while pos < payload.len() {
        let size = chunk_sizes[i % chunk_sizes.len()].max(1);
        let end = (pos + size).min(payload.len());
        decoder.push(&payload[pos..end])?;
        pos = end;
        i += 1;
    }
    decoder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: dims × interleave × chunk sizes → the decoded
    /// cube is bit-identical to the written one.
    #[test]
    fn chunked_decode_is_bit_identical_for_every_interleave(
        w in 1usize..11,
        h in 1usize..13,
        b in 1usize..8,
        interleave_pick in 0usize..3,
        chunks in prop::collection::vec(1usize..61, 1..6),
        salt in -1000.0..1000.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let interleave = Interleave::ALL[interleave_pick];
        let bytes = wire_bytes(&cube, interleave, &format!("rt_{w}_{h}_{b}_{interleave_pick}"));
        let header = CubeFileHeader::parse(&bytes).unwrap();
        prop_assert_eq!(header.dims, dims);
        prop_assert_eq!(header.interleave, interleave);

        let decoded = decode_chunked(header, &bytes[CUBE_FILE_HEADER_LEN..], &chunks).unwrap();
        prop_assert_eq!(decoded.samples().len(), cube.samples().len());
        prop_assert!(
            decoded
                .samples()
                .iter()
                .zip(cube.samples())
                .all(|(a, c)| a.to_bits() == c.to_bits()),
            "decode diverged for {} with chunks {:?}",
            interleave.label(),
            &chunks
        );
    }

    /// The interleave scatter map is a bijection onto BIP storage for any
    /// dims — no sample is dropped or written twice.
    #[test]
    fn scatter_map_is_a_bijection(
        w in 1usize..14,
        h in 1usize..14,
        b in 1usize..10,
        interleave_pick in 0usize..3,
    ) {
        let dims = CubeDims::new(w, h, b);
        let interleave = Interleave::ALL[interleave_pick];
        let mut seen = vec![false; dims.samples()];
        for index in 0..dims.samples() {
            let off = interleave_to_bip_offset(dims, interleave, index);
            prop_assert!(off < dims.samples());
            prop_assert!(!seen[off], "{} duplicates offset {off}", interleave.label());
            seen[off] = true;
        }
    }

    /// Truncation anywhere in the payload is a typed error: a cut on a
    /// sample boundary reports `Truncated`, a mid-sample cut `Malformed` —
    /// never a silently wrong cube.
    #[test]
    fn truncated_payloads_are_typed_errors(
        w in 1usize..9,
        h in 1usize..9,
        b in 1usize..6,
        interleave_pick in 0usize..3,
        cut in 1usize..10_000,
        salt in -100.0..100.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let interleave = Interleave::ALL[interleave_pick];
        let bytes = wire_bytes(&cube, interleave, &format!("tr_{w}_{h}_{b}_{interleave_pick}"));
        let payload = &bytes[CUBE_FILE_HEADER_LEN..];
        // Cut between 1 byte and the whole payload (payloads are never
        // empty: dims are at least 1x1x1).
        let cut = 1 + cut % payload.len();
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let short = &payload[..payload.len() - cut];
        let result = decode_chunked(header, short, &[23]);
        if cut.is_multiple_of(8) {
            prop_assert!(matches!(result, Err(IngestError::Truncated { .. })));
        } else {
            prop_assert!(matches!(result, Err(IngestError::Malformed(_))));
        }
    }

    /// Extra payload beyond what the header announces is an overflow error
    /// regardless of chunking.
    #[test]
    fn overflowing_payloads_are_typed_errors(
        w in 1usize..7,
        h in 1usize..7,
        b in 1usize..5,
        extra in 1usize..40,
        salt in -100.0..100.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let bytes = wire_bytes(&cube, Interleave::Bip, &format!("ov_{w}_{h}_{b}"));
        let mut payload = bytes[CUBE_FILE_HEADER_LEN..].to_vec();
        payload.extend(std::iter::repeat_n(0xAB, extra));
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let result = decode_chunked(header, &payload, &[17]);
        prop_assert!(matches!(result, Err(IngestError::Overflow { .. })));
    }

    /// Corrupting any single header byte either fails parsing or leaves a
    /// header that still describes *some* cube — but never one that parses
    /// as the original with different dims/interleave silently accepted as
    /// equal.
    #[test]
    fn corrupt_headers_never_impersonate_the_original(
        w in 1usize..9,
        h in 1usize..9,
        b in 1usize..6,
        byte_index in 0usize..30,
        flip in 1usize..256,
    ) {
        let dims = CubeDims::new(w, h, b);
        let header = CubeFileHeader::new(dims, Interleave::Bil);
        let mut encoded = header.encode();
        encoded[byte_index % CUBE_FILE_HEADER_LEN] ^= flip as u8;
        match CubeFileHeader::parse(&encoded) {
            Err(_) => {}
            Ok(parsed) => prop_assert!(
                parsed != header,
                "a corrupted byte parsed back as the original header"
            ),
        }
    }
}
