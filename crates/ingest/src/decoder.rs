//! The chunked streaming decoder: raw file-order bytes in, one
//! `Arc<HyperCube>` out, with **no post-assembly copy**.
//!
//! A [`StreamDecoder`] is created from a parsed [`CubeFileHeader`] and fed
//! arbitrary byte chunks (chunk boundaries may split an `f64` — a carry
//! buffer stitches partial samples across pushes).  Every completed sample
//! is scattered straight to its final BIP offset in the one buffer that
//! becomes the cube's storage, so assembling BSQ or BIL input costs exactly
//! one write per sample and zero reshuffling afterwards.  The proof is
//! measured, not asserted: each assembled byte is charged to the `hsi`
//! assembly ledger ([`hsi::charge_assembled_bytes`]) while the *clone*
//! ledger — which every deep payload copy in the workspace charges — stays
//! untouched.

use crate::{IngestError, Result};
use hsi::io::{interleave_to_bip_offset, CubeFileHeader};
use hsi::HyperCube;
use std::sync::Arc;

/// Assembles file-order byte chunks directly into BIP cube storage.
#[derive(Debug)]
pub struct StreamDecoder {
    header: CubeFileHeader,
    /// The cube's final storage, written in place as samples complete.
    data: Vec<f64>,
    /// Samples decoded so far (file order).
    filled: usize,
    /// Bytes of a split trailing sample carried to the next push.
    carry: [u8; 8],
    carry_len: usize,
    /// Chunks pushed so far.
    chunks: u64,
}

impl StreamDecoder {
    /// Starts decoding a cube described by `header`.  The storage is
    /// allocated once, up front; no later step reallocates or copies it.
    pub fn new(header: CubeFileHeader) -> Self {
        Self {
            header,
            data: vec![0.0; header.dims.samples()],
            filled: 0,
            carry: [0; 8],
            carry_len: 0,
            chunks: 0,
        }
    }

    /// The header this decoder was created from.
    pub fn header(&self) -> CubeFileHeader {
        self.header
    }

    /// Samples decoded and placed so far.
    pub fn samples_filled(&self) -> usize {
        self.filled
    }

    /// Chunks pushed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Whether every announced sample has arrived.
    pub fn is_complete(&self) -> bool {
        self.filled == self.header.dims.samples() && self.carry_len == 0
    }

    /// Decodes one chunk of file-order payload bytes, scattering every
    /// completed sample to its BIP offset.  Chunks may be any size,
    /// including sizes that split an `f64` across pushes.
    pub fn push(&mut self, mut bytes: &[u8]) -> Result<()> {
        self.chunks += 1;
        let total = self.header.dims.samples();
        let mut assembled = 0usize;
        // Finish a sample split across the previous push.
        if self.carry_len > 0 {
            let need = 8 - self.carry_len;
            let take = need.min(bytes.len());
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&bytes[..take]);
            self.carry_len += take;
            bytes = &bytes[take..];
            if self.carry_len < 8 {
                return Ok(());
            }
            self.carry_len = 0;
            if self.filled >= total {
                return Err(IngestError::Overflow {
                    expected_samples: total,
                });
            }
            self.place(f64::from_le_bytes(self.carry));
            assembled += 8;
        }
        let whole = bytes.len() / 8;
        if self.filled + whole > total {
            return Err(IngestError::Overflow {
                expected_samples: total,
            });
        }
        for chunk in bytes.chunks_exact(8) {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.place(f64::from_le_bytes(buf));
            assembled += 8;
        }
        let rest = &bytes[whole * 8..];
        self.carry[..rest.len()].copy_from_slice(rest);
        self.carry_len = rest.len();
        if self.carry_len > 0 && self.filled >= total {
            return Err(IngestError::Overflow {
                expected_samples: total,
            });
        }
        hsi::charge_assembled_bytes(assembled);
        Ok(())
    }

    /// Writes one completed file-order sample at its final BIP offset.
    fn place(&mut self, value: f64) {
        let off = interleave_to_bip_offset(self.header.dims, self.header.interleave, self.filled);
        self.data[off] = value;
        self.filled += 1;
    }

    /// Finishes decoding: the storage buffer is *moved* into the cube and
    /// wrapped in an `Arc` — the zero-copy hand-off.  Errors if the stream
    /// ended early ([`IngestError::Truncated`]) or mid-sample.
    pub fn finish(self) -> Result<Arc<HyperCube>> {
        let total = self.header.dims.samples();
        if self.carry_len != 0 {
            return Err(IngestError::Malformed(format!(
                "stream ended mid-sample ({} trailing bytes)",
                self.carry_len
            )));
        }
        if self.filled != total {
            return Err(IngestError::Truncated {
                expected_samples: total,
                actual_samples: self.filled,
            });
        }
        let cube = HyperCube::from_samples(self.header.dims, self.data)?;
        Ok(Arc::new(cube))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::io::{write_cube_as, Interleave, CUBE_FILE_HEADER_LEN};
    use hsi::{CloneLedger, CubeDims, SceneConfig, SceneGenerator};

    fn scene_cube() -> HyperCube {
        let mut config = SceneConfig::small(17);
        config.dims = CubeDims::new(9, 7, 5);
        SceneGenerator::new(config).unwrap().generate()
    }

    fn file_bytes(cube: &HyperCube, interleave: Interleave) -> Vec<u8> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "ingest_decoder_{}_{}.hsif",
            std::process::id(),
            interleave.label()
        ));
        write_cube_as(cube, interleave, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    }

    #[test]
    fn decodes_every_interleave_bit_identical_in_awkward_chunks() {
        let cube = scene_cube();
        for interleave in Interleave::ALL {
            let bytes = file_bytes(&cube, interleave);
            let header = CubeFileHeader::parse(&bytes).unwrap();
            let payload = &bytes[CUBE_FILE_HEADER_LEN..];
            let mut decoder = StreamDecoder::new(header);
            // 13-byte chunks split f64s across pushes on purpose.
            for chunk in payload.chunks(13) {
                decoder.push(chunk).unwrap();
            }
            assert!(decoder.is_complete());
            let decoded = decoder.finish().unwrap();
            assert_eq!(
                decoded.samples(),
                cube.samples(),
                "{} chunked decode diverged",
                interleave.label()
            );
        }
    }

    #[test]
    fn assembly_is_charged_to_the_ledger_without_cloning() {
        let cube = scene_cube();
        let bytes = file_bytes(&cube, Interleave::Bsq);
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let ledger = CloneLedger::snapshot();
        let mut decoder = StreamDecoder::new(header);
        decoder.push(&bytes[CUBE_FILE_HEADER_LEN..]).unwrap();
        let _cube = decoder.finish().unwrap();
        assert!(ledger.assembled_delta() >= cube.byte_size() as u64);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let cube = scene_cube();
        let bytes = file_bytes(&cube, Interleave::Bil);
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let mut decoder = StreamDecoder::new(header);
        decoder
            .push(&bytes[CUBE_FILE_HEADER_LEN..bytes.len() - 16])
            .unwrap();
        assert!(!decoder.is_complete());
        assert!(matches!(
            decoder.finish(),
            Err(IngestError::Truncated { .. })
        ));
    }

    #[test]
    fn mid_sample_end_is_an_error() {
        let cube = scene_cube();
        let bytes = file_bytes(&cube, Interleave::Bip);
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let mut decoder = StreamDecoder::new(header);
        decoder
            .push(&bytes[CUBE_FILE_HEADER_LEN..bytes.len() - 3])
            .unwrap();
        assert!(matches!(decoder.finish(), Err(IngestError::Malformed(_))));
    }

    #[test]
    fn overflowing_stream_is_an_error() {
        let cube = scene_cube();
        let bytes = file_bytes(&cube, Interleave::Bip);
        let header = CubeFileHeader::parse(&bytes).unwrap();
        let mut decoder = StreamDecoder::new(header);
        decoder.push(&bytes[CUBE_FILE_HEADER_LEN..]).unwrap();
        assert!(matches!(
            decoder.push(&[0u8; 8]),
            Err(IngestError::Overflow { .. })
        ));
    }
}
