//! Cube sources: pull-based streams of cube arrivals.
//!
//! A source yields a flat stream of [`SourceEvent`]s — `Begin` (a parsed
//! header plus a tag naming the arrival), `Chunk` (file-order payload
//! bytes) and `End` — which is exactly the shape a [`crate::StreamDecoder`]
//! consumes.  All shipped sources are deterministic: files are replayed in
//! sorted order and synthetic scenes are seeded, so every ingest run is
//! reproducible.

use crate::{IngestError, Result};
use hsi::io::{
    interleave_to_bip_offset, CubeFileHeader, Interleave, CUBE_FILE_EXTENSION, CUBE_FILE_HEADER_LEN,
};
use hsi::{SceneConfig, SceneGenerator};
use std::collections::BTreeSet;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Default payload chunk size of the shipped sources (64 KiB).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// One event of a cube arrival stream.
#[derive(Debug)]
pub enum SourceEvent {
    /// A new cube begins.
    Begin {
        /// A stable name for the arrival (file name, synthetic label).
        tag: String,
        /// The parsed self-describing header.
        header: CubeFileHeader,
    },
    /// A chunk of file-order payload bytes for the current cube.
    Chunk(Vec<u8>),
    /// The current cube's stream is finished (possibly short — the decoder
    /// decides whether the payload was complete).
    End,
}

/// A pull-based stream of cube arrivals.
pub trait CubeSource {
    /// A stable name for reports and per-source counters.
    fn name(&self) -> &str;

    /// The next event, or `None` when the source is exhausted.  An `Err`
    /// poisons the current cube (the pump discards any partial decode and
    /// counts a decode error) but not the source: iteration continues with
    /// the next arrival.
    fn next_event(&mut self) -> Option<Result<SourceEvent>>;
}

/// Shared machinery: streams one opened cube file as header + byte chunks.
struct FileStream {
    tag: String,
    file: std::fs::File,
    remaining: usize,
    started: bool,
    done: bool,
}

impl FileStream {
    fn open(path: &Path) -> Result<Self> {
        let tag = Self::tag_for(path);
        let file = std::fs::File::open(path)?;
        Ok(Self {
            tag,
            file,
            remaining: 0,
            started: false,
            done: false,
        })
    }

    /// A stable display tag for an arrival, unique per file name.
    ///
    /// Valid UTF-8 names are used verbatim.  A lossy conversion would map
    /// every invalid byte to U+FFFD, so two distinct non-UTF-8 names could
    /// collide on the same tag (and downstream consumers keyed by tag would
    /// conflate the arrivals); a hash of the raw name keeps them apart.
    fn tag_for(path: &Path) -> String {
        use std::hash::{Hash, Hasher};
        let Some(name) = path.file_name() else {
            return path.display().to_string();
        };
        match name.to_str() {
            Some(utf8) => utf8.to_owned(),
            None => {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                name.hash(&mut hasher);
                format!("{}#{:016x}", name.to_string_lossy(), hasher.finish())
            }
        }
    }

    fn next_event(&mut self, chunk_bytes: usize) -> Option<Result<SourceEvent>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            let mut header_bytes = [0u8; CUBE_FILE_HEADER_LEN];
            if let Err(e) = self.file.read_exact(&mut header_bytes) {
                self.done = true;
                return Some(Err(IngestError::Malformed(format!(
                    "{}: header unreadable: {e}",
                    self.tag
                ))));
            }
            let header = match CubeFileHeader::parse(&header_bytes) {
                Ok(header) => header,
                Err(e) => {
                    self.done = true;
                    return Some(Err(IngestError::Hsi(e)));
                }
            };
            self.remaining = header.payload_bytes();
            return Some(Ok(SourceEvent::Begin {
                tag: self.tag.clone(),
                header,
            }));
        }
        if self.remaining == 0 {
            self.done = true;
            return Some(Ok(SourceEvent::End));
        }
        let want = self.remaining.min(chunk_bytes.max(1));
        let mut buf = vec![0u8; want];
        let read = match self.file.read(&mut buf) {
            Ok(read) => read,
            Err(e) => {
                self.done = true;
                return Some(Err(IngestError::Io(e)));
            }
        };
        if read == 0 {
            // Short file: end the stream and let the decoder report the
            // truncation.
            self.done = true;
            return Some(Ok(SourceEvent::End));
        }
        buf.truncate(read);
        self.remaining -= read;
        Some(Ok(SourceEvent::Chunk(buf)))
    }
}

/// Streams one interleaved cube file as chunked arrivals.
pub struct FileSource {
    name: String,
    path: PathBuf,
    chunk_bytes: usize,
    stream: Option<FileStream>,
    opened: bool,
}

impl FileSource {
    /// Creates a source over one `.hsif` file with the default chunk size.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_chunk_bytes(path, DEFAULT_CHUNK_BYTES)
    }

    /// Creates a source reading the file in `chunk_bytes`-sized chunks.
    pub fn with_chunk_bytes(path: impl Into<PathBuf>, chunk_bytes: usize) -> Self {
        let path = path.into();
        Self {
            name: format!("file:{}", path.display()),
            path,
            chunk_bytes,
            stream: None,
            opened: false,
        }
    }
}

impl CubeSource for FileSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<Result<SourceEvent>> {
        if !self.opened {
            self.opened = true;
            match FileStream::open(&self.path) {
                Ok(stream) => self.stream = Some(stream),
                Err(e) => return Some(Err(e)),
            }
        }
        let stream = self.stream.as_mut()?;
        let event = stream.next_event(self.chunk_bytes);
        if event.is_none() {
            self.stream = None;
        }
        event
    }
}

/// Replays a folder of `.hsif` cube files as a deterministic arrival
/// schedule: files are streamed in sorted name order, and whenever the
/// known set is exhausted the directory is rescanned once more, so files
/// dropped in while the pump runs are picked up.  The source ends when a
/// rescan finds nothing new.
pub struct DirectorySource {
    name: String,
    dir: PathBuf,
    chunk_bytes: usize,
    seen: BTreeSet<PathBuf>,
    pending: Vec<PathBuf>,
    current: Option<FileStream>,
}

impl DirectorySource {
    /// Creates a source over `dir` with the default chunk size.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_chunk_bytes(dir, DEFAULT_CHUNK_BYTES)
    }

    /// Creates a source over `dir` reading files in `chunk_bytes` chunks.
    pub fn with_chunk_bytes(dir: impl Into<PathBuf>, chunk_bytes: usize) -> Self {
        let dir = dir.into();
        Self {
            name: format!("dir:{}", dir.display()),
            dir,
            chunk_bytes,
            seen: BTreeSet::new(),
            pending: Vec::new(),
            current: None,
        }
    }

    /// Scans for unseen cube files, sorted so replay order is stable.
    fn rescan(&mut self) -> Result<()> {
        let mut fresh = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_cube = path
                .extension()
                .is_some_and(|ext| ext == CUBE_FILE_EXTENSION);
            if is_cube && !self.seen.contains(&path) {
                fresh.push(path);
            }
        }
        fresh.sort();
        for path in &fresh {
            self.seen.insert(path.clone());
        }
        // Newly discovered files are drained front to back.
        fresh.reverse();
        self.pending = fresh;
        Ok(())
    }
}

impl CubeSource for DirectorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<Result<SourceEvent>> {
        loop {
            if let Some(stream) = self.current.as_mut() {
                match stream.next_event(self.chunk_bytes) {
                    Some(event) => return Some(event),
                    None => self.current = None,
                }
            }
            if let Some(path) = self.pending.pop() {
                match FileStream::open(&path) {
                    Ok(stream) => self.current = Some(stream),
                    Err(e) => return Some(Err(e)),
                }
                continue;
            }
            if let Err(e) = self.rescan() {
                return Some(Err(e));
            }
            if self.pending.is_empty() {
                return None;
            }
        }
    }
}

/// A deterministic seeded source: each arrival is a synthetic scene,
/// encoded into the interleaved wire format and then chunked exactly like
/// a file read — so tests and benches exercise the same decode path as
/// real files without touching disk.
pub struct SyntheticSource {
    name: String,
    chunk_bytes: usize,
    /// Remaining arrivals, drained front to back (stored reversed).
    arrivals: Vec<(String, SceneConfig, Interleave)>,
    current: Option<(Vec<u8>, usize)>,
}

impl SyntheticSource {
    /// Creates a source that replays `arrivals` (tag, scene, interleave)
    /// in order.
    pub fn new(
        name: impl Into<String>,
        arrivals: Vec<(String, SceneConfig, Interleave)>,
        chunk_bytes: usize,
    ) -> Self {
        let mut arrivals = arrivals;
        arrivals.reverse();
        Self {
            name: name.into(),
            chunk_bytes,
            arrivals,
            current: None,
        }
    }

    /// Encodes one scene into full wire bytes (header + payload) in
    /// memory, sample for sample what `hsi::io::write_cube_as` puts on
    /// disk (same header, same [`interleave_to_bip_offset`] gather order)
    /// — no filesystem involved, so concurrent sources cannot race.
    fn encode(config: &SceneConfig, interleave: Interleave) -> Result<Vec<u8>> {
        let cube = SceneGenerator::new(config.clone())?.generate();
        let header = CubeFileHeader::new(cube.dims(), interleave);
        let mut bytes = Vec::with_capacity(CUBE_FILE_HEADER_LEN + header.payload_bytes());
        bytes.extend_from_slice(&header.encode());
        let samples = cube.samples();
        for index in 0..cube.dims().samples() {
            let bip = interleave_to_bip_offset(cube.dims(), interleave, index);
            bytes.extend_from_slice(&samples[bip].to_le_bytes());
        }
        Ok(bytes)
    }
}

impl CubeSource for SyntheticSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<Result<SourceEvent>> {
        if let Some((bytes, pos)) = self.current.as_mut() {
            if *pos < bytes.len() {
                let end = (*pos + self.chunk_bytes.max(1)).min(bytes.len());
                let chunk = bytes[*pos..end].to_vec();
                *pos = end;
                return Some(Ok(SourceEvent::Chunk(chunk)));
            }
            self.current = None;
            return Some(Ok(SourceEvent::End));
        }
        let (tag, config, interleave) = self.arrivals.pop()?;
        let bytes = match Self::encode(&config, interleave) {
            Ok(bytes) => bytes,
            Err(e) => return Some(Err(e)),
        };
        let header = match CubeFileHeader::parse(&bytes) {
            Ok(header) => header,
            Err(e) => return Some(Err(IngestError::Hsi(e))),
        };
        self.current = Some((bytes, CUBE_FILE_HEADER_LEN));
        Some(Ok(SourceEvent::Begin { tag, header }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamDecoder;
    use hsi::io::write_cube_as;
    use hsi::{CubeDims, HyperCube};
    use std::sync::Arc;

    fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, bands);
        config
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("ingest_src_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drains a source through a decoder, returning (tag, cube) pairs and
    /// the number of errors.
    fn drain(source: &mut dyn CubeSource) -> (Vec<(String, Arc<HyperCube>)>, usize) {
        let mut cubes = Vec::new();
        let mut errors = 0;
        let mut current: Option<(String, StreamDecoder)> = None;
        while let Some(event) = source.next_event() {
            match event {
                Err(_) => {
                    errors += 1;
                    current = None;
                }
                Ok(SourceEvent::Begin { tag, header }) => {
                    current = Some((tag, StreamDecoder::new(header)));
                }
                Ok(SourceEvent::Chunk(bytes)) => {
                    if let Some((_, decoder)) = current.as_mut() {
                        if decoder.push(&bytes).is_err() {
                            errors += 1;
                            current = None;
                        }
                    }
                }
                Ok(SourceEvent::End) => {
                    if let Some((tag, decoder)) = current.take() {
                        match decoder.finish() {
                            Ok(cube) => cubes.push((tag, cube)),
                            Err(_) => errors += 1,
                        }
                    }
                }
            }
        }
        (cubes, errors)
    }

    #[test]
    fn file_source_streams_a_cube_in_chunks() {
        let dir = temp_dir("file");
        let cube = SceneGenerator::new(scene(21, 11, 6)).unwrap().generate();
        let path = dir.join("one.hsif");
        write_cube_as(&cube, Interleave::Bil, &path).unwrap();
        let mut source = FileSource::with_chunk_bytes(&path, 37);
        let (cubes, errors) = drain(&mut source);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(errors, 0);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].0, "one.hsif");
        assert_eq!(*cubes[0].1, cube);
    }

    #[test]
    fn directory_source_replays_sorted_and_skips_non_cube_files() {
        let dir = temp_dir("dir");
        let mut expected = Vec::new();
        for (i, seed) in [3u64, 1, 2].iter().enumerate() {
            let cube = SceneGenerator::new(scene(*seed, 8, 4)).unwrap().generate();
            let name = format!("{i:02}_cube.hsif");
            write_cube_as(&cube, Interleave::ALL[i % 3], dir.join(&name)).unwrap();
            expected.push((name, cube));
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let mut source = DirectorySource::with_chunk_bytes(&dir, 64);
        let (cubes, errors) = drain(&mut source);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(errors, 0);
        assert_eq!(cubes.len(), 3);
        for ((tag, cube), (name, reference)) in cubes.iter().zip(&expected) {
            assert_eq!(tag, name);
            assert_eq!(**cube, *reference);
        }
    }

    #[test]
    fn directory_source_surfaces_corrupt_files_and_continues() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("00_bad.hsif"), b"XXXXgarbage").unwrap();
        let cube = SceneGenerator::new(scene(5, 8, 4)).unwrap().generate();
        write_cube_as(&cube, Interleave::Bsq, dir.join("01_good.hsif")).unwrap();
        let mut source = DirectorySource::new(&dir);
        let (cubes, errors) = drain(&mut source);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(errors, 1, "corrupt header is one error");
        assert_eq!(cubes.len(), 1, "the good file still ingests");
        assert_eq!(*cubes[0].1, cube);
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_file_names_get_distinct_tags() {
        use std::ffi::OsStr;
        use std::os::unix::ffi::OsStrExt;
        let dir = temp_dir("nonutf8");
        let cube = SceneGenerator::new(scene(9, 8, 4)).unwrap().generate();
        // Two names that differ only in their invalid bytes: a lossy
        // conversion maps both to "cube_\u{FFFD}.hsif".
        for raw in [&b"cube_\xff.hsif"[..], &b"cube_\xfe.hsif"[..]] {
            write_cube_as(&cube, Interleave::Bip, dir.join(OsStr::from_bytes(raw))).unwrap();
        }
        let mut source = DirectorySource::new(&dir);
        let (cubes, errors) = drain(&mut source);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(errors, 0);
        assert_eq!(cubes.len(), 2);
        assert_ne!(cubes[0].0, cubes[1].0, "tags must not collide");
        for (_, decoded) in &cubes {
            assert_eq!(**decoded, cube);
        }
    }

    #[test]
    fn synthetic_encoding_matches_the_file_writer_byte_for_byte() {
        let config = scene(33, 7, 4);
        let cube = SceneGenerator::new(config.clone()).unwrap().generate();
        for interleave in Interleave::ALL {
            let in_memory = SyntheticSource::encode(&config, interleave).unwrap();
            let dir = temp_dir("encode");
            let path = dir.join("ref.hsif");
            write_cube_as(&cube, interleave, &path).unwrap();
            let on_disk = std::fs::read(&path).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            assert_eq!(in_memory, on_disk, "{} wire bytes", interleave.label());
        }
    }

    #[test]
    fn synthetic_source_is_deterministic_and_matches_the_generator() {
        let arrivals = vec![
            ("a".to_string(), scene(40, 10, 5), Interleave::Bsq),
            ("b".to_string(), scene(41, 10, 5), Interleave::Bip),
        ];
        let mut first = SyntheticSource::new("synth", arrivals.clone(), 100);
        let mut second = SyntheticSource::new("synth", arrivals, 33);
        let (cubes_a, errors_a) = drain(&mut first);
        let (cubes_b, errors_b) = drain(&mut second);
        assert_eq!(errors_a + errors_b, 0);
        assert_eq!(cubes_a.len(), 2);
        for ((tag_a, cube_a), (tag_b, cube_b)) in cubes_a.iter().zip(&cubes_b) {
            assert_eq!(tag_a, tag_b);
            assert_eq!(
                cube_a.samples(),
                cube_b.samples(),
                "chunk size changed bits"
            );
        }
        let reference = SceneGenerator::new(scene(40, 10, 5)).unwrap().generate();
        assert_eq!(*cubes_a[0].1, reference);
    }
}
