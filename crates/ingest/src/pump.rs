//! The [`IngestPump`]: sources → decoder → store → `fusiond`, with
//! event-driven load shedding.
//!
//! The pump pulls [`crate::SourceEvent`]s from its sources, assembles each
//! arrival with a [`crate::StreamDecoder`], interns the result in the
//! [`CubeStore`] (dedup happens *before* admission, so a repeated scene is
//! an `Arc` bump even when it is later shed), and then asks the
//! [`SheddingPolicy`] what to do.  The policy's view of the service is fed
//! entirely by the subscribed [`ServiceEvent`] stream: a submission enters
//! the *queued* set, an `Admitted` event moves it to *running*, a
//! `Terminal` event retires it and releases its bytes.  Arrivals beyond a
//! hard watermark are **shed** (dropped, counted, never blocking the
//! source), arrivals beyond the soft watermark are **down-prioritized** to
//! [`Priority::Low`] — production back-pressure behaviour instead of an
//! unbounded mirror of the admission queue.
//!
//! The watermarks govern ingest-originated load: jobs submitted by other
//! clients of the same service are not counted (they are invisible to the
//! pump's accounting even though their events arrive; only tracked job ids
//! move the state).

use crate::report::{IngestReport, ShedReason};
use crate::source::{CubeSource, SourceEvent};
use crate::store::CubeStore;
use crate::{Result, StreamDecoder};
use hsi::{CloneLedger, HyperCube};
use pct::PctConfig;
use service::{
    CubeSource as JobCubeSource, EventSubscriber, FusionService, JobHandle, JobOutcome, JobSpec,
    JobStatus, Priority, Route, ServiceError, ServiceEvent,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Watermarks deciding when arrivals are shed or down-prioritized instead
/// of submitted at the configured priority.  `usize::MAX` (the default)
/// disables a watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SheddingPolicy {
    /// Hard watermark on the number of ingest jobs submitted but not yet
    /// admitted by the scheduler: at or above it, arrivals are shed with
    /// [`ShedReason::QueueDepth`].
    pub max_queue_depth: usize,
    /// Hard watermark on the payload bytes of ingest jobs submitted but
    /// not yet terminal: at or above it, arrivals are shed with
    /// [`ShedReason::InFlightBytes`].
    pub max_in_flight_bytes: usize,
    /// Soft watermark on queue depth: at or above it (but below the hard
    /// watermarks), arrivals are admitted at [`Priority::Low`].
    pub downgrade_queue_depth: usize,
}

impl SheddingPolicy {
    /// No watermarks: every decodable arrival is submitted.
    pub fn unbounded() -> Self {
        Self {
            max_queue_depth: usize::MAX,
            max_in_flight_bytes: usize::MAX,
            downgrade_queue_depth: usize::MAX,
        }
    }

    /// Sets the hard queue-depth watermark.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the hard in-flight-bytes watermark.
    pub fn with_max_in_flight_bytes(mut self, bytes: usize) -> Self {
        self.max_in_flight_bytes = bytes;
        self
    }

    /// Sets the soft down-prioritization watermark.
    pub fn with_downgrade_queue_depth(mut self, depth: usize) -> Self {
        self.downgrade_queue_depth = depth;
        self
    }
}

impl Default for SheddingPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Configuration of one pump run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The shedding watermarks.
    pub shedding: SheddingPolicy,
    /// Route of submitted jobs (pinned lane or [`Route::Auto`]).
    pub route: Route,
    /// Priority of submitted jobs (downgraded to [`Priority::Low`] past the
    /// soft watermark).
    pub priority: Priority,
    /// Shard count of submitted jobs.
    pub shards: usize,
    /// Pipeline configuration of submitted jobs.
    pub pct: PctConfig,
    /// Optional per-job deadline.
    pub timeout: Option<Duration>,
    /// Byte bound of the content-addressed store.
    pub store_capacity_bytes: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            shedding: SheddingPolicy::unbounded(),
            route: Route::Auto,
            priority: Priority::Normal,
            shards: 4,
            pct: PctConfig::paper(),
            timeout: None,
            store_capacity_bytes: 256 << 20,
        }
    }
}

/// One admitted arrival, resolved after its job reached a terminal state.
#[derive(Debug)]
pub struct IngestedJob {
    /// Name of the source that delivered the cube.
    pub source: String,
    /// The arrival's tag (file name, synthetic label).
    pub tag: String,
    /// The store-resident cube the job fused (shared storage — equal
    /// content means `Arc`-equal cubes).
    pub cube: Arc<HyperCube>,
    /// The effective priority it was submitted at.
    pub priority: Priority,
    /// The job's typed terminal outcome.
    pub outcome: JobOutcome,
}

/// One shed arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedCube {
    /// Name of the source that delivered the cube.
    pub source: String,
    /// The arrival's tag.
    pub tag: String,
    /// Why it was shed.
    pub reason: ShedReason,
    /// Its payload size.
    pub bytes: usize,
}

/// Everything one pump run produced.
#[derive(Debug)]
pub struct IngestRun {
    /// Counters per source plus aggregate store/job/ledger accounting.
    pub report: IngestReport,
    /// Every admitted arrival with its terminal outcome, in admission
    /// order.
    pub jobs: Vec<IngestedJob>,
    /// Every shed arrival, in arrival order.
    pub shed: Vec<ShedCube>,
    /// The store as the run left it (resident cubes stay shared).
    pub store: CubeStore,
}

/// The event-fed view of the service the shedding decisions consult.
#[derive(Default)]
struct AdmissionState {
    /// Submitted, not yet admitted by the scheduler (bytes per job).
    queued: HashMap<u64, usize>,
    /// Admitted, not yet terminal (bytes per job).
    running: HashMap<u64, usize>,
    /// Sum of bytes across both maps.
    in_flight_bytes: usize,
}

impl AdmissionState {
    fn on_submit(&mut self, job: u64, bytes: usize) {
        self.queued.insert(job, bytes);
        self.in_flight_bytes += bytes;
    }

    /// Applies one service event; events of jobs the pump did not submit
    /// fall through untouched.
    fn on_event(&mut self, event: &ServiceEvent) {
        match event {
            ServiceEvent::Admitted { job, .. } => {
                if let Some(bytes) = self.queued.remove(job) {
                    self.running.insert(*job, bytes);
                }
            }
            ServiceEvent::Terminal { job, .. } => {
                if let Some(bytes) = self.queued.remove(job).or_else(|| self.running.remove(job)) {
                    self.in_flight_bytes -= bytes;
                }
            }
            _ => {}
        }
    }

    fn queue_depth(&self) -> usize {
        self.queued.len()
    }
}

/// Drives cube sources through decode, dedup and admission into a running
/// [`FusionService`].
///
/// ```no_run
/// use ingest::{DirectorySource, IngestConfig, IngestPump};
/// use service::{FusionService, ServiceConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = FusionService::start(ServiceConfig::builder().build()?)?;
/// let pump = IngestPump::new(&service, IngestConfig::default());
/// let run = pump.run(vec![Box::new(DirectorySource::new("/data/cubes"))])?;
/// println!("{}", run.report.render());
/// service.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct IngestPump<'a> {
    service: &'a FusionService,
    events: EventSubscriber,
    config: IngestConfig,
    store: CubeStore,
}

impl<'a> IngestPump<'a> {
    /// Creates a pump over a running service.  The event subscription is
    /// opened here, before any submission, so no admission or terminal
    /// event can be missed.
    pub fn new(service: &'a FusionService, config: IngestConfig) -> Self {
        let events = service.subscribe();
        let store = CubeStore::new(config.store_capacity_bytes);
        Self {
            service,
            events,
            config,
            store,
        }
    }

    /// Ingests every source to exhaustion (sequentially, in order — the
    /// deterministic arrival schedule), waits for every admitted job's
    /// terminal outcome, and returns the full accounting.
    pub fn run(mut self, mut sources: Vec<Box<dyn CubeSource>>) -> Result<IngestRun> {
        let ledger = CloneLedger::snapshot();
        let mut report = IngestReport::default();
        let mut state = AdmissionState::default();
        let mut pending: Vec<(String, String, Arc<HyperCube>, Priority, JobHandle)> = Vec::new();
        let mut shed = Vec::new();

        for source in sources.iter_mut() {
            let name = source.name().to_string();
            report.sources.entry(name.clone()).or_default();
            let mut decoder: Option<(String, StreamDecoder)> = None;
            while let Some(event) = source.next_event() {
                let counters = report.sources.get_mut(&name).expect("entry inserted");
                match event {
                    Err(_) => {
                        counters.decode_errors += 1;
                        decoder = None;
                    }
                    Ok(SourceEvent::Begin { tag, header }) => {
                        // A Begin while a decode is active means the source
                        // never delivered the previous cube's End: the
                        // partial decode is abandoned and must be accounted,
                        // or seen/admitted/shed/error stops adding up.
                        if decoder.take().is_some() {
                            counters.decode_errors += 1;
                        }
                        counters.cubes_seen += 1;
                        decoder = Some((tag, StreamDecoder::new(header)));
                    }
                    Ok(SourceEvent::Chunk(bytes)) => {
                        if let Some((_, d)) = decoder.as_mut() {
                            counters.chunks += 1;
                            if d.push(&bytes).is_err() {
                                counters.decode_errors += 1;
                                decoder = None;
                            }
                        }
                    }
                    Ok(SourceEvent::End) => {
                        let Some((tag, d)) = decoder.take() else {
                            continue;
                        };
                        counters.bytes_assembled += (d.samples_filled() * 8) as u64;
                        let cube = match d.finish() {
                            Ok(cube) => cube,
                            Err(_) => {
                                counters.decode_errors += 1;
                                continue;
                            }
                        };
                        // Dedup before admission: a repeated scene becomes
                        // an Arc bump whether or not it is then shed.
                        let (cube, hit) = self.store.intern(cube);
                        if hit {
                            counters.store_hits += 1;
                        } else {
                            counters.store_misses += 1;
                        }
                        self.admit(
                            &name,
                            tag,
                            cube,
                            &mut state,
                            &mut report,
                            &mut pending,
                            &mut shed,
                        )?;
                    }
                }
            }
        }

        // Resolve every admitted job's terminal outcome.
        let mut jobs = Vec::with_capacity(pending.len());
        for (source, tag, cube, priority, mut handle) in pending {
            let outcome = handle.wait()?;
            match outcome.status() {
                JobStatus::Completed => report.jobs_completed += 1,
                JobStatus::Failed => report.jobs_failed += 1,
                JobStatus::Cancelled => report.jobs_cancelled += 1,
                JobStatus::TimedOut => report.jobs_timed_out += 1,
                JobStatus::Queued | JobStatus::Running => unreachable!("wait is terminal"),
            }
            jobs.push(IngestedJob {
                source,
                tag,
                cube,
                priority,
                outcome,
            });
        }

        report.store_len = self.store.len();
        report.store_resident_bytes = self.store.resident_bytes();
        report.store_evictions = self.store.evictions();
        report.bytes_cloned = ledger.delta();
        Ok(IngestRun {
            report,
            jobs,
            shed,
            store: self.store,
        })
    }

    /// Applies the shedding decision for one decoded arrival and submits it
    /// if admitted.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        source: &str,
        tag: String,
        cube: Arc<HyperCube>,
        state: &mut AdmissionState,
        report: &mut IngestReport,
        pending: &mut Vec<(String, String, Arc<HyperCube>, Priority, JobHandle)>,
        shed: &mut Vec<ShedCube>,
    ) -> Result<()> {
        // Fold in everything the service reported since the last arrival.
        while let Some(event) = self.events.try_next() {
            state.on_event(&event);
        }
        let counters = report.sources.get_mut(source).expect("entry inserted");
        let policy = self.config.shedding;
        let bytes = cube.byte_size();
        let reason = if state.queue_depth() >= policy.max_queue_depth {
            Some(ShedReason::QueueDepth)
        } else if state.in_flight_bytes >= policy.max_in_flight_bytes {
            Some(ShedReason::InFlightBytes)
        } else {
            None
        };
        if let Some(reason) = reason {
            counters.record_shed(reason);
            shed.push(ShedCube {
                source: source.to_string(),
                tag,
                reason,
                bytes,
            });
            return Ok(());
        }
        let downgraded = state.queue_depth() >= policy.downgrade_queue_depth;
        let priority = if downgraded {
            Priority::Low
        } else {
            self.config.priority
        };
        let mut builder = JobSpec::builder(JobCubeSource::InMemory(Arc::clone(&cube)))
            .route(self.config.route)
            .priority(priority)
            .shards(self.config.shards)
            .config(self.config.pct);
        if let Some(timeout) = self.config.timeout {
            builder = builder.timeout(timeout);
        }
        let spec = builder.build().map_err(ServiceError::from)?;
        match self.service.try_submit(spec) {
            Ok(handle) => {
                counters.cubes_admitted += 1;
                if downgraded {
                    counters.cubes_downgraded += 1;
                }
                state.on_submit(handle.id(), bytes);
                pending.push((source.to_string(), tag, cube, priority, handle));
                Ok(())
            }
            Err(ServiceError::Saturated) => {
                counters.record_shed(ShedReason::Saturated);
                shed.push(ShedCube {
                    source: source.to_string(),
                    tag,
                    reason: ShedReason::Saturated,
                    bytes,
                });
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use hsi::io::Interleave;
    use hsi::{CubeDims, SceneConfig};
    use pct::SequentialPct;
    use service::{BackendKind, ServiceConfig};

    fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, bands);
        config
    }

    fn small_service() -> FusionService {
        FusionService::start(
            ServiceConfig::builder()
                .standard_workers(2)
                .replica_groups(0)
                .shared_memory_executors(1)
                .queue_capacity(16)
                .max_in_flight(4)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn pump_ingests_dedups_and_fuses_byte_identical() {
        let service = small_service();
        // Scene 50 arrives twice, in *different* interleaves: content dedup.
        let arrivals = vec![
            ("a".into(), scene(50, 12, 6), Interleave::Bsq),
            ("b".into(), scene(51, 12, 6), Interleave::Bil),
            ("a-again".into(), scene(50, 12, 6), Interleave::Bip),
        ];
        let source = SyntheticSource::new("synth", arrivals, 97);
        let pump = IngestPump::new(&service, IngestConfig::default());
        let run = pump.run(vec![Box::new(source)]).unwrap();
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_seen, 3);
        assert_eq!(totals.cubes_admitted, 3);
        assert_eq!(totals.cubes_shed(), 0);
        assert_eq!(totals.store_misses, 2);
        assert_eq!(totals.store_hits, 1, "repeated scene deduplicated");
        assert_eq!(run.report.jobs_completed, 3);
        assert_eq!(run.store.len(), 2);

        // The duplicate fused the *same shared storage* as the original.
        assert!(Arc::ptr_eq(&run.jobs[0].cube, &run.jobs[2].cube));
        for job in &run.jobs {
            let reference = SequentialPct::new(PctConfig::paper())
                .run(&job.cube)
                .unwrap();
            assert_eq!(
                job.outcome.output().expect("completed"),
                &reference,
                "{} diverged from sequential",
                job.tag
            );
        }
    }

    #[test]
    fn in_flight_bytes_watermark_sheds_deterministically() {
        // One standard worker, one job in flight at a time: the big blocker
        // occupies the only slot for far longer than the pump needs to
        // process the burst, so the accounting below is deterministic.
        let service = FusionService::start(
            ServiceConfig::builder()
                .standard_workers(1)
                .replica_groups(0)
                .shared_memory_executors(0)
                .queue_capacity(16)
                .max_in_flight(1)
                .build()
                .unwrap(),
        )
        .unwrap();
        let blocker = scene(60, 64, 32);
        let small = scene(61, 10, 5);
        let blocker_bytes = blocker.dims.byte_size();
        let small_bytes = small.dims.byte_size();
        let mut arrivals = vec![("blocker".into(), blocker, Interleave::Bip)];
        for i in 0..5u64 {
            arrivals.push((format!("burst-{i}"), scene(70 + i, 10, 5), Interleave::Bil));
        }
        let source = SyntheticSource::new("burst", arrivals, 4096);
        // Watermark admits the blocker plus exactly two burst cubes.
        let config = IngestConfig {
            shedding: SheddingPolicy::unbounded()
                .with_max_in_flight_bytes(blocker_bytes + 2 * small_bytes),
            route: Route::Pinned(BackendKind::Standard),
            shards: 2,
            ..IngestConfig::default()
        };
        let run = IngestPump::new(&service, config)
            .run(vec![Box::new(source)])
            .unwrap();
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_seen, 6);
        assert_eq!(totals.cubes_admitted, 3, "blocker + two burst cubes");
        assert_eq!(totals.shed_in_flight_bytes, 3);
        assert_eq!(
            run.shed.iter().map(|s| s.tag.as_str()).collect::<Vec<_>>(),
            vec!["burst-2", "burst-3", "burst-4"],
            "shedding hits the tail of the burst, in order"
        );
        assert_eq!(run.report.jobs_completed, 3, "admitted cubes still fuse");
    }

    #[test]
    fn downgrade_watermark_lowers_priority_without_shedding() {
        let service = FusionService::start(
            ServiceConfig::builder()
                .standard_workers(1)
                .replica_groups(0)
                .shared_memory_executors(0)
                .queue_capacity(16)
                .max_in_flight(1)
                .build()
                .unwrap(),
        )
        .unwrap();
        // A blocker submitted *outside* the pump occupies the only in-flight
        // slot before ingestion starts, so every pump submission stays
        // queued deterministically (the pump only tracks its own jobs).
        let blocker_cube = Arc::new(
            hsi::SceneGenerator::new(scene(80, 64, 32))
                .unwrap()
                .generate(),
        );
        let mut blocker = service
            .submit(
                JobSpec::builder(JobCubeSource::InMemory(blocker_cube))
                    .route(Route::Pinned(BackendKind::Standard))
                    .shards(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        while blocker.status().unwrap() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(2));
        }

        let arrivals = (0..4u64)
            .map(|i| (format!("late-{i}"), scene(90 + i, 10, 5), Interleave::Bsq))
            .collect();
        let source = SyntheticSource::new("soft", arrivals, 8192);
        // Soft watermark only: once two ingest jobs sit in the queue,
        // later arrivals are admitted at Low priority.
        let config = IngestConfig {
            shedding: SheddingPolicy::unbounded().with_downgrade_queue_depth(2),
            route: Route::Pinned(BackendKind::Standard),
            priority: Priority::High,
            shards: 2,
            ..IngestConfig::default()
        };
        let run = IngestPump::new(&service, config)
            .run(vec![Box::new(source)])
            .unwrap();
        assert!(matches!(blocker.wait().unwrap(), JobOutcome::Completed(_)));
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_admitted, 4, "soft watermark never sheds");
        assert_eq!(totals.cubes_downgraded, 2, "arrivals at queue depth >= 2");
        assert_eq!(run.jobs[0].priority, Priority::High);
        assert_eq!(run.jobs[1].priority, Priority::High);
        assert_eq!(run.jobs[2].priority, Priority::Low);
        assert_eq!(run.jobs[3].priority, Priority::Low);
        assert_eq!(run.report.jobs_completed, 4);
    }
}
