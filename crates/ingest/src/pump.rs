//! The [`IngestPump`]: sources → decoder → store → `fusiond`, with
//! event-driven load shedding.
//!
//! The pump pulls [`crate::SourceEvent`]s from its sources, assembles each
//! arrival with a [`crate::StreamDecoder`], interns the result in the
//! [`CubeStore`] (dedup happens *before* admission, so a repeated scene is
//! an `Arc` bump even when it is later shed), and then consults the
//! service's admission plane.  The [`SheddingPolicy`] is a thin adapter
//! over [`service::PressurePolicy`] — the same tiered downgrade → shed
//! ladder the service itself applies — and its view of the service is a
//! [`service::PressureGauge`] fed entirely by the subscribed
//! [`service::ServiceEvent`] stream: a submission enters the *queued* set, an
//! `Admitted` event moves it to *running*, a `Terminal` event retires it
//! and releases its bytes.  Arrivals beyond a hard watermark are **shed**
//! (dropped, counted with a [`RetryAfter`] hint, never blocking the
//! source), arrivals beyond the soft watermark are **down-prioritized** to
//! [`Priority::Low`] — production back-pressure behaviour instead of an
//! unbounded mirror of the admission queue.
//!
//! The watermarks govern ingest-originated load: jobs submitted by other
//! clients of the same service are not counted (they are invisible to the
//! gauge even though their events arrive; only tracked job ids move the
//! state).  Whatever the service's own admission plane refuses —
//! saturation, a shed watermark of its own, or the ingest tenant's quota —
//! comes back as a typed error the pump folds into the same shed
//! accounting.

use crate::report::{IngestReport, ShedReason};
use crate::source::{CubeSource, SourceEvent};
use crate::store::CubeStore;
use crate::{Result, StreamDecoder};
use hsi::{CloneLedger, HyperCube};
use pct::PctConfig;
use service::{
    CubeSource as JobCubeSource, EventSubscriber, FusionService, JobClass, JobHandle, JobOutcome,
    JobSpec, JobStatus, PressureDecision, PressureGauge, PressurePolicy, Priority, RetryAfter,
    Route, ServiceError, TenantId,
};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};
use telemetry::{SpanId, Telemetry};

/// Watermarks deciding when arrivals are shed or down-prioritized instead
/// of submitted at the configured priority.  `usize::MAX` (the default)
/// disables a watermark.
///
/// This is a thin adapter over the service's [`PressurePolicy`]
/// ([`SheddingPolicy::plane`]): the pump keeps no watermark arithmetic of
/// its own, it feeds the shared ladder with an event-fed
/// [`PressureGauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SheddingPolicy {
    /// Hard watermark on the number of ingest jobs submitted but not yet
    /// admitted by the scheduler: at or above it, arrivals are shed with
    /// [`ShedReason::QueueDepth`].
    pub max_queue_depth: usize,
    /// Hard watermark on the payload bytes of ingest jobs submitted but
    /// not yet terminal: at or above it, arrivals are shed with
    /// [`ShedReason::InFlightBytes`].
    pub max_in_flight_bytes: usize,
    /// Soft watermark on queue depth: at or above it (but below the hard
    /// watermarks), arrivals are admitted at [`Priority::Low`].
    pub downgrade_queue_depth: usize,
}

impl SheddingPolicy {
    /// No watermarks: every decodable arrival is submitted.
    pub fn unbounded() -> Self {
        Self {
            max_queue_depth: usize::MAX,
            max_in_flight_bytes: usize::MAX,
            downgrade_queue_depth: usize::MAX,
        }
    }

    /// Sets the hard queue-depth watermark.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the hard in-flight-bytes watermark.
    pub fn with_max_in_flight_bytes(mut self, bytes: usize) -> Self {
        self.max_in_flight_bytes = bytes;
        self
    }

    /// Sets the soft down-prioritization watermark.
    pub fn with_downgrade_queue_depth(mut self, depth: usize) -> Self {
        self.downgrade_queue_depth = depth;
        self
    }

    /// The service-side pressure ladder these watermarks adapt to: every
    /// pump decision is a [`PressurePolicy::decide`] call on this value.
    pub fn plane(&self) -> PressurePolicy {
        PressurePolicy::unbounded()
            .with_downgrade_queue_depth(self.downgrade_queue_depth)
            .with_shed_queue_depth(self.max_queue_depth)
            .with_shed_in_flight_bytes(self.max_in_flight_bytes)
    }
}

impl Default for SheddingPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// One in-progress arrival: its decoder plus the telemetry bookkeeping of
/// its `decode` span (Begin → End wall time).
struct ActiveDecode {
    tag: String,
    decoder: StreamDecoder,
    span: Option<SpanId>,
    /// Duration fallback when telemetry is disabled and the span returns
    /// nothing.
    started: Instant,
}

impl ActiveDecode {
    /// Closes the decode span (marking errors) and returns its duration,
    /// observed into `ingest_decode_seconds`.
    fn close(self, telemetry: &Telemetry, error: bool) -> Duration {
        Self::close_parts(telemetry, self.span, self.started, error)
    }

    /// [`ActiveDecode::close`] for a decode already taken apart (the End
    /// path consumes the decoder before the span can be closed).
    fn close_parts(
        telemetry: &Telemetry,
        span: Option<SpanId>,
        started: Instant,
        error: bool,
    ) -> Duration {
        let elapsed = telemetry
            .span_end_with_detail(span, error.then_some("error"))
            .unwrap_or_else(|| started.elapsed());
        telemetry.observe("ingest_decode_seconds", &[], elapsed);
        elapsed
    }
}

/// Configuration of one pump run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The shedding watermarks.
    pub shedding: SheddingPolicy,
    /// The tenant submitted jobs are attributed to (fair-share weight and
    /// quota come from the service's [`service::AdmissionConfig`]).
    pub tenant: TenantId,
    /// The admission class of submitted jobs.  Defaults to
    /// [`JobClass::Bulk`]: streaming arrivals are degradable *and*
    /// sheddable, so the service-side ladder treats them exactly as the
    /// pump's own watermarks do.
    pub class: JobClass,
    /// Route of submitted jobs (pinned lane or [`Route::Auto`]).
    pub route: Route,
    /// Priority of submitted jobs (downgraded to [`Priority::Low`] past the
    /// soft watermark).
    pub priority: Priority,
    /// Shard count of submitted jobs.
    pub shards: usize,
    /// Pipeline configuration of submitted jobs.
    pub pct: PctConfig,
    /// Optional per-job deadline.
    pub timeout: Option<Duration>,
    /// Byte bound of the content-addressed store.
    pub store_capacity_bytes: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            shedding: SheddingPolicy::unbounded(),
            tenant: TenantId::default(),
            class: JobClass::Bulk,
            route: Route::Auto,
            priority: Priority::Normal,
            shards: 4,
            pct: PctConfig::paper(),
            timeout: None,
            store_capacity_bytes: 256 << 20,
        }
    }
}

/// One admitted arrival, resolved after its job reached a terminal state.
#[derive(Debug)]
pub struct IngestedJob {
    /// Name of the source that delivered the cube.
    pub source: String,
    /// The arrival's tag (file name, synthetic label).
    pub tag: String,
    /// The store-resident cube the job fused (shared storage — equal
    /// content means `Arc`-equal cubes).
    pub cube: Arc<HyperCube>,
    /// The effective priority it was submitted at.
    pub priority: Priority,
    /// The job's typed terminal outcome.
    pub outcome: JobOutcome,
}

/// One shed arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedCube {
    /// Name of the source that delivered the cube.
    pub source: String,
    /// The arrival's tag.
    pub tag: String,
    /// Why it was shed.
    pub reason: ShedReason,
    /// Its payload size.
    pub bytes: usize,
    /// The machine-readable back-off hint the admission plane attached.
    pub retry_after: RetryAfter,
}

/// Everything one pump run produced.
#[derive(Debug)]
pub struct IngestRun {
    /// Counters per source plus aggregate store/job/ledger accounting.
    pub report: IngestReport,
    /// Every admitted arrival with its terminal outcome, in admission
    /// order.
    pub jobs: Vec<IngestedJob>,
    /// Every shed arrival, in arrival order.
    pub shed: Vec<ShedCube>,
    /// The store as the run left it (resident cubes stay shared).
    pub store: CubeStore,
}

/// Drives cube sources through decode, dedup and admission into a running
/// [`FusionService`].
///
/// ```no_run
/// use ingest::{DirectorySource, IngestConfig, IngestPump};
/// use service::{FusionService, ServiceConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = FusionService::start(ServiceConfig::builder().build()?)?;
/// let pump = IngestPump::new(&service, IngestConfig::default());
/// let run = pump.run(vec![Box::new(DirectorySource::new("/data/cubes"))])?;
/// println!("{}", run.report.render());
/// service.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct IngestPump<'a> {
    service: &'a FusionService,
    events: EventSubscriber,
    config: IngestConfig,
    store: CubeStore,
    /// The service's telemetry handle: decode spans and ingest counters
    /// land in the same registry/recorder as the scheduler's (disabled
    /// together with the service's).
    telemetry: Telemetry,
}

impl<'a> IngestPump<'a> {
    /// Creates a pump over a running service.  The event subscription is
    /// opened here, before any submission, so no admission or terminal
    /// event can be missed.
    pub fn new(service: &'a FusionService, config: IngestConfig) -> Self {
        let events = service.subscribe();
        let store = CubeStore::new(config.store_capacity_bytes);
        let telemetry = service.telemetry().clone();
        Self {
            service,
            events,
            config,
            store,
            telemetry,
        }
    }

    /// Ingests every source to exhaustion (sequentially, in order — the
    /// deterministic arrival schedule), waits for every admitted job's
    /// terminal outcome, and returns the full accounting.
    pub fn run(mut self, mut sources: Vec<Box<dyn CubeSource>>) -> Result<IngestRun> {
        let ledger = CloneLedger::snapshot();
        let mut report = IngestReport {
            tenant: self.config.tenant,
            started_at: Some(SystemTime::now()),
            ..IngestReport::default()
        };
        let ingest_span = self.telemetry.span_start("ingest", None, None, "");
        let mut gauge = PressureGauge::new();
        let mut pending: Vec<(String, String, Arc<HyperCube>, Priority, JobHandle)> = Vec::new();
        let mut shed = Vec::new();

        for source in sources.iter_mut() {
            let name = source.name().to_string();
            report.sources.entry(name.clone()).or_default();
            let mut decoder: Option<ActiveDecode> = None;
            while let Some(event) = source.next_event() {
                let counters = report.sources.get_mut(&name).expect("entry inserted");
                match event {
                    Err(_) => {
                        counters.decode_errors += 1;
                        self.telemetry.count("ingest_decode_errors_total", &[]);
                        if let Some(active) = decoder.take() {
                            report.decode_time += active.close(&self.telemetry, true);
                        }
                    }
                    Ok(SourceEvent::Begin { tag, header }) => {
                        // A Begin while a decode is active means the source
                        // never delivered the previous cube's End: the
                        // partial decode is abandoned and must be accounted,
                        // or seen/admitted/shed/error stops adding up.
                        if let Some(active) = decoder.take() {
                            counters.decode_errors += 1;
                            self.telemetry.count("ingest_decode_errors_total", &[]);
                            report.decode_time += active.close(&self.telemetry, true);
                        }
                        counters.cubes_seen += 1;
                        self.telemetry.count("ingest_cubes_seen_total", &[]);
                        decoder = Some(ActiveDecode {
                            span: self.telemetry.span_start("decode", ingest_span, None, &tag),
                            started: Instant::now(),
                            tag,
                            decoder: StreamDecoder::new(header),
                        });
                    }
                    Ok(SourceEvent::Chunk(bytes)) => {
                        if let Some(active) = decoder.as_mut() {
                            counters.chunks += 1;
                            if active.decoder.push(&bytes).is_err() {
                                counters.decode_errors += 1;
                                self.telemetry.count("ingest_decode_errors_total", &[]);
                                if let Some(active) = decoder.take() {
                                    report.decode_time += active.close(&self.telemetry, true);
                                }
                            }
                        }
                    }
                    Ok(SourceEvent::End) => {
                        let Some(active) = decoder.take() else {
                            continue;
                        };
                        counters.bytes_assembled += (active.decoder.samples_filled() * 8) as u64;
                        let ActiveDecode {
                            tag,
                            decoder: d,
                            span,
                            started,
                        } = active;
                        let result = d.finish();
                        report.decode_time += ActiveDecode::close_parts(
                            &self.telemetry,
                            span,
                            started,
                            result.is_err(),
                        );
                        let cube = match result {
                            Ok(cube) => cube,
                            Err(_) => {
                                counters.decode_errors += 1;
                                self.telemetry.count("ingest_decode_errors_total", &[]);
                                continue;
                            }
                        };
                        // Dedup before admission: a repeated scene becomes
                        // an Arc bump whether or not it is then shed.
                        let (cube, hit) = self.store.intern(cube);
                        if hit {
                            counters.store_hits += 1;
                            self.telemetry.count("ingest_store_hits_total", &[]);
                        } else {
                            counters.store_misses += 1;
                            self.telemetry.count("ingest_store_misses_total", &[]);
                        }
                        self.admit(
                            &name,
                            tag,
                            cube,
                            &mut gauge,
                            &mut report,
                            &mut pending,
                            &mut shed,
                        )?;
                    }
                }
            }
        }

        // Resolve every admitted job's terminal outcome.
        let mut jobs = Vec::with_capacity(pending.len());
        for (source, tag, cube, priority, mut handle) in pending {
            let outcome = handle.wait()?;
            match outcome.status() {
                JobStatus::Completed => report.jobs_completed += 1,
                JobStatus::Failed => report.jobs_failed += 1,
                JobStatus::Cancelled => report.jobs_cancelled += 1,
                JobStatus::TimedOut => report.jobs_timed_out += 1,
                JobStatus::Queued | JobStatus::Running => unreachable!("wait is terminal"),
            }
            jobs.push(IngestedJob {
                source,
                tag,
                cube,
                priority,
                outcome,
            });
        }

        report.store_len = self.store.len();
        report.store_resident_bytes = self.store.resident_bytes();
        report.store_evictions = self.store.evictions();
        report.bytes_cloned = ledger.delta();
        self.telemetry.span_end(ingest_span);
        report.finished_at = Some(SystemTime::now());
        Ok(IngestRun {
            report,
            jobs,
            shed,
            store: self.store,
        })
    }

    /// Applies the admission-plane decision for one decoded arrival and
    /// submits it if admitted.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        source: &str,
        tag: String,
        cube: Arc<HyperCube>,
        gauge: &mut PressureGauge,
        report: &mut IngestReport,
        pending: &mut Vec<(String, String, Arc<HyperCube>, Priority, JobHandle)>,
        shed: &mut Vec<ShedCube>,
    ) -> Result<()> {
        // Fold in everything the service reported since the last arrival.
        while let Some(event) = self.events.try_next() {
            gauge.observe(&event);
        }
        let counters = report.sources.get_mut(source).expect("entry inserted");
        let plane = self.config.shedding.plane();
        let bytes = cube.byte_size();
        let downgraded = match plane.decide(gauge.load(), self.config.class) {
            PressureDecision::Shed { reason } => {
                counters.record_shed(reason);
                self.telemetry
                    .count("ingest_cubes_shed_total", &[("reason", reason.label())]);
                shed.push(ShedCube {
                    source: source.to_string(),
                    tag,
                    reason,
                    bytes,
                    retry_after: plane.retry_hint(),
                });
                return Ok(());
            }
            PressureDecision::Admit { downgrade } => downgrade,
        };
        let priority = if downgraded {
            Priority::Low
        } else {
            self.config.priority
        };
        let mut builder = JobSpec::builder(JobCubeSource::InMemory(Arc::clone(&cube)))
            .route(self.config.route)
            .priority(priority)
            .tenant(self.config.tenant)
            .class(self.config.class)
            .shards(self.config.shards)
            .config(self.config.pct);
        if let Some(timeout) = self.config.timeout {
            builder = builder.timeout(timeout);
        }
        let spec = builder.build().map_err(ServiceError::from)?;
        // The service's own admission plane may still refuse: saturation,
        // a service-side watermark, or the ingest tenant's quota.  Each
        // refusal carries a typed reason and retry hint the shed
        // accounting preserves.
        let refusal = match self.service.try_submit(spec) {
            Ok(handle) => {
                counters.cubes_admitted += 1;
                self.telemetry.count("ingest_cubes_admitted_total", &[]);
                if downgraded {
                    counters.cubes_downgraded += 1;
                }
                gauge.on_submit(handle.id(), bytes);
                pending.push((source.to_string(), tag, cube, priority, handle));
                return Ok(());
            }
            Err(ServiceError::Saturated { retry_after }) => (ShedReason::Saturated, retry_after),
            Err(ServiceError::Shed {
                reason,
                retry_after,
            }) => (reason, retry_after),
            Err(ServiceError::QuotaExceeded { retry_after, .. }) => {
                (ShedReason::Quota, retry_after)
            }
            Err(e) => return Err(e.into()),
        };
        let (reason, retry_after) = refusal;
        counters.record_shed(reason);
        self.telemetry
            .count("ingest_cubes_shed_total", &[("reason", reason.label())]);
        shed.push(ShedCube {
            source: source.to_string(),
            tag,
            reason,
            bytes,
            retry_after,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use hsi::io::Interleave;
    use hsi::{CubeDims, SceneConfig};
    use pct::SequentialPct;
    use service::{BackendKind, ServiceConfig};

    fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, bands);
        config
    }

    fn small_service() -> FusionService {
        FusionService::start(
            ServiceConfig::builder()
                .standard_workers(2)
                .replica_groups(0)
                .shared_memory_executors(1)
                .queue_capacity(16)
                .max_in_flight(4)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn pump_ingests_dedups_and_fuses_byte_identical() {
        let service = small_service();
        // Scene 50 arrives twice, in *different* interleaves: content dedup.
        let arrivals = vec![
            ("a".into(), scene(50, 12, 6), Interleave::Bsq),
            ("b".into(), scene(51, 12, 6), Interleave::Bil),
            ("a-again".into(), scene(50, 12, 6), Interleave::Bip),
        ];
        let source = SyntheticSource::new("synth", arrivals, 97);
        let pump = IngestPump::new(&service, IngestConfig::default());
        let run = pump.run(vec![Box::new(source)]).unwrap();
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_seen, 3);
        assert_eq!(totals.cubes_admitted, 3);
        assert_eq!(totals.cubes_shed(), 0);
        assert_eq!(totals.store_misses, 2);
        assert_eq!(totals.store_hits, 1, "repeated scene deduplicated");
        assert_eq!(run.report.jobs_completed, 3);
        assert_eq!(run.store.len(), 2);

        // The duplicate fused the *same shared storage* as the original.
        assert!(Arc::ptr_eq(&run.jobs[0].cube, &run.jobs[2].cube));
        for job in &run.jobs {
            let reference = SequentialPct::new(PctConfig::paper())
                .run(&job.cube)
                .unwrap();
            assert_eq!(
                job.outcome.output().expect("completed"),
                &reference,
                "{} diverged from sequential",
                job.tag
            );
        }
    }

    #[test]
    fn in_flight_bytes_watermark_sheds_deterministically() {
        // One standard worker, one job in flight at a time: the big blocker
        // occupies the only slot for far longer than the pump needs to
        // process the burst, so the accounting below is deterministic.
        let service = FusionService::start(
            ServiceConfig::builder()
                .standard_workers(1)
                .replica_groups(0)
                .shared_memory_executors(0)
                .queue_capacity(16)
                .max_in_flight(1)
                .build()
                .unwrap(),
        )
        .unwrap();
        let blocker = scene(60, 64, 32);
        let small = scene(61, 10, 5);
        let blocker_bytes = blocker.dims.byte_size();
        let small_bytes = small.dims.byte_size();
        let mut arrivals = vec![("blocker".into(), blocker, Interleave::Bip)];
        for i in 0..5u64 {
            arrivals.push((format!("burst-{i}"), scene(70 + i, 10, 5), Interleave::Bil));
        }
        let source = SyntheticSource::new("burst", arrivals, 4096);
        // Watermark admits the blocker plus exactly two burst cubes.
        let config = IngestConfig {
            shedding: SheddingPolicy::unbounded()
                .with_max_in_flight_bytes(blocker_bytes + 2 * small_bytes),
            route: Route::Pinned(BackendKind::Standard),
            shards: 2,
            ..IngestConfig::default()
        };
        let run = IngestPump::new(&service, config)
            .run(vec![Box::new(source)])
            .unwrap();
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_seen, 6);
        assert_eq!(totals.cubes_admitted, 3, "blocker + two burst cubes");
        assert_eq!(totals.shed_in_flight_bytes, 3);
        assert_eq!(
            run.shed.iter().map(|s| s.tag.as_str()).collect::<Vec<_>>(),
            vec!["burst-2", "burst-3", "burst-4"],
            "shedding hits the tail of the burst, in order"
        );
        assert_eq!(run.report.jobs_completed, 3, "admitted cubes still fuse");
    }

    #[test]
    fn downgrade_watermark_lowers_priority_without_shedding() {
        let service = FusionService::start(
            ServiceConfig::builder()
                .standard_workers(1)
                .replica_groups(0)
                .shared_memory_executors(0)
                .queue_capacity(16)
                .max_in_flight(1)
                .build()
                .unwrap(),
        )
        .unwrap();
        // A blocker submitted *outside* the pump occupies the only in-flight
        // slot before ingestion starts, so every pump submission stays
        // queued deterministically (the pump only tracks its own jobs).
        let blocker_cube = Arc::new(
            hsi::SceneGenerator::new(scene(80, 64, 32))
                .unwrap()
                .generate(),
        );
        let mut blocker = service
            .submit(
                JobSpec::builder(JobCubeSource::InMemory(blocker_cube))
                    .route(Route::Pinned(BackendKind::Standard))
                    .shards(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        while blocker.status().unwrap() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(2));
        }

        let arrivals = (0..4u64)
            .map(|i| (format!("late-{i}"), scene(90 + i, 10, 5), Interleave::Bsq))
            .collect();
        let source = SyntheticSource::new("soft", arrivals, 8192);
        // Soft watermark only: once two ingest jobs sit in the queue,
        // later arrivals are admitted at Low priority.
        let config = IngestConfig {
            shedding: SheddingPolicy::unbounded().with_downgrade_queue_depth(2),
            route: Route::Pinned(BackendKind::Standard),
            priority: Priority::High,
            shards: 2,
            ..IngestConfig::default()
        };
        let run = IngestPump::new(&service, config)
            .run(vec![Box::new(source)])
            .unwrap();
        assert!(matches!(blocker.wait().unwrap(), JobOutcome::Completed(_)));
        service.shutdown();

        let totals = run.report.totals();
        assert_eq!(totals.cubes_admitted, 4, "soft watermark never sheds");
        assert_eq!(totals.cubes_downgraded, 2, "arrivals at queue depth >= 2");
        assert_eq!(run.jobs[0].priority, Priority::High);
        assert_eq!(run.jobs[1].priority, Priority::High);
        assert_eq!(run.jobs[2].priority, Priority::Low);
        assert_eq!(run.jobs[3].priority, Priority::Low);
        assert_eq!(run.report.jobs_completed, 4);
    }
}
