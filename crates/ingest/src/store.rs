//! The content-addressed cube store: repeated scenes become `Arc` bumps.
//!
//! Ingestion often sees the same scene more than once — re-submitted
//! acquisitions, the same product exported in different interleaves, a
//! directory replayed after a crash.  The store addresses cubes by a hash
//! of their *content* (dimensions + every sample's bit pattern, i.e. the
//! canonical in-memory BIP form — the file interleave is an encoding
//! detail, so the same scene shipped as BIL and BSQ deduplicates), keeps
//! them behind `Arc`s with LRU eviction bounded in bytes, and counts hits
//! and misses so dedup is a measured number in the [`crate::IngestReport`].

use hsi::HyperCube;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// 64-bit FNV-1a over the cube's dimensions and sample bit patterns.
/// Stable across runs and platforms (no per-process hashing seed), which
/// keeps store behaviour — and therefore the bench counters — replayable.
pub fn content_hash(cube: &HyperCube) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let dims = cube.dims();
    eat(&(dims.width as u64).to_le_bytes());
    eat(&(dims.height as u64).to_le_bytes());
    eat(&(dims.bands as u64).to_le_bytes());
    for &sample in cube.samples() {
        eat(&sample.to_le_bytes());
    }
    hash
}

/// A content-addressed, LRU-evicted cache of ingested cubes.
#[derive(Debug)]
pub struct CubeStore {
    capacity_bytes: usize,
    resident: HashMap<u64, Arc<HyperCube>>,
    /// Least-recently-used order, front = coldest.
    lru: VecDeque<u64>,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

impl CubeStore {
    /// Creates a store holding at most `capacity_bytes` of cube payload.
    /// A single cube larger than the capacity is still admitted (everything
    /// else is evicted first); the bound is honoured again as soon as it is
    /// evicted or joined by another cube.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            resident: HashMap::new(),
            lru: VecDeque::new(),
            resident_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Interns a freshly decoded cube: if a cube with identical content is
    /// resident, the stored `Arc` is returned (a hit — the duplicate is
    /// dropped and downstream holds the shared storage); otherwise the cube
    /// is inserted (a miss), evicting cold entries to stay within capacity.
    /// Returns the canonical `Arc` and whether it was a hit.
    ///
    /// A hit is only declared after the resident cube's content is compared
    /// equal: a 64-bit hash collision (crafted or birthday-paradox) must
    /// never substitute a different image.  A verified collision is counted
    /// ([`CubeStore::collisions`]) and the new cube passes through uncached.
    pub fn intern(&mut self, cube: Arc<HyperCube>) -> (Arc<HyperCube>, bool) {
        let hash = content_hash(&cube);
        if let Some(stored) = self.resident.get(&hash) {
            if **stored == *cube {
                self.hits += 1;
                let stored = Arc::clone(stored);
                self.touch(hash);
                return (stored, true);
            }
            // Same hash, different content: the slot stays with the
            // resident cube; the arrival is served uncached.
            self.collisions += 1;
            self.misses += 1;
            return (cube, false);
        }
        self.misses += 1;
        self.resident_bytes += cube.byte_size();
        self.resident.insert(hash, Arc::clone(&cube));
        self.lru.push_back(hash);
        self.evict_to_capacity(hash);
        (cube, false)
    }

    /// Moves `hash` to the hot end of the LRU order.
    fn touch(&mut self, hash: u64) {
        if let Some(pos) = self.lru.iter().position(|&h| h == hash) {
            self.lru.remove(pos);
            self.lru.push_back(hash);
        }
    }

    /// Evicts cold entries (never `keep`) until the byte bound holds.
    fn evict_to_capacity(&mut self, keep: u64) {
        while self.resident_bytes > self.capacity_bytes && self.lru.len() > 1 {
            let Some(pos) = self.lru.iter().position(|&h| h != keep) else {
                break;
            };
            let cold = self.lru.remove(pos).expect("position is in bounds");
            if let Some(evicted) = self.resident.remove(&cold) {
                self.resident_bytes -= evicted.byte_size();
                self.evictions += 1;
            }
        }
    }

    /// Whether a cube with this content hash is resident.
    pub fn contains(&self, hash: u64) -> bool {
        self.resident.contains_key(&hash)
    }

    /// Number of resident cubes.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Payload bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured byte bound.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Interns that found identical content resident.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Interns that inserted new content.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to hold the byte bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hash collisions caught by the content comparison (the arrival was
    /// served uncached instead of being substituted).
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::{CubeDims, SceneConfig, SceneGenerator};

    fn cube(seed: u64, side: usize) -> Arc<HyperCube> {
        let mut config = SceneConfig::small(seed);
        config.dims = CubeDims::new(side, side, 4);
        Arc::new(SceneGenerator::new(config).unwrap().generate())
    }

    #[test]
    fn identical_content_dedups_into_an_arc_bump() {
        let mut store = CubeStore::new(1 << 20);
        let first = cube(1, 8);
        // A *different allocation* with identical content: dedup must be by
        // content, not pointer.
        let second = Arc::new((*cube(1, 8)).clone());
        assert!(!Arc::ptr_eq(&first, &second));

        let (stored_a, hit_a) = store.intern(Arc::clone(&first));
        let (stored_b, hit_b) = store.intern(second);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&stored_a, &stored_b), "hit returns shared Arc");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.resident_bytes(), first.byte_size());
    }

    #[test]
    fn distinct_content_is_kept_apart() {
        let mut store = CubeStore::new(1 << 20);
        let (_, hit_a) = store.intern(cube(1, 8));
        let (_, hit_b) = store.intern(cube(2, 8));
        assert!(!hit_a && !hit_b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.misses(), 2);
    }

    #[test]
    fn lru_eviction_holds_the_byte_bound_and_prefers_cold_entries() {
        let one = cube(1, 8);
        let size = one.byte_size();
        let mut store = CubeStore::new(2 * size);
        store.intern(one);
        store.intern(cube(2, 8));
        // Touch cube 1 so cube 2 is the cold one.
        let (_, hit) = store.intern(cube(1, 8));
        assert!(hit);
        store.intern(cube(3, 8));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.resident_bytes() <= store.capacity_bytes());
        // Cube 1 (hot) survived; cube 2 (cold) was evicted.
        assert!(store.contains(content_hash(&cube(1, 8))));
        assert!(!store.contains(content_hash(&cube(2, 8))));
    }

    #[test]
    fn oversized_cube_is_admitted_alone() {
        let big = cube(9, 16);
        let mut store = CubeStore::new(big.byte_size() / 2);
        store.intern(cube(1, 8));
        let (stored, hit) = store.intern(Arc::clone(&big));
        assert!(!hit);
        assert!(Arc::ptr_eq(&stored, &big));
        assert_eq!(store.len(), 1, "everything else was evicted");
        // The next intern evicts the oversized resident again.
        store.intern(cube(2, 8));
        assert!(store.resident_bytes() <= store.capacity_bytes());
    }

    #[test]
    fn hash_collisions_are_detected_and_never_substitute_content() {
        // Forge a collision: plant cube A under cube B's hash (white-box —
        // real 64-bit collisions are impractical to construct here).
        let a = cube(1, 8);
        let b = cube(2, 8);
        let b_hash = content_hash(&b);
        let mut store = CubeStore::new(1 << 20);
        store.resident.insert(b_hash, Arc::clone(&a));
        store.lru.push_back(b_hash);
        store.resident_bytes += a.byte_size();

        let (returned, hit) = store.intern(Arc::clone(&b));
        assert!(!hit, "a collision must not be declared a hit");
        assert!(Arc::ptr_eq(&returned, &b), "the arrival passes through");
        assert_eq!(store.collisions(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), 0);
        // The resident slot still holds cube A.
        assert!(Arc::ptr_eq(store.resident.get(&b_hash).unwrap(), &a));
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = cube(4, 8);
        assert_eq!(content_hash(&a), content_hash(&a.clone()));
        assert_ne!(content_hash(&a), content_hash(&cube(5, 8)));
        // Same samples, different dims hash differently.
        let flat = HyperCube::from_samples(
            CubeDims::new(a.pixels() * a.bands(), 1, 1),
            a.samples().to_vec(),
        )
        .unwrap();
        assert_ne!(content_hash(&a), content_hash(&flat));
    }
}
