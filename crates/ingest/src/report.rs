//! The [`IngestReport`]: per-source and aggregate accounting of one pump
//! run — arrivals, chunks, assembled bytes, store dedup, shedding
//! decisions, and job outcomes.

use service::TenantId;
use std::collections::BTreeMap;
use std::time::{Duration, SystemTime};

// The shed taxonomy is the admission plane's: one enum shared by the
// service's typed errors/events and the pump's counters, so a
// `ServiceError::Shed` maps onto an ingest counter without translation.
pub use service::ShedReason;

/// Counters for one source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounters {
    /// Arrivals whose header parsed (complete or not).
    pub cubes_seen: u64,
    /// Arrivals submitted to the service.
    pub cubes_admitted: u64,
    /// Of the admitted, arrivals down-prioritized by the soft watermark.
    pub cubes_downgraded: u64,
    /// Arrivals shed at the queue-depth watermark.
    pub shed_queue_depth: u64,
    /// Arrivals shed at the in-flight-bytes watermark.
    pub shed_in_flight_bytes: u64,
    /// Arrivals bounced off the ingest tenant's queued-job quota.
    pub shed_quota: u64,
    /// Arrivals shed by service admission backpressure.
    pub shed_saturated: u64,
    /// Payload chunks decoded.
    pub chunks: u64,
    /// Payload bytes assembled in place into cube storage.
    pub bytes_assembled: u64,
    /// Arrivals abandoned on a malformed header, truncated payload or I/O
    /// error.
    pub decode_errors: u64,
    /// Arrivals deduplicated against store-resident content.
    pub store_hits: u64,
    /// Arrivals that inserted new content into the store.
    pub store_misses: u64,
}

impl SourceCounters {
    /// Arrivals shed for any reason.
    pub fn cubes_shed(&self) -> u64 {
        self.shed_queue_depth + self.shed_in_flight_bytes + self.shed_quota + self.shed_saturated
    }

    /// Records a shed under its reason.
    pub(crate) fn record_shed(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::QueueDepth => self.shed_queue_depth += 1,
            ShedReason::InFlightBytes => self.shed_in_flight_bytes += 1,
            ShedReason::Quota => self.shed_quota += 1,
            ShedReason::Saturated => self.shed_saturated += 1,
        }
    }

    /// Element-wise sum, used for the aggregate row.
    fn add(&mut self, other: &SourceCounters) {
        self.cubes_seen += other.cubes_seen;
        self.cubes_admitted += other.cubes_admitted;
        self.cubes_downgraded += other.cubes_downgraded;
        self.shed_queue_depth += other.shed_queue_depth;
        self.shed_in_flight_bytes += other.shed_in_flight_bytes;
        self.shed_quota += other.shed_quota;
        self.shed_saturated += other.shed_saturated;
        self.chunks += other.chunks;
        self.bytes_assembled += other.bytes_assembled;
        self.decode_errors += other.decode_errors;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
    }
}

/// Aggregate accounting of one [`crate::IngestPump`] run.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// The tenant the pump submitted on behalf of.
    pub tenant: TenantId,
    /// Per-source counters, keyed by source name.
    pub sources: BTreeMap<String, SourceCounters>,
    /// Cubes resident in the store at the end of the run.
    pub store_len: usize,
    /// Payload bytes resident in the store at the end of the run.
    pub store_resident_bytes: usize,
    /// Store entries evicted to hold the byte bound.
    pub store_evictions: u64,
    /// Admitted jobs that completed.
    pub jobs_completed: u64,
    /// Admitted jobs that failed.
    pub jobs_failed: u64,
    /// Admitted jobs that were cancelled.
    pub jobs_cancelled: u64,
    /// Admitted jobs that timed out.
    pub jobs_timed_out: u64,
    /// Sub-cube payload bytes deep-copied during the run (clone-ledger
    /// delta): 0 on the streaming assembly + view message plane.
    pub bytes_cloned: u64,
    /// Wall-clock time the pump run started.
    pub started_at: Option<SystemTime>,
    /// Wall-clock time the pump run finished (every job terminal).
    pub finished_at: Option<SystemTime>,
    /// Total Begin-to-End wall time spent assembling arrivals — sourced
    /// from telemetry `decode` spans when enabled, from the pump's own
    /// clock otherwise.
    pub decode_time: Duration,
}

impl IngestReport {
    /// The element-wise sum of every source's counters.
    pub fn totals(&self) -> SourceCounters {
        let mut totals = SourceCounters::default();
        for counters in self.sources.values() {
            totals.add(counters);
        }
        totals
    }

    /// A human-readable multi-line rendering for examples and logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("ingest report (tenant {})\n", self.tenant.label()));
        for (name, c) in &self.sources {
            out.push_str(&format!(
                "  source {name}: {} seen, {} admitted ({} downgraded), {} shed \
                 ({} queue-depth, {} in-flight-bytes, {} quota, {} saturated), {} decode errors\n",
                c.cubes_seen,
                c.cubes_admitted,
                c.cubes_downgraded,
                c.cubes_shed(),
                c.shed_queue_depth,
                c.shed_in_flight_bytes,
                c.shed_quota,
                c.shed_saturated,
                c.decode_errors,
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "  decode: {} chunks, {} bytes assembled in place, {} bytes cloned\n",
            t.chunks, t.bytes_assembled, self.bytes_cloned,
        ));
        out.push_str(&format!(
            "  store:  {} hits, {} misses, {} evictions; {} cubes / {} bytes resident\n",
            t.store_hits,
            t.store_misses,
            self.store_evictions,
            self.store_len,
            self.store_resident_bytes,
        ));
        out.push_str(&format!(
            "  jobs:   {} completed, {} failed, {} cancelled, {} timed out\n",
            self.jobs_completed, self.jobs_failed, self.jobs_cancelled, self.jobs_timed_out,
        ));
        if let (Some(started), Some(finished)) = (self.started_at, self.finished_at) {
            let wall = finished
                .duration_since(started)
                .unwrap_or(Duration::ZERO)
                .as_secs_f64();
            out.push_str(&format!(
                "  time:   {:.3} s wall ({:.3} s decoding)\n",
                wall,
                self.decode_time.as_secs_f64(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_sources_and_render_mentions_them() {
        let mut report = IngestReport::default();
        let a = report.sources.entry("a".into()).or_default();
        a.cubes_seen = 3;
        a.cubes_admitted = 2;
        a.record_shed(ShedReason::QueueDepth);
        a.store_misses = 2;
        let b = report.sources.entry("b".into()).or_default();
        b.cubes_seen = 2;
        b.cubes_admitted = 1;
        b.record_shed(ShedReason::Saturated);
        b.store_hits = 1;

        let totals = report.totals();
        assert_eq!(totals.cubes_seen, 5);
        assert_eq!(totals.cubes_admitted, 3);
        assert_eq!(totals.cubes_shed(), 2);
        assert_eq!(totals.store_hits, 1);
        assert_eq!(totals.store_misses, 2);

        let text = report.render();
        assert!(text.contains("source a: 3 seen, 2 admitted"));
        assert!(text.contains("1 saturated"));
        assert!(text.contains("store:  1 hits, 2 misses"));
    }

    #[test]
    fn wall_clock_and_decode_time_render() {
        let mut report = IngestReport::default();
        assert!(
            !report.render().contains("s wall"),
            "no time line without both wall-clock stamps"
        );
        report.started_at = Some(SystemTime::UNIX_EPOCH + Duration::from_secs(10));
        report.finished_at = Some(SystemTime::UNIX_EPOCH + Duration::from_millis(12_500));
        report.decode_time = Duration::from_millis(750);
        let text = report.render();
        assert!(text.contains("time:   2.500 s wall (0.750 s decoding)"));
    }

    #[test]
    fn shed_reasons_label_and_count() {
        assert_eq!(ShedReason::QueueDepth.label(), "queue-depth");
        assert_eq!(ShedReason::InFlightBytes.label(), "in-flight-bytes");
        assert_eq!(ShedReason::Quota.label(), "quota");
        assert_eq!(ShedReason::Saturated.label(), "saturated");
        let mut c = SourceCounters::default();
        c.record_shed(ShedReason::InFlightBytes);
        c.record_shed(ShedReason::InFlightBytes);
        c.record_shed(ShedReason::Quota);
        assert_eq!(c.cubes_shed(), 3);
        assert_eq!(c.shed_in_flight_bytes, 2);
        assert_eq!(c.shed_quota, 1);
    }
}
