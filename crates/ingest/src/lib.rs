//! Streaming cube ingestion: the front door between raw sensor bytes and
//! the `fusiond` job plane.
//!
//! Every cube the service fused before this crate existed was synthesized
//! in memory.  Production fusion systems are gated by heterogeneous
//! multi-source ingestion, not by the fusion kernel, so this crate turns
//! the reproduction into an end-to-end service:
//!
//! * [`CubeSource`] — a pull-based stream of cube arrivals.  Real
//!   implementations: [`FileSource`] (one self-describing BSQ/BIL/BIP
//!   `.hsif` file, read in byte chunks), [`DirectorySource`] (replays a
//!   folder of cube files as a deterministic arrival schedule and picks up
//!   files dropped in while it runs), and [`SyntheticSource`] (seeded
//!   scenes encoded and chunked exactly like a file read — the
//!   deterministic source for tests and benches).
//! * [`StreamDecoder`] — assembles arbitrary byte chunks directly into the
//!   final `Arc<HyperCube>` BIP storage: each completed `f64` is scattered
//!   to its in-memory offset as it arrives, so there is **no post-assembly
//!   copy**.  The `hsi` ledger proves it: assembly charges
//!   [`hsi::charge_assembled_bytes`] while [`hsi::CloneLedger::delta`]
//!   stays zero.
//! * [`CubeStore`] — a content-addressed cache (hash of dimensions +
//!   sample bytes → `Arc<HyperCube>`) with LRU eviction and hit/miss
//!   counters: a repeated scene deduplicates into an `Arc` bump before it
//!   ever reaches admission.
//! * [`IngestPump`] — drives sources → decoder → store →
//!   [`service::FusionService::submit`] through the builder/handle API.
//!   Load shedding is the service's admission plane: the
//!   [`SheddingPolicy`] is a thin adapter over
//!   [`service::PressurePolicy`], fed by a [`service::PressureGauge`]
//!   over the [`service::ServiceEvent`] stream — queue-depth and
//!   in-flight-bytes watermarks reject or down-prioritize arrivals
//!   instead of blocking, jobs are attributed to the configured
//!   [`service::TenantId`] as [`service::JobClass::Bulk`], and every
//!   decision (with its [`service::RetryAfter`] hint) is surfaced in the
//!   [`IngestReport`] and per-source counters.
//!
//! Admitted cubes keep the service's determinism contract: each fused
//! output is byte-identical to `pct::SequentialPct` on the same cube.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod pump;
pub mod report;
pub mod source;
pub mod store;

pub use decoder::StreamDecoder;
pub use pump::{IngestConfig, IngestPump, IngestRun, IngestedJob, ShedCube, SheddingPolicy};
pub use report::{IngestReport, ShedReason, SourceCounters};
pub use source::{CubeSource, DirectorySource, FileSource, SourceEvent, SyntheticSource};
pub use store::CubeStore;

/// Errors produced by the ingestion layer.
#[derive(Debug)]
pub enum IngestError {
    /// A cube file header or chunk stream is malformed.
    Malformed(String),
    /// A source ended before delivering the payload its header announced.
    Truncated {
        /// Samples the header promised.
        expected_samples: usize,
        /// Samples actually decoded.
        actual_samples: usize,
    },
    /// A source delivered more payload than its header announced.
    Overflow {
        /// Samples the header promised.
        expected_samples: usize,
    },
    /// An I/O error while reading a source.
    Io(std::io::Error),
    /// An error from the imagery substrate.
    Hsi(hsi::HsiError),
    /// An error from the fusion service.
    Service(service::ServiceError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Malformed(msg) => write!(f, "malformed cube stream: {msg}"),
            IngestError::Truncated {
                expected_samples,
                actual_samples,
            } => write!(
                f,
                "truncated cube stream: {actual_samples} of {expected_samples} samples"
            ),
            IngestError::Overflow { expected_samples } => {
                write!(f, "cube stream overflows its {expected_samples} samples")
            }
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::Hsi(e) => write!(f, "imagery error: {e}"),
            IngestError::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<hsi::HsiError> for IngestError {
    fn from(e: hsi::HsiError) -> Self {
        IngestError::Hsi(e)
    }
}

impl From<service::ServiceError> for IngestError {
    fn from(e: service::ServiceError) -> Self {
        IngestError::Service(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IngestError>;
