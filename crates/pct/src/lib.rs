//! The concurrent spectral-screening PCT algorithm — the paper's primary
//! contribution.
//!
//! The algorithm summarises the information content of a hyper-spectral
//! image into a single colour-composite image using three techniques:
//! spectral-angle classification (screening), principal component
//! transformation, and human-centred colour mapping.  This crate provides
//! four interchangeable implementations of the same eight-step pipeline:
//!
//! | Implementation | Substrate | Purpose |
//! |---|---|---|
//! | [`sequential::SequentialPct`] | single thread | reference semantics; every other implementation is validated against it |
//! | [`shared_memory::SharedMemoryPct`] | rayon thread pool | the paper's shared-memory-multiprocessor result (§4: within ~5 % of linear speed-up) |
//! | [`distributed::DistributedPct`] | `scp` threads (manager/worker) | the paper's message-passing implementation, runnable on a real machine |
//! | [`resilient::ResilientPct`] | `scp` + `resilience` | the intrusion-tolerant variant with replicated workers, attack injection and regeneration |
//! | [`distributed_sim`] | `netsim` discrete-event cluster | regenerates Figures 4 and 5 on a simulated 16-node 100BaseT LAN |
//!
//! The eight steps (paper §3): (1) spectral classification, (2) merge unique
//! sets, (3) mean vector, (4) covariance sums, (5) covariance matrix,
//! (6) transformation matrix, (7) transformation of the data, (8) colour
//! mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod colormap;
pub mod config;
pub mod distributed;
pub mod distributed_sim;
pub mod messages;
pub mod pipeline;
pub mod resilient;
pub mod screening;
pub mod sequential;
pub mod shared_memory;

pub use backend::FusionBackend;
pub use config::{FusionOutput, PctConfig};
pub use distributed::DistributedPct;
pub use resilient::{ResilientManagerState, ResilientPct, ResilientRunReport};
pub use sequential::SequentialPct;
pub use shared_memory::SharedMemoryPct;

/// Errors produced by the fusion pipeline.
#[derive(Debug)]
pub enum PctError {
    /// An error from the linear-algebra substrate.
    Linalg(linalg::LinalgError),
    /// An error from the imagery substrate.
    Hsi(hsi::HsiError),
    /// An error from the message-passing layer.
    Scp(scp::ScpError),
    /// An error from the resiliency layer.
    Resilience(resilience::ResilienceError),
    /// An error from the cluster simulator.
    Sim(netsim::SimError),
    /// The pipeline was configured inconsistently.
    InvalidConfig(String),
    /// A worker failed and could not be recovered.
    WorkerLost(String),
}

impl std::fmt::Display for PctError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PctError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            PctError::Hsi(e) => write!(f, "imagery error: {e}"),
            PctError::Scp(e) => write!(f, "message passing error: {e}"),
            PctError::Resilience(e) => write!(f, "resiliency error: {e}"),
            PctError::Sim(e) => write!(f, "simulator error: {e}"),
            PctError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PctError::WorkerLost(name) => write!(f, "worker '{name}' was lost and not recovered"),
        }
    }
}

impl std::error::Error for PctError {}

impl From<linalg::LinalgError> for PctError {
    fn from(e: linalg::LinalgError) -> Self {
        PctError::Linalg(e)
    }
}
impl From<hsi::HsiError> for PctError {
    fn from(e: hsi::HsiError) -> Self {
        PctError::Hsi(e)
    }
}
impl From<scp::ScpError> for PctError {
    fn from(e: scp::ScpError) -> Self {
        PctError::Scp(e)
    }
}
impl From<resilience::ResilienceError> for PctError {
    fn from(e: resilience::ResilienceError) -> Self {
        PctError::Resilience(e)
    }
}
impl From<netsim::SimError> for PctError {
    fn from(e: netsim::SimError) -> Self {
        PctError::Sim(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PctError>;
