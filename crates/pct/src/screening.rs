//! Step 1 and step 2: spectral-angle screening and unique-set merging.
//!
//! Screening prevents the PCT "from highlighting only the variation that
//! dominates numerically": an object that occurs frequently (trees) would
//! otherwise swamp a rare object (a mechanized vehicle).  Each worker builds
//! a *unique set* — a subset of its pixels such that every pair is separated
//! by at least the threshold spectral angle — and the manager merges the
//! per-worker sets with the same rule.  The covariance of step 4 is then
//! computed over the merged unique set, so each distinct spectral signature
//! contributes roughly equally regardless of how many pixels carry it.
//!
//! ## Hot-path note
//!
//! Screening is O(unique × pixels) and dominates phase 1 at paper scale, so
//! the membership test avoids redundant work: member norms are computed once
//! when a vector joins the set (instead of once per comparison), and the
//! angle test is decided on the cosine directly — `acos` is only evaluated
//! inside a vanishingly narrow band around the threshold where the cheap
//! cosine bound cannot decide.  The result is bit-for-bit identical to the
//! naive `spectral_angle`-per-pair formulation (the fallback band is wide
//! enough to absorb the `acos` rounding error), which the tests below check
//! against a reference implementation.

use linalg::Vector;
use std::f64::consts::FRAC_PI_2;

/// Angular slack (radians) around the screening threshold inside which the
/// cosine bound is considered inconclusive and the exact `acos` comparison
/// runs instead.  `acos` is accurate to a few ulps (≪ 1e-12 rad), so any
/// cosine outside this band decides the comparison exactly as the naive
/// formulation would.
const BOUND_SLACK_RAD: f64 = 1e-9;

/// The spectral-angle acceptance rule with precomputed cosine bounds.
#[derive(Debug, Clone, Copy)]
struct AngleGuard {
    threshold_rad: f64,
    /// `cos(threshold - slack)`: a cosine at or above this is certainly
    /// within the threshold (similar) — no `acos` needed.
    cos_similar: f64,
    /// `cos(threshold + slack)`: a cosine strictly below this is certainly
    /// beyond the threshold (distinct) — no `acos` needed.
    cos_distinct: f64,
}

impl AngleGuard {
    fn new(threshold_rad: f64) -> Self {
        Self {
            threshold_rad,
            cos_similar: (threshold_rad - BOUND_SLACK_RAD).max(0.0).cos(),
            cos_distinct: (threshold_rad + BOUND_SLACK_RAD)
                .min(std::f64::consts::PI)
                .cos(),
        }
    }

    /// Whether `pixel` and `other` are within the threshold angle (i.e.
    /// `other` *screens out* `pixel`).  `pixel_norm` and `other_norm` are the
    /// callers' cached Euclidean norms of the two vectors.
    fn similar(&self, pixel: &Vector, pixel_norm: f64, other: &Vector, other_norm: f64) -> bool {
        let denom = pixel_norm * other_norm;
        if denom == 0.0 {
            // A zero pixel carries no spectral direction: the angle is
            // defined as pi/2 (see `Vector::spectral_angle`).
            return FRAC_PI_2 <= self.threshold_rad;
        }
        let dot = pixel
            .dot(other)
            .expect("pixels in one scene share a band count");
        let cos = (dot / denom).clamp(-1.0, 1.0);
        if cos >= self.cos_similar {
            return true;
        }
        if cos < self.cos_distinct {
            return false;
        }
        cos.acos() <= self.threshold_rad
    }
}

/// An incrementally built unique set with cached member norms.
///
/// This is the screening engine shared by [`screen_pixels`],
/// [`screen_pixels_seeded`] and [`merge_unique_sets`]; the service layer's
/// exact screening chain drives it through [`screen_pixels_seeded`].
#[derive(Debug, Clone)]
pub struct UniqueSet {
    guard: AngleGuard,
    vectors: Vec<Vector>,
    norms: Vec<f64>,
}

impl UniqueSet {
    /// Creates an empty unique set for the given screening threshold.
    pub fn new(threshold_rad: f64) -> Self {
        Self {
            guard: AngleGuard::new(threshold_rad),
            vectors: Vec::new(),
            norms: Vec::new(),
        }
    }

    /// Creates a unique set pre-populated with `seed` — vectors that are
    /// already known to satisfy the screening rule (a previously computed
    /// unique set) and are therefore admitted without re-checking.
    pub fn seeded(seed: impl IntoIterator<Item = Vector>, threshold_rad: f64) -> Self {
        let vectors: Vec<Vector> = seed.into_iter().collect();
        let norms = vectors.iter().map(Vector::norm).collect();
        Self {
            guard: AngleGuard::new(threshold_rad),
            vectors,
            norms,
        }
    }

    /// Number of vectors in the set.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The vectors admitted so far, in admission order.
    pub fn vectors(&self) -> &[Vector] {
        &self.vectors
    }

    /// Consumes the set and returns its vectors in admission order.
    pub fn into_vectors(self) -> Vec<Vector> {
        self.vectors
    }

    /// Whether `pixel` is separated from every member by more than the
    /// threshold angle.
    pub fn is_unique(&self, pixel: &Vector) -> bool {
        let norm = pixel.norm();
        !self
            .vectors
            .iter()
            .zip(&self.norms)
            .any(|(other, &other_norm)| self.guard.similar(pixel, norm, other, other_norm))
    }

    /// Admits `pixel` if it is unique against the current members; returns
    /// whether it was admitted.
    pub fn admit(&mut self, pixel: &Vector) -> bool {
        let norm = pixel.norm();
        let screened = self
            .vectors
            .iter()
            .zip(&self.norms)
            .any(|(other, &other_norm)| self.guard.similar(pixel, norm, other, other_norm));
        if screened {
            return false;
        }
        self.vectors.push(pixel.clone());
        self.norms.push(norm);
        true
    }
}

/// Builds the unique set of a collection of pixel vectors using greedy
/// spectral-angle screening (step 1).
///
/// A pixel joins the unique set if its spectral angle to *every* vector
/// already in the set exceeds `threshold_rad`.  With a threshold of zero the
/// screening keeps every pixel (no screening).
pub fn screen_pixels(pixels: &[Vector], threshold_rad: f64) -> Vec<Vector> {
    if threshold_rad <= 0.0 {
        return pixels.to_vec();
    }
    let mut unique = UniqueSet::new(threshold_rad);
    for pixel in pixels {
        unique.admit(pixel);
    }
    unique.into_vectors()
}

/// Greedy screening of `pixels` against an already-accepted `seed` set,
/// returning only the *newly* admitted vectors in admission order.
///
/// This is the exactness primitive of the service layer's screening chain:
/// for any split of a pixel sequence into consecutive parts, folding the
/// parts through seeded screening reproduces [`screen_pixels`] of the whole
/// sequence bit-for-bit —
/// `screen(A ++ B) == screen(A) ++ screen_seeded(screen(A), B)`.
pub fn screen_pixels_seeded(seed: &[Vector], pixels: &[Vector], threshold_rad: f64) -> Vec<Vector> {
    if threshold_rad <= 0.0 {
        return pixels.to_vec();
    }
    let mut unique = UniqueSet::seeded(seed.iter().cloned(), threshold_rad);
    let seeded = unique.len();
    for pixel in pixels {
        unique.admit(pixel);
    }
    let mut vectors = unique.into_vectors();
    vectors.split_off(seeded)
}

/// Whether `pixel` is separated from every member of `unique` by more than
/// `threshold_rad`.
pub fn is_unique_against(pixel: &Vector, unique: &[Vector], threshold_rad: f64) -> bool {
    let guard = AngleGuard::new(threshold_rad);
    let norm = pixel.norm();
    !unique
        .iter()
        .any(|other| guard.similar(pixel, norm, other, other.norm()))
}

/// Merges several per-worker unique sets into one (step 2), applying the same
/// screening rule across sets so signatures found by two different workers
/// are not duplicated.
pub fn merge_unique_sets(sets: Vec<Vec<Vector>>, threshold_rad: f64) -> Vec<Vector> {
    if threshold_rad <= 0.0 {
        return sets.into_iter().flatten().collect();
    }
    let mut merged = UniqueSet::new(threshold_rad);
    for set in sets {
        for pixel in set {
            merged.admit(&pixel);
        }
    }
    merged.into_vectors()
}

/// Summary of a screening pass, reported by the examples and the screening
/// ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningSummary {
    /// Number of pixels examined.
    pub input_pixels: usize,
    /// Number of unique vectors retained.
    pub unique_pixels: usize,
}

impl ScreeningSummary {
    /// Fraction of pixels retained by screening.
    pub fn retention(&self) -> f64 {
        if self.input_pixels == 0 {
            return 0.0;
        }
        self.unique_pixels as f64 / self.input_pixels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f64]) -> Vector {
        Vector::from_vec(data.to_vec())
    }

    /// The naive formulation the optimised path must match bit-for-bit: a
    /// full `spectral_angle` (two norms, dot, `acos`) per comparison.
    fn naive_screen(pixels: &[Vector], threshold_rad: f64) -> Vec<Vector> {
        if threshold_rad <= 0.0 {
            return pixels.to_vec();
        }
        let mut unique: Vec<Vector> = Vec::new();
        for pixel in pixels {
            let distinct = unique
                .iter()
                .all(|u| pixel.spectral_angle(u).unwrap() > threshold_rad);
            if distinct {
                unique.push(pixel.clone());
            }
        }
        unique
    }

    /// A deterministic pseudo-random pixel cloud with clusters, outliers and
    /// degenerate (zero) vectors.
    fn pixel_cloud(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| {
                if i % 47 == 13 {
                    return Vector::zeros(4);
                }
                let a = (i % 23) as f64 * 0.11 + (i as f64) * 1e-4;
                let s = 1.0 + (i % 5) as f64;
                v(&[
                    s * a.cos(),
                    s * a.sin(),
                    s * (a * 1.7).cos(),
                    s * (0.3 + (i % 7) as f64 * 0.01),
                ])
            })
            .collect()
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let pixels = vec![v(&[1.0, 0.0]), v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        assert_eq!(screen_pixels(&pixels, 0.0).len(), 3);
    }

    #[test]
    fn identical_pixels_collapse_to_one() {
        let pixels = vec![v(&[1.0, 2.0, 3.0]); 50];
        let unique = screen_pixels(&pixels, 0.01);
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn orthogonal_pixels_are_all_kept() {
        let pixels = vec![
            v(&[1.0, 0.0, 0.0]),
            v(&[0.0, 1.0, 0.0]),
            v(&[0.0, 0.0, 1.0]),
        ];
        assert_eq!(screen_pixels(&pixels, 0.3).len(), 3);
    }

    #[test]
    fn scaled_copies_are_screened_out() {
        // The spectral angle is scale invariant, so bright and dark pixels of
        // the same material collapse together.
        let pixels = vec![
            v(&[0.2, 0.5, 0.1]),
            v(&[2.0, 5.0, 1.0]),
            v(&[0.02, 0.05, 0.01]),
        ];
        assert_eq!(screen_pixels(&pixels, 0.05).len(), 1);
    }

    #[test]
    fn threshold_controls_set_size_monotonically() {
        // A fan of vectors at 10-degree increments.
        let pixels: Vec<Vector> = (0..9)
            .map(|i| {
                let a = (i as f64) * 10.0_f64.to_radians();
                v(&[a.cos(), a.sin()])
            })
            .collect();
        let tight = screen_pixels(&pixels, 5.0_f64.to_radians()).len();
        let loose = screen_pixels(&pixels, 25.0_f64.to_radians()).len();
        assert!(tight > loose);
        assert_eq!(tight, 9);
        assert_eq!(loose, 3);
    }

    #[test]
    fn rare_signature_survives_screening() {
        // 99 copies of "forest" and one "vehicle": the unique set keeps both,
        // which is the whole point of screening.
        let mut pixels = vec![v(&[0.3, 0.8, 0.5]); 99];
        pixels.push(v(&[0.9, 0.2, 0.4]));
        let unique = screen_pixels(&pixels, 0.05);
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn optimised_screening_matches_naive_reference_exactly() {
        let pixels = pixel_cloud(400);
        for threshold in [
            0.01,
            5.0_f64.to_radians(),
            0.11, // lands exactly on cluster spacing used by pixel_cloud
            FRAC_PI_2,
            2.0,
            std::f64::consts::PI,
        ] {
            let fast = screen_pixels(&pixels, threshold);
            let slow = naive_screen(&pixels, threshold);
            assert_eq!(
                fast, slow,
                "optimised screening diverged at threshold {threshold}"
            );
        }
    }

    #[test]
    fn is_unique_against_matches_set_membership_test() {
        let pixels = pixel_cloud(120);
        let threshold = 0.09;
        let unique = screen_pixels(&pixels, threshold);
        let set = UniqueSet::seeded(unique.iter().cloned(), threshold);
        for p in &pixels {
            assert_eq!(is_unique_against(p, &unique, threshold), set.is_unique(p));
        }
    }

    #[test]
    fn seeded_screening_chain_equals_whole_screening() {
        let pixels = pixel_cloud(300);
        let threshold = 5.0_f64.to_radians();
        let whole = screen_pixels(&pixels, threshold);

        // Fold the same sequence through an arbitrary consecutive split.
        let mut acc: Vec<Vector> = Vec::new();
        for part in pixels.chunks(71) {
            let newly = screen_pixels_seeded(&acc, part, threshold);
            acc.extend(newly);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn seeded_screening_with_zero_threshold_keeps_everything() {
        let seed = vec![v(&[1.0, 0.0])];
        let pixels = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        assert_eq!(screen_pixels_seeded(&seed, &pixels, 0.0).len(), 2);
    }

    #[test]
    fn unique_set_admit_reports_membership() {
        let mut set = UniqueSet::new(0.3);
        assert!(set.is_empty());
        assert!(set.admit(&v(&[1.0, 0.0])));
        assert!(!set.admit(&v(&[1.0, 0.001])));
        assert!(set.admit(&v(&[0.0, 1.0])));
        assert_eq!(set.len(), 2);
        assert!(!set.is_unique(&v(&[0.001, 1.0])));
        assert_eq!(set.vectors().len(), 2);
        assert_eq!(set.clone().into_vectors().len(), 2);
    }

    #[test]
    fn zero_vectors_are_mutually_unique_below_right_angle_threshold() {
        // A zero pixel's angle to anything is pi/2, so with the usual small
        // thresholds every zero pixel is admitted — matching the naive rule.
        let pixels = vec![Vector::zeros(3), Vector::zeros(3), v(&[1.0, 0.0, 0.0])];
        assert_eq!(screen_pixels(&pixels, 0.1).len(), 3);
        // With a threshold at or beyond pi/2 they collapse.
        assert_eq!(screen_pixels(&pixels, FRAC_PI_2).len(), 1);
    }

    #[test]
    fn merge_deduplicates_across_workers() {
        let worker_a = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        let worker_b = vec![v(&[1.0, 0.001]), v(&[1.0, 1.0])];
        let merged = merge_unique_sets(vec![worker_a, worker_b], 0.05);
        // (1,0.001) is a near-duplicate of (1,0) and is dropped.
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_with_zero_threshold_concatenates() {
        let merged = merge_unique_sets(vec![vec![v(&[1.0])], vec![v(&[2.0])]], 0.0);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_of_partitioned_input_matches_whole_input_screening_size() {
        // Screening the whole set and screening per-part then merging need
        // not give identical sets, but the sizes must be close and every kept
        // vector must respect the threshold.
        let pixels: Vec<Vector> = (0..200)
            .map(|i| {
                let a = (i % 37) as f64 * 0.07;
                v(&[a.cos(), a.sin(), (a * 2.0).cos()])
            })
            .collect();
        let threshold = 0.1;
        let whole = screen_pixels(&pixels, threshold);
        let part_a = screen_pixels(&pixels[..100], threshold);
        let part_b = screen_pixels(&pixels[100..], threshold);
        let merged = merge_unique_sets(vec![part_a, part_b], threshold);
        assert_eq!(whole.len(), merged.len());
        for (i, a) in merged.iter().enumerate() {
            for b in merged.iter().skip(i + 1) {
                assert!(a.spectral_angle(b).unwrap() > threshold);
            }
        }
    }

    #[test]
    fn summary_retention() {
        let s = ScreeningSummary {
            input_pixels: 200,
            unique_pixels: 20,
        };
        assert!((s.retention() - 0.1).abs() < 1e-12);
        let empty = ScreeningSummary {
            input_pixels: 0,
            unique_pixels: 0,
        };
        assert_eq!(empty.retention(), 0.0);
    }
}
