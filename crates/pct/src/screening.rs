//! Step 1 and step 2: spectral-angle screening and unique-set merging.
//!
//! Screening prevents the PCT "from highlighting only the variation that
//! dominates numerically": an object that occurs frequently (trees) would
//! otherwise swamp a rare object (a mechanized vehicle).  Each worker builds
//! a *unique set* — a subset of its pixels such that every pair is separated
//! by at least the threshold spectral angle — and the manager merges the
//! per-worker sets with the same rule.  The covariance of step 4 is then
//! computed over the merged unique set, so each distinct spectral signature
//! contributes roughly equally regardless of how many pixels carry it.

use linalg::Vector;

/// Builds the unique set of a collection of pixel vectors using greedy
/// spectral-angle screening (step 1).
///
/// A pixel joins the unique set if its spectral angle to *every* vector
/// already in the set exceeds `threshold_rad`.  With a threshold of zero the
/// screening keeps every pixel (no screening).
pub fn screen_pixels(pixels: &[Vector], threshold_rad: f64) -> Vec<Vector> {
    if threshold_rad <= 0.0 {
        return pixels.to_vec();
    }
    let mut unique: Vec<Vector> = Vec::new();
    for pixel in pixels {
        if is_unique_against(pixel, &unique, threshold_rad) {
            unique.push(pixel.clone());
        }
    }
    unique
}

/// Whether `pixel` is separated from every member of `unique` by more than
/// `threshold_rad`.
pub fn is_unique_against(pixel: &Vector, unique: &[Vector], threshold_rad: f64) -> bool {
    for existing in unique {
        let angle = pixel
            .spectral_angle(existing)
            .expect("pixels in one scene share a band count");
        if angle <= threshold_rad {
            return false;
        }
    }
    true
}

/// Merges several per-worker unique sets into one (step 2), applying the same
/// screening rule across sets so signatures found by two different workers
/// are not duplicated.
pub fn merge_unique_sets(sets: Vec<Vec<Vector>>, threshold_rad: f64) -> Vec<Vector> {
    if threshold_rad <= 0.0 {
        return sets.into_iter().flatten().collect();
    }
    let mut merged: Vec<Vector> = Vec::new();
    for set in sets {
        for pixel in set {
            if is_unique_against(&pixel, &merged, threshold_rad) {
                merged.push(pixel);
            }
        }
    }
    merged
}

/// Summary of a screening pass, reported by the examples and the screening
/// ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningSummary {
    /// Number of pixels examined.
    pub input_pixels: usize,
    /// Number of unique vectors retained.
    pub unique_pixels: usize,
}

impl ScreeningSummary {
    /// Fraction of pixels retained by screening.
    pub fn retention(&self) -> f64 {
        if self.input_pixels == 0 {
            return 0.0;
        }
        self.unique_pixels as f64 / self.input_pixels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f64]) -> Vector {
        Vector::from_vec(data.to_vec())
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let pixels = vec![v(&[1.0, 0.0]), v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        assert_eq!(screen_pixels(&pixels, 0.0).len(), 3);
    }

    #[test]
    fn identical_pixels_collapse_to_one() {
        let pixels = vec![v(&[1.0, 2.0, 3.0]); 50];
        let unique = screen_pixels(&pixels, 0.01);
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn orthogonal_pixels_are_all_kept() {
        let pixels = vec![
            v(&[1.0, 0.0, 0.0]),
            v(&[0.0, 1.0, 0.0]),
            v(&[0.0, 0.0, 1.0]),
        ];
        assert_eq!(screen_pixels(&pixels, 0.3).len(), 3);
    }

    #[test]
    fn scaled_copies_are_screened_out() {
        // The spectral angle is scale invariant, so bright and dark pixels of
        // the same material collapse together.
        let pixels = vec![
            v(&[0.2, 0.5, 0.1]),
            v(&[2.0, 5.0, 1.0]),
            v(&[0.02, 0.05, 0.01]),
        ];
        assert_eq!(screen_pixels(&pixels, 0.05).len(), 1);
    }

    #[test]
    fn threshold_controls_set_size_monotonically() {
        // A fan of vectors at 10-degree increments.
        let pixels: Vec<Vector> = (0..9)
            .map(|i| {
                let a = (i as f64) * 10.0_f64.to_radians();
                v(&[a.cos(), a.sin()])
            })
            .collect();
        let tight = screen_pixels(&pixels, 5.0_f64.to_radians()).len();
        let loose = screen_pixels(&pixels, 25.0_f64.to_radians()).len();
        assert!(tight > loose);
        assert_eq!(tight, 9);
        assert_eq!(loose, 3);
    }

    #[test]
    fn rare_signature_survives_screening() {
        // 99 copies of "forest" and one "vehicle": the unique set keeps both,
        // which is the whole point of screening.
        let mut pixels = vec![v(&[0.3, 0.8, 0.5]); 99];
        pixels.push(v(&[0.9, 0.2, 0.4]));
        let unique = screen_pixels(&pixels, 0.05);
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn merge_deduplicates_across_workers() {
        let worker_a = vec![v(&[1.0, 0.0]), v(&[0.0, 1.0])];
        let worker_b = vec![v(&[1.0, 0.001]), v(&[1.0, 1.0])];
        let merged = merge_unique_sets(vec![worker_a, worker_b], 0.05);
        // (1,0.001) is a near-duplicate of (1,0) and is dropped.
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_with_zero_threshold_concatenates() {
        let merged = merge_unique_sets(vec![vec![v(&[1.0])], vec![v(&[2.0])]], 0.0);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_of_partitioned_input_matches_whole_input_screening_size() {
        // Screening the whole set and screening per-part then merging need
        // not give identical sets, but the sizes must be close and every kept
        // vector must respect the threshold.
        let pixels: Vec<Vector> = (0..200)
            .map(|i| {
                let a = (i % 37) as f64 * 0.07;
                v(&[a.cos(), a.sin(), (a * 2.0).cos()])
            })
            .collect();
        let threshold = 0.1;
        let whole = screen_pixels(&pixels, threshold);
        let part_a = screen_pixels(&pixels[..100], threshold);
        let part_b = screen_pixels(&pixels[100..], threshold);
        let merged = merge_unique_sets(vec![part_a, part_b], threshold);
        assert_eq!(whole.len(), merged.len());
        for (i, a) in merged.iter().enumerate() {
            for b in merged.iter().skip(i + 1) {
                assert!(a.spectral_angle(b).unwrap() > threshold);
            }
        }
    }

    #[test]
    fn summary_retention() {
        let s = ScreeningSummary {
            input_pixels: 200,
            unique_pixels: 20,
        };
        assert!((s.retention() - 0.1).abs() < 1e-12);
        let empty = ScreeningSummary {
            input_pixels: 0,
            unique_pixels: 0,
        };
        assert_eq!(empty.retention(), 0.0);
    }
}
