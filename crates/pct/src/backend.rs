//! The [`FusionBackend`] trait: every pipeline implementation as a reusable
//! engine.
//!
//! The original reproduction exposed each implementation as a one-shot
//! `run` function with its own concrete type.  The service layer (and any
//! future multi-backend router) needs to treat them uniformly: construct an
//! engine once, hand it cubes many times, and pick the engine per request.
//! `FusionBackend` is that common face; it is object safe, so a
//! `Box<dyn FusionBackend>` can sit in a routing table.

use crate::config::FusionOutput;
use crate::distributed::DistributedPct;
use crate::resilient::ResilientPct;
use crate::sequential::SequentialPct;
use crate::shared_memory::SharedMemoryPct;
use crate::Result;
use hsi::HyperCube;
use std::sync::Arc;

/// A reusable fusion engine: one of the interchangeable implementations of
/// the eight-step pipeline, usable many times over many cubes.
pub trait FusionBackend: Send + Sync {
    /// A short human-readable name for reports and routing tables.
    fn label(&self) -> &'static str;

    /// Runs the full pipeline on a borrowed `cube` and returns the fused
    /// output.  Implementations that partition copy the cube once into
    /// shared storage at this boundary; [`FusionBackend::fuse_shared`]
    /// avoids even that.
    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput>;

    /// Runs the full pipeline over shared storage: task payloads are
    /// zero-copy [`hsi::CubeView`] windows of `cube`.
    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.fuse(cube)
    }
}

impl FusionBackend for SequentialPct {
    fn label(&self) -> &'static str {
        "sequential"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }
}

impl FusionBackend for SharedMemoryPct {
    fn label(&self) -> &'static str {
        "shared-memory"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }
}

impl FusionBackend for DistributedPct {
    fn label(&self) -> &'static str {
        "distributed"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }
}

impl FusionBackend for ResilientPct {
    fn label(&self) -> &'static str {
        "resilient"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PctConfig;
    use hsi::{SceneConfig, SceneGenerator};

    #[test]
    fn backends_are_interchangeable_behind_the_trait() {
        let cube = SceneGenerator::new(SceneConfig::small(21))
            .unwrap()
            .generate();
        let backends: Vec<Box<dyn FusionBackend>> = vec![
            Box::new(SequentialPct::new(PctConfig::paper())),
            Box::new(SharedMemoryPct::new(PctConfig::paper())),
            Box::new(DistributedPct::new(PctConfig::paper(), 2)),
            Box::new(ResilientPct::new(PctConfig::paper(), 2, 1)),
        ];
        let reference = backends[0].fuse(&cube).unwrap();
        let mut labels = Vec::new();
        for backend in &backends {
            labels.push(backend.label());
            let out = backend.fuse(&cube).unwrap();
            assert_eq!(out.pixels, reference.pixels);
            let diff = reference.image.mean_abs_diff(&out.image).unwrap();
            assert!(diff < 10.0, "{} diverges: {diff}", backend.label());
        }
        assert_eq!(
            labels,
            vec!["sequential", "shared-memory", "distributed", "resilient"]
        );
    }

    #[test]
    fn fuse_shared_agrees_with_fuse() {
        let cube = Arc::new(
            SceneGenerator::new(SceneConfig::small(22))
                .unwrap()
                .generate(),
        );
        let backends: Vec<Box<dyn FusionBackend>> = vec![
            Box::new(SequentialPct::new(PctConfig::paper())),
            Box::new(SharedMemoryPct::new(PctConfig::paper())),
            Box::new(DistributedPct::new(PctConfig::paper(), 2)),
            Box::new(ResilientPct::new(PctConfig::paper(), 2, 1)),
        ];
        for backend in &backends {
            let borrowed = backend.fuse(&cube).unwrap();
            let shared = backend.fuse_shared(&cube).unwrap();
            assert_eq!(shared.image, borrowed.image, "{}", backend.label());
        }
    }

    #[test]
    fn engines_are_reusable_across_cubes() {
        let backend = SequentialPct::new(PctConfig::paper());
        for seed in [1u64, 2] {
            let cube = SceneGenerator::new(SceneConfig::small(seed))
                .unwrap()
                .generate();
            let a = FusionBackend::fuse(&backend, &cube).unwrap();
            let b = FusionBackend::fuse(&backend, &cube).unwrap();
            assert_eq!(a, b);
        }
    }
}
