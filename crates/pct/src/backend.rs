//! The [`FusionBackend`] trait: every pipeline implementation as a reusable
//! engine.
//!
//! The original reproduction exposed each implementation as a one-shot
//! `run` function with its own concrete type.  The service layer (and any
//! future multi-backend router) needs to treat them uniformly: construct an
//! engine once, hand it cubes many times, and pick the engine per request.
//! `FusionBackend` is that common face; it is object safe, so a
//! `Box<dyn FusionBackend>` can sit in a routing table.

use crate::config::FusionOutput;
use crate::distributed::DistributedPct;
use crate::resilient::ResilientPct;
use crate::sequential::SequentialPct;
use crate::shared_memory::SharedMemoryPct;
use crate::Result;
use hsi::{CubeDims, HyperCube};
use std::sync::Arc;

/// Cost-model unit: one sample (pixel × band) processed sequentially.
/// Message-plane implementations add this much estimated overhead per task
/// they would dispatch — the knob that makes [`FusionBackend::cost_hint`]
/// prefer in-process execution for small cubes and parallel execution for
/// large ones.
const TASK_OVERHEAD_SAMPLES: f64 = 4096.0;

/// A reusable fusion engine: one of the interchangeable implementations of
/// the eight-step pipeline, usable many times over many cubes.
pub trait FusionBackend: Send + Sync {
    /// A short human-readable name for reports and routing tables.
    fn label(&self) -> &'static str;

    /// Runs the full pipeline on a borrowed `cube` and returns the fused
    /// output.  Implementations that partition copy the cube once into
    /// shared storage at this boundary; [`FusionBackend::fuse_shared`]
    /// avoids even that.
    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput>;

    /// Runs the full pipeline over shared storage: task payloads are
    /// zero-copy [`hsi::CubeView`] windows of `cube`.
    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.fuse(cube)
    }

    /// Estimated relative cost of fusing a cube of the given dimensions, in
    /// sequential sample units.  Only the *ordering* between backends
    /// matters: a routing policy compares hints to pick the cheapest lane
    /// for a job (see the service crate's `CostHintPolicy`).  The default is
    /// the sequential model — every sample once, no overhead.
    fn cost_hint(&self, dims: &CubeDims) -> f64 {
        dims.samples() as f64
    }
}

impl FusionBackend for SequentialPct {
    fn label(&self) -> &'static str {
        "sequential"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }
}

impl FusionBackend for SharedMemoryPct {
    fn label(&self) -> &'static str {
        "shared-memory"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }

    /// Data-parallel fork/join: near-linear speed-up over the pool, plus a
    /// small per-block coordination cost (no messages are exchanged).
    fn cost_hint(&self, dims: &CubeDims) -> f64 {
        let threads = rayon::current_num_threads().max(1) as f64;
        let blocks = self.blocks() as f64;
        dims.samples() as f64 / threads + TASK_OVERHEAD_SAMPLES / 8.0 * blocks
    }
}

impl FusionBackend for DistributedPct {
    fn label(&self) -> &'static str {
        "distributed"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }

    /// Parallel compute over the workers, plus per-task messaging overhead
    /// for the screening and transform fan-outs (two tasks per worker each
    /// under the default granularity).
    fn cost_hint(&self, dims: &CubeDims) -> f64 {
        let workers = self.workers() as f64;
        let tasks = 2.0 * 2.0 * workers;
        dims.samples() as f64 / workers + TASK_OVERHEAD_SAMPLES * tasks
    }
}

impl FusionBackend for ResilientPct {
    fn label(&self) -> &'static str {
        "resilient"
    }

    fn fuse(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run(cube)
    }

    fn fuse_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_shared(cube)
    }

    /// The distributed model with every send, task and heartbeat multiplied
    /// by the replication level — the paper's "resiliency costs roughly the
    /// replication factor" claim as a cost model.
    fn cost_hint(&self, dims: &CubeDims) -> f64 {
        let workers = self.workers() as f64;
        let tasks = 2.0 * 2.0 * workers;
        let level = self.level() as f64;
        (dims.samples() as f64 / workers + TASK_OVERHEAD_SAMPLES * tasks) * level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PctConfig;
    use hsi::{SceneConfig, SceneGenerator};

    #[test]
    fn backends_are_interchangeable_behind_the_trait() {
        let cube = SceneGenerator::new(SceneConfig::small(21))
            .unwrap()
            .generate();
        let backends: Vec<Box<dyn FusionBackend>> = vec![
            Box::new(SequentialPct::new(PctConfig::paper())),
            Box::new(SharedMemoryPct::new(PctConfig::paper())),
            Box::new(DistributedPct::new(PctConfig::paper(), 2)),
            Box::new(ResilientPct::new(PctConfig::paper(), 2, 1)),
        ];
        let reference = backends[0].fuse(&cube).unwrap();
        let mut labels = Vec::new();
        for backend in &backends {
            labels.push(backend.label());
            let out = backend.fuse(&cube).unwrap();
            assert_eq!(out.pixels, reference.pixels);
            let diff = reference.image.mean_abs_diff(&out.image).unwrap();
            assert!(diff < 10.0, "{} diverges: {diff}", backend.label());
        }
        assert_eq!(
            labels,
            vec!["sequential", "shared-memory", "distributed", "resilient"]
        );
    }

    #[test]
    fn fuse_shared_agrees_with_fuse() {
        let cube = Arc::new(
            SceneGenerator::new(SceneConfig::small(22))
                .unwrap()
                .generate(),
        );
        let backends: Vec<Box<dyn FusionBackend>> = vec![
            Box::new(SequentialPct::new(PctConfig::paper())),
            Box::new(SharedMemoryPct::new(PctConfig::paper())),
            Box::new(DistributedPct::new(PctConfig::paper(), 2)),
            Box::new(ResilientPct::new(PctConfig::paper(), 2, 1)),
        ];
        for backend in &backends {
            let borrowed = backend.fuse(&cube).unwrap();
            let shared = backend.fuse_shared(&cube).unwrap();
            assert_eq!(shared.image, borrowed.image, "{}", backend.label());
        }
    }

    #[test]
    fn cost_hints_order_backends_sensibly() {
        let sequential = SequentialPct::new(PctConfig::paper());
        let distributed = DistributedPct::new(PctConfig::paper(), 4);
        let resilient = ResilientPct::new(PctConfig::paper(), 4, 2);

        // Tiny cube: fixed per-task messaging overhead dominates, so the
        // in-process sequential path is the cheapest.
        let tiny = CubeDims::new(8, 8, 4);
        assert!(sequential.cost_hint(&tiny) < distributed.cost_hint(&tiny));
        assert!(distributed.cost_hint(&tiny) < resilient.cost_hint(&tiny));

        // Paper-scale cube: parallel speed-up wins over one thread.
        let big = CubeDims::paper_eval();
        assert!(distributed.cost_hint(&big) < sequential.cost_hint(&big));
        // Resiliency costs roughly the replication factor over distributed.
        let ratio = resilient.cost_hint(&big) / distributed.cost_hint(&big);
        assert!((1.5..=2.5).contains(&ratio), "resiliency ratio {ratio}");
        // The default trait model is the sequential one.
        assert_eq!(sequential.cost_hint(&big), big.samples() as f64);
    }

    #[test]
    fn engines_are_reusable_across_cubes() {
        let backend = SequentialPct::new(PctConfig::paper());
        for seed in [1u64, 2] {
            let cube = SceneGenerator::new(SceneConfig::small(seed))
                .unwrap()
                .generate();
            let a = FusionBackend::fuse(&backend, &cube).unwrap();
            let b = FusionBackend::fuse(&backend, &cube).unwrap();
            assert_eq!(a, b);
        }
    }
}
