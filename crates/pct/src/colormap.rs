//! Step 8: human-centred colour mapping.
//!
//! The paper maps the first principal component to the achromatic channel,
//! the second to red–green opponency and the third to blue–yellow opponency,
//! matching "the spatial-spectral content of the output image with the
//! spatial-spectral processing capabilities of the human visual system"
//! [Boynton 1979, Poirson & Wandell 1993].  Concretely each pixel's first
//! three principal components are rescaled to an 8-bit range, centred at
//! 128, pushed through a fixed 3×3 opponent-to-RGB matrix and re-centred —
//! the per-pixel formula printed in step 8 of the paper.
//!
//! Note on coefficients: the archived copy of the paper typesets the 3×3
//! matrix ambiguously (the rows are interleaved with the surrounding
//! formula).  The matrix below uses exactly the nine printed coefficient
//! magnitudes (0.4387, 0.4972, 0.0641, 0.0795, 0.1403, 0.1355, 0.0116 and
//! the repeated 0.4972) arranged as a standard opponent-colour
//! reconstruction: every output channel receives the achromatic component
//! positively, red and green receive the red–green opponent with opposite
//! signs, and blue receives the blue–yellow opponent negatively.  The
//! mapping is a fixed linear transform either way, so performance behaviour
//! (what Figures 4–5 measure) is identical and the qualitative behaviour —
//! PC1 drives luminance, PC2/PC3 drive hue — is preserved.

use hsi::{HyperCube, RgbImage};
use linalg::Matrix;

/// The 3×3 opponent-to-RGB matrix (rows produce R, G, B; columns consume the
/// achromatic, red–green and blue–yellow components).
pub fn opponent_matrix() -> Matrix {
    Matrix::from_rows(&[
        vec![0.4387, 0.4972, 0.0641],
        vec![0.4972, -0.1403, 0.0795],
        vec![0.1355, -0.0116, -0.4972],
    ])
    .expect("static 3x3 matrix is well formed")
}

/// Per-component affine rescaling parameters mapping a principal component
/// into the 8-bit range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentScale {
    /// Minimum component value observed.
    pub min: f64,
    /// Maximum component value observed.
    pub max: f64,
}

impl ComponentScale {
    /// Computes scales for the first `k` bands of a transformed cube.
    pub fn from_cube(cube: &HyperCube, k: usize) -> Vec<ComponentScale> {
        let k = k.min(cube.bands());
        (0..k)
            .map(|band| {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for pixel in cube.iter_pixels() {
                    let v = pixel[band];
                    min = min.min(v);
                    max = max.max(v);
                }
                ComponentScale { min, max }
            })
            .collect()
    }

    /// Derives scales from the per-component eigenvalues (variances): the
    /// component is mapped from `[-3.5 sigma, +3.5 sigma]` to `[0, 255]`.
    ///
    /// Principal components have zero mean over the unique set, so an
    /// eigenvalue-based range is known to the manager as soon as step 6
    /// finishes — which is what lets the *workers* perform the colour
    /// mapping (step 8) in the distributed implementations without a second
    /// pass over the data, as the paper's decomposition requires.
    pub fn from_eigenvalues(eigenvalues: &[f64], k: usize) -> Vec<ComponentScale> {
        eigenvalues
            .iter()
            .take(k)
            .map(|&lambda| {
                let sigma = lambda.max(0.0).sqrt();
                ComponentScale {
                    min: -3.5 * sigma,
                    max: 3.5 * sigma,
                }
            })
            .collect()
    }

    /// Maps a raw component value into `[0, 255]`.
    pub fn to_byte_range(&self, value: f64) -> f64 {
        let range = self.max - self.min;
        if range <= 0.0 {
            return 128.0;
        }
        ((value - self.min) / range * 255.0).clamp(0.0, 255.0)
    }
}

/// Maps one pixel's first three (rescaled) principal components to RGB using
/// the paper's centred opponent transform.
pub fn map_pixel(components: [f64; 3]) -> [u8; 3] {
    let matrix = opponent_matrix();
    let centred = [
        components[0] - 128.0,
        components[1] - 128.0,
        components[2] - 128.0,
    ];
    let mut rgb = [0u8; 3];
    for (row, out) in rgb.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (col, c) in centred.iter().enumerate() {
            acc += matrix[(row, col)] * c;
        }
        *out = (128.0 + acc).round().clamp(0.0, 255.0) as u8;
    }
    rgb
}

/// Maps a transformed cube (principal components per pixel, leading three
/// used) to the fused colour composite.  `scales` must have been computed
/// over the *whole* image so distributed workers produce consistent colours;
/// the manager computes them once and broadcasts them with the transform.
pub fn map_cube(cube: &HyperCube, scales: &[ComponentScale]) -> RgbImage {
    let width = cube.width();
    let height = cube.height();
    let mut image = RgbImage::black(width, height);
    for y in 0..height {
        for x in 0..width {
            let pixel = cube.pixel(x, y).expect("in-bounds iteration");
            let mut components = [128.0_f64; 3];
            for (c, slot) in components.iter_mut().enumerate() {
                if c < pixel.len() && c < scales.len() {
                    *slot = scales[c].to_byte_range(pixel[c]);
                }
            }
            image
                .set(x, y, map_pixel(components))
                .expect("in-bounds write");
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::CubeDims;

    #[test]
    fn opponent_matrix_uses_papers_coefficients() {
        let m = opponent_matrix();
        let mut magnitudes: Vec<f64> = (0..3)
            .flat_map(|r| (0..3).map(move |c| (r, c)))
            .map(|(r, c)| m[(r, c)].abs())
            .collect();
        magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = vec![
            0.4387, 0.4972, 0.0641, 0.4972, 0.1403, 0.0795, 0.1355, 0.0116, 0.4972,
        ];
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in magnitudes.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn neutral_components_map_to_midgray() {
        assert_eq!(map_pixel([128.0, 128.0, 128.0]), [128, 128, 128]);
    }

    #[test]
    fn bright_achromatic_component_raises_all_channels() {
        let bright = map_pixel([255.0, 128.0, 128.0]);
        let dark = map_pixel([0.0, 128.0, 128.0]);
        for c in 0..3 {
            assert!(bright[c] > 128, "bright channel {c} = {}", bright[c]);
            assert!(dark[c] < 128, "dark channel {c} = {}", dark[c]);
        }
    }

    #[test]
    fn red_green_opponency_has_opposite_signs_on_r_and_g() {
        let push = map_pixel([128.0, 255.0, 128.0]);
        assert!(push[0] > 128, "red should rise");
        assert!(push[1] < 128, "green should fall");
    }

    #[test]
    fn output_is_always_in_byte_range() {
        for a in [0.0, 64.0, 200.0, 255.0] {
            for b in [0.0, 128.0, 255.0] {
                for c in [0.0, 128.0, 255.0] {
                    let _ = map_pixel([a, b, c]); // clamps internally; would panic on overflow cast otherwise
                }
            }
        }
    }

    #[test]
    fn component_scale_maps_extremes_to_0_and_255() {
        let s = ComponentScale {
            min: -2.0,
            max: 6.0,
        };
        assert_eq!(s.to_byte_range(-2.0), 0.0);
        assert_eq!(s.to_byte_range(6.0), 255.0);
        assert!((s.to_byte_range(2.0) - 127.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_scale_maps_to_midpoint() {
        let s = ComponentScale { min: 3.0, max: 3.0 };
        assert_eq!(s.to_byte_range(3.0), 128.0);
    }

    #[test]
    fn map_cube_produces_full_size_image() {
        let dims = CubeDims::new(4, 3, 3);
        let mut cube = HyperCube::zeros(dims);
        for y in 0..3 {
            for x in 0..4 {
                cube.set_pixel(x, y, &[(x + y) as f64, x as f64, y as f64])
                    .unwrap();
            }
        }
        let scales = ComponentScale::from_cube(&cube, 3);
        let img = map_cube(&cube, &scales);
        assert_eq!((img.width(), img.height()), (4, 3));
        // Different pixels get different colours.
        assert_ne!(img.get(0, 0).unwrap(), img.get(3, 2).unwrap());
    }

    #[test]
    fn eigenvalue_scales_are_symmetric_and_monotone() {
        let scales = ComponentScale::from_eigenvalues(&[9.0, 1.0, 0.0], 3);
        assert_eq!(scales.len(), 3);
        assert_eq!(scales[0].min, -scales[0].max);
        assert!((scales[0].max - 10.5).abs() < 1e-12);
        assert!(scales[0].max > scales[1].max);
        // Zero variance degenerates to a point range -> midgray mapping.
        assert_eq!(scales[2].to_byte_range(0.0), 128.0);
    }

    #[test]
    fn scales_from_cube_cover_requested_components() {
        let cube = HyperCube::zeros(CubeDims::new(2, 2, 5));
        assert_eq!(ComponentScale::from_cube(&cube, 3).len(), 3);
        assert_eq!(ComponentScale::from_cube(&cube, 9).len(), 5);
    }
}
