//! Protocol messages exchanged by the distributed and resilient
//! implementations.
//!
//! The message set follows the eight-step decomposition directly: the manager
//! hands out screening, covariance and transform tasks; workers return unique
//! sets, partial covariance sums and colour-mapped image strips.  Heartbeats
//! and shutdown are the only control messages.
//!
//! Sub-cube payloads travel as [`CubeView`]s: `Arc`-backed windows over the
//! shared full cube, so building a task, storing it for re-issue, and
//! fanning it out to every member of a replica group are all reference-count
//! bumps instead of pixel copies.  In-process the `scp` router moves
//! messages by ownership transfer; at a true process boundary a transport
//! would call [`CubeView::materialize`] during serialization (charged to the
//! clone ledger), which is the only point pixels would be copied.
//!
//! The `Serialize`/`Deserialize` derives document that intent against the
//! offline serde *shim* (whose traits are blanket markers).  Swapping in
//! real serde now also requires a materializing serde impl for `CubeView`
//! (encode the window as an owned sub-cube, decode into fresh storage) —
//! recorded as part of the shim-swap item in ROADMAP.md.

use hsi::CubeView;
use linalg::{Matrix, Vector};
use serde::{Deserialize, Serialize};

/// Identifier of one unit of work (one sub-cube or one covariance chunk).
pub type TaskId = usize;

/// Messages of the fusion protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PctMessage {
    /// Manager → worker: screen this sub-cube (step 1).
    ScreenTask {
        /// Work item identifier.
        task: TaskId,
        /// Zero-copy view of the sub-cube to screen.
        view: CubeView,
        /// Screening threshold in radians.
        threshold_rad: f64,
    },
    /// Worker → manager: the unique set of a screened sub-cube (step 1 → 2).
    UniqueSet {
        /// Work item identifier.
        task: TaskId,
        /// Unique pixel vectors found in the sub-cube.
        unique: Vec<Vector>,
    },
    /// Manager → worker: accumulate the covariance sum of these unique-set
    /// vectors around the broadcast mean (step 4).
    CovarianceTask {
        /// Work item identifier.
        task: TaskId,
        /// The mean vector of the merged unique set (step 3).
        mean: Vector,
        /// This worker's share of the unique set.
        pixels: Vec<Vector>,
    },
    /// Worker → manager: a packed partial covariance sum (step 4 → 5).
    CovarianceSum {
        /// Work item identifier.
        task: TaskId,
        /// Packed upper triangle of the un-normalised covariance sum.
        packed: Vec<f64>,
        /// Number of spectral bands (packed layout dimension).
        bands: usize,
        /// Number of vectors accumulated.
        count: u64,
    },
    /// Manager → worker: transform and colour-map this sub-cube (steps 7–8).
    TransformTask {
        /// Work item identifier.
        task: TaskId,
        /// Zero-copy view of the sub-cube to transform.
        view: CubeView,
        /// Mean vector of the unique set.
        mean: Vector,
        /// Rows are the leading eigenvectors (the transformation matrix A).
        transform: Matrix,
        /// Per-component `(min, max)` colour scales derived from the
        /// eigenvalues, so workers can colour-map locally.
        scales: Vec<(f64, f64)>,
    },
    /// Worker → manager: a colour-mapped strip of the final image (step 8).
    RgbStrip {
        /// Work item identifier.
        task: TaskId,
        /// First image row of the strip.
        row_start: usize,
        /// Number of rows.
        rows: usize,
        /// Strip width in pixels.
        width: usize,
        /// Interleaved RGB bytes (`rows * width * 3`).
        rgb: Vec<u8>,
    },
    /// Manager → worker: screen this sub-cube's pixels against an
    /// already-accepted seed set (the service layer's exact screening chain:
    /// folding consecutive sub-cubes through seeded screening reproduces
    /// whole-image screening bit-for-bit).
    ScreenSeededTask {
        /// Work item identifier.
        task: TaskId,
        /// Zero-copy view of the sub-cube to screen.
        view: CubeView,
        /// Unique vectors already accepted by earlier links of the chain.
        seed: Vec<Vector>,
        /// Screening threshold in radians.
        threshold_rad: f64,
    },
    /// Worker → manager: the vectors newly admitted by a seeded screening
    /// task, in admission order.
    SeededUnique {
        /// Work item identifier.
        task: TaskId,
        /// Newly admitted unique vectors (the seed is not echoed back).
        accepted: Vec<Vector>,
    },
    /// Manager → worker: derive the transform (steps 3–6) from the merged
    /// unique set in one pass, exactly as the sequential reference does.
    DeriveTask {
        /// Work item identifier.
        task: TaskId,
        /// The merged unique set.
        unique: Vec<Vector>,
        /// Pipeline configuration (screening angle, output components).
        config: crate::config::PctConfig,
    },
    /// Worker → manager: the derived transform specification.
    DerivedTransform {
        /// Work item identifier.
        task: TaskId,
        /// Mean vector of the unique set (step 3).
        mean: Vector,
        /// Rows are the leading eigenvectors (step 6).
        transform: Matrix,
        /// All eigenvalues, sorted descending.
        eigenvalues: Vec<f64>,
    },
    /// Worker → manager: a task could not be computed from its inputs.
    TaskFailed {
        /// Work item identifier.
        task: TaskId,
        /// Human-readable cause.
        error: String,
    },
    /// Worker → manager: liveness signal consumed by the failure detector.
    Heartbeat,
    /// Manager → worker: all phases complete, exit the worker loop.
    Shutdown,
}

impl PctMessage {
    /// A short label for traces and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            PctMessage::ScreenTask { .. } => "screen-task",
            PctMessage::UniqueSet { .. } => "unique-set",
            PctMessage::CovarianceTask { .. } => "covariance-task",
            PctMessage::CovarianceSum { .. } => "covariance-sum",
            PctMessage::TransformTask { .. } => "transform-task",
            PctMessage::RgbStrip { .. } => "rgb-strip",
            PctMessage::ScreenSeededTask { .. } => "screen-seeded-task",
            PctMessage::SeededUnique { .. } => "seeded-unique",
            PctMessage::DeriveTask { .. } => "derive-task",
            PctMessage::DerivedTransform { .. } => "derived-transform",
            PctMessage::TaskFailed { .. } => "task-failed",
            PctMessage::Heartbeat => "heartbeat",
            PctMessage::Shutdown => "shutdown",
        }
    }

    /// Sub-cube payload bytes this message references (the volume the
    /// pre-view message plane deep-copied per task — and per replica-group
    /// member — and that views now share by reference).  Zero for messages
    /// without a pixel payload.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            PctMessage::ScreenTask { view, .. }
            | PctMessage::TransformTask { view, .. }
            | PctMessage::ScreenSeededTask { view, .. } => view.payload_bytes() as u64,
            _ => 0,
        }
    }

    /// The task id carried by the message, if any.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            PctMessage::ScreenTask { task, .. }
            | PctMessage::UniqueSet { task, .. }
            | PctMessage::CovarianceTask { task, .. }
            | PctMessage::CovarianceSum { task, .. }
            | PctMessage::TransformTask { task, .. }
            | PctMessage::RgbStrip { task, .. }
            | PctMessage::ScreenSeededTask { task, .. }
            | PctMessage::SeededUnique { task, .. }
            | PctMessage::DeriveTask { task, .. }
            | PctMessage::DerivedTransform { task, .. }
            | PctMessage::TaskFailed { task, .. } => Some(*task),
            PctMessage::Heartbeat | PctMessage::Shutdown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_task_ids_are_reported() {
        let msg = PctMessage::UniqueSet {
            task: 7,
            unique: vec![],
        };
        assert_eq!(msg.kind(), "unique-set");
        assert_eq!(msg.task(), Some(7));
        assert_eq!(PctMessage::Heartbeat.task(), None);
        assert_eq!(PctMessage::Shutdown.kind(), "shutdown");
    }

    #[test]
    fn messages_round_trip_through_serde() {
        // The protocol is designed to be serialisable for a real network
        // transport; check a representative payload survives JSON-free
        // round-tripping via the bincode-style serde data model (using the
        // `serde_test`-less approach of encoding to a Vec with serde's
        // self-describing format is unavailable offline, so we simply clone
        // and compare — the derive guarantees the structure is serialisable).
        let msg = PctMessage::CovarianceSum {
            task: 3,
            packed: vec![1.0, 2.0, 3.0],
            bands: 2,
            count: 9,
        };
        let copy = msg.clone();
        assert_eq!(msg, copy);
    }

    #[test]
    fn payload_bytes_counts_only_pixel_payloads() {
        use hsi::{CubeDims, HyperCube};
        use std::sync::Arc;
        let cube = Arc::new(HyperCube::zeros(CubeDims::new(4, 3, 2)));
        let view = CubeView::full(Arc::clone(&cube));
        let msg = PctMessage::ScreenTask {
            task: 0,
            view: view.clone(),
            threshold_rad: 0.1,
        };
        assert_eq!(msg.payload_bytes(), (4 * 3 * 2 * 8) as u64);
        assert_eq!(PctMessage::Heartbeat.payload_bytes(), 0);
        // Cloning the message shares the storage instead of copying it: the
        // clone ledger does not move.
        let before = hsi::CloneLedger::snapshot();
        let copy = msg.clone();
        assert_eq!(before.delta(), 0);
        assert_eq!(copy.payload_bytes(), msg.payload_bytes());
    }
}
