//! Shared-memory parallel implementation (rayon).
//!
//! Section 4 of the paper notes that on a shared-memory multiprocessor the
//! concurrent algorithm "operates within 5 % of linear speedup on a wide
//! range of problem sizes and machine sizes" because no communication is
//! involved.  This implementation reproduces that variant: the data-parallel
//! steps (screening, covariance accumulation, transformation, colour
//! mapping) run as rayon parallel folds over row blocks of the cube, while
//! the small sequential steps (merge, eigen-decomposition) stay on the
//! calling thread exactly as in the paper.

use crate::colormap::{map_cube, ComponentScale};
use crate::config::{FusionOutput, PctConfig};
use crate::pipeline::{finalize_transform, transform_view};
use crate::screening::{merge_unique_sets, screen_pixels};
use crate::Result;
use hsi::partition::partition_views;
use hsi::{CubeView, HyperCube};
use linalg::covariance::{mean_vector, CovarianceAccumulator};
use rayon::prelude::*;
use std::sync::Arc;

/// The shared-memory fusion pipeline.
#[derive(Debug, Clone)]
pub struct SharedMemoryPct {
    config: PctConfig,
    /// Number of row blocks the data-parallel steps are split into.  More
    /// blocks than threads keeps the pool busy; the default matches rayon's
    /// current thread count times four.
    blocks: usize,
}

impl SharedMemoryPct {
    /// Creates a shared-memory pipeline using the global rayon pool.
    pub fn new(config: PctConfig) -> Self {
        Self {
            config,
            blocks: rayon::current_num_threads().max(1) * 4,
        }
    }

    /// Overrides the number of parallel row blocks.
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks.max(1);
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PctConfig {
        &self.config
    }

    /// Number of parallel row blocks the data-parallel steps split into.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Runs the full pipeline on a borrowed cube.  The cube is copied once
    /// into shared storage at this ingestion boundary; `Arc` holders use
    /// [`SharedMemoryPct::run_shared`] and copy nothing.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run_shared(&Arc::new(cube.clone()))
    }

    /// Runs the full pipeline over shared storage: the data-parallel steps
    /// read zero-copy row-band [`CubeView`]s instead of extracting owned
    /// sub-cubes per block (the pre-view implementation copied every block
    /// twice — once for screening, once for the transform).
    pub fn run_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.config.validate()?;
        let views: Vec<CubeView> = partition_views(cube, self.blocks)?;

        // Step 1 in parallel: each block screens its own pixels through its
        // view of the shared cube.
        let per_block_unique: Vec<Vec<linalg::Vector>> = views
            .par_iter()
            .map(|view| screen_pixels(&view.pixel_vectors(), self.config.screening_angle_rad))
            .collect();

        // Step 2 sequentially at the "manager" (the calling thread).
        let unique = merge_unique_sets(per_block_unique, self.config.screening_angle_rad);
        let unique_count = unique.len();

        // Step 3 sequential (cheap), steps 4 in parallel over chunks of the
        // unique set, step 5 merge, step 6 sequential eigen.
        let mean = mean_vector(&unique)?;
        let chunk = (unique.len() / self.blocks.max(1)).max(1);
        let partials: Vec<CovarianceAccumulator> = unique
            .par_chunks(chunk)
            .map(|pixels| {
                let mut acc = CovarianceAccumulator::new(mean.clone());
                acc.push_all(pixels).expect("uniform band count");
                acc
            })
            .collect();
        let mut total = CovarianceAccumulator::new(mean.clone());
        for p in &partials {
            total.merge(p)?;
        }
        let covariance = total.finalize()?;
        let spec = finalize_transform(mean, &covariance, &self.config)?;

        // Step 7 in parallel over row-band views, reassembled into one cube.
        let transformed_blocks: Vec<(usize, HyperCube)> = views
            .par_iter()
            .map(|view| {
                (
                    view.row_start(),
                    transform_view(&spec, view).expect("band counts match"),
                )
            })
            .collect();
        let mut transformed = HyperCube::zeros(hsi::CubeDims::new(
            cube.width(),
            cube.height(),
            spec.components(),
        ));
        for (row_start, block) in &transformed_blocks {
            transformed.blit(0, *row_start, block)?;
        }

        // Step 8: eigenvalue-derived scales (known after step 6) then the
        // colour mapping; cheap relative to step 7.
        let scales = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3);
        let image = map_cube(&transformed, &scales);

        Ok(FusionOutput {
            image,
            eigenvalues: spec.eigenvalues,
            unique_count,
            pixels: cube.pixels(),
        })
    }
}

impl Default for SharedMemoryPct {
    fn default() -> Self {
        Self::new(PctConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialPct;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(7))
            .unwrap()
            .generate()
    }

    #[test]
    fn shared_memory_output_matches_sequential_closely() {
        let cube = small_scene();
        let seq = SequentialPct::default().run(&cube).unwrap();
        let par = SharedMemoryPct::default().run(&cube).unwrap();
        assert_eq!(par.pixels, seq.pixels);
        // The unique sets can differ slightly because screening order differs
        // (per-block then merge), but the fused images must be visually
        // identical: tiny mean per-channel difference.
        let diff = seq.image.mean_abs_diff(&par.image).unwrap();
        assert!(diff < 10.0, "mean abs channel difference {diff}");
        // Variance compaction is preserved.
        assert!(par.variance_fraction(3) > 0.95);
    }

    #[test]
    fn block_count_does_not_change_the_result_materially() {
        let cube = small_scene();
        let a = SharedMemoryPct::default()
            .with_blocks(2)
            .run(&cube)
            .unwrap();
        let b = SharedMemoryPct::default()
            .with_blocks(8)
            .run(&cube)
            .unwrap();
        let diff = a.image.mean_abs_diff(&b.image).unwrap();
        assert!(diff < 10.0, "block-count sensitivity {diff}");
    }

    #[test]
    fn unique_count_is_close_to_sequential() {
        let cube = small_scene();
        let seq = SequentialPct::default().run(&cube).unwrap();
        let par = SharedMemoryPct::default().run(&cube).unwrap();
        let ratio = par.unique_count as f64 / seq.unique_count as f64;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "unique counts diverge: {ratio}"
        );
    }

    #[test]
    fn without_screening_every_pixel_is_unique() {
        let cube = small_scene();
        let out = SharedMemoryPct::new(PctConfig::without_screening())
            .run(&cube)
            .unwrap();
        assert_eq!(out.unique_count, cube.pixels());
    }

    #[test]
    fn run_shared_copies_no_payload_and_matches_run() {
        let cube = Arc::new(small_scene());
        let ledger = hsi::CloneLedger::snapshot();
        let shared = SharedMemoryPct::default().run_shared(&cube).unwrap();
        assert_eq!(ledger.delta(), 0, "run_shared deep-copied payload bytes");
        let borrowed = SharedMemoryPct::default().run(&cube).unwrap();
        assert_eq!(shared.image, borrowed.image);
        assert_eq!(shared.unique_count, borrowed.unique_count);
    }

    #[test]
    fn single_block_degenerates_to_sequential_semantics() {
        let cube = small_scene();
        let seq = SequentialPct::default().run(&cube).unwrap();
        let par = SharedMemoryPct::default()
            .with_blocks(1)
            .run(&cube)
            .unwrap();
        assert_eq!(par.unique_count, seq.unique_count);
        assert_eq!(par.image, seq.image);
    }
}
