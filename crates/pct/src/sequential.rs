//! The sequential reference implementation of the eight-step pipeline.
//!
//! Every concurrent implementation is validated against this one: same
//! unique-set rule, same statistics, same transform, same colour mapping —
//! just executed on one thread in step order.

use crate::colormap::{map_cube, ComponentScale};
use crate::config::{FusionOutput, PctConfig};
use crate::pipeline::{derive_transform, transform_cube, TransformSpec};
use crate::screening::screen_pixels;
use crate::Result;
use hsi::HyperCube;

/// The sequential fusion pipeline.
#[derive(Debug, Clone)]
pub struct SequentialPct {
    config: PctConfig,
}

impl SequentialPct {
    /// Creates a sequential pipeline with the given configuration.
    pub fn new(config: PctConfig) -> Self {
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PctConfig {
        &self.config
    }

    /// Runs steps 1–6 only, returning the derived transform together with
    /// the unique-set size.  Exposed so tests and ablations can inspect the
    /// statistics phase without paying for the full transform.
    pub fn derive(&self, cube: &HyperCube) -> Result<(TransformSpec, usize)> {
        let pixels = cube.pixel_vectors();
        let unique = screen_pixels(&pixels, self.config.screening_angle_rad);
        let spec = derive_transform(&unique, &self.config)?;
        Ok((spec, unique.len()))
    }

    /// Runs the full pipeline and produces the fused colour composite.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.config.validate()?;
        let (spec, unique_count) = self.derive(cube)?;
        let transformed = transform_cube(&spec, cube)?;
        let scales = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3);
        let image = map_cube(&transformed, &scales);
        Ok(FusionOutput {
            image,
            eigenvalues: spec.eigenvalues,
            unique_count,
            pixels: cube.pixels(),
        })
    }
}

impl Default for SequentialPct {
    fn default() -> Self {
        Self::new(PctConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(42))
            .unwrap()
            .generate()
    }

    #[test]
    fn full_pipeline_produces_image_of_scene_size() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert_eq!(out.image.width(), cube.width());
        assert_eq!(out.image.height(), cube.height());
        assert_eq!(out.pixels, cube.pixels());
    }

    #[test]
    fn screening_reduces_the_unique_set() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(out.unique_count > 0);
        assert!(
            out.unique_count < cube.pixels(),
            "screening kept all {} pixels",
            out.unique_count
        );
    }

    #[test]
    fn leading_components_capture_most_variance() {
        // The paper's premise: hyper-spectral bands are highly redundant, so
        // three principal components carry nearly everything.
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(
            out.variance_fraction(3) > 0.95,
            "first three components only carry {}",
            out.variance_fraction(3)
        );
    }

    #[test]
    fn fused_image_has_contrast() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(out.image.rms_contrast() > 10.0);
    }

    #[test]
    fn fusion_is_deterministic() {
        let cube = small_scene();
        let a = SequentialPct::default().run(&cube).unwrap();
        let b = SequentialPct::default().run(&cube).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.unique_count, b.unique_count);
    }

    #[test]
    fn disabling_screening_keeps_every_pixel() {
        let cube = small_scene();
        let out = SequentialPct::new(PctConfig::without_screening())
            .run(&cube)
            .unwrap();
        assert_eq!(out.unique_count, cube.pixels());
    }

    #[test]
    fn camouflaged_target_region_differs_from_forest_in_fused_image() {
        // The paper's qualitative claim for Figure 3: the camouflaged vehicle
        // is enhanced against its background.  Compare the fused colour at a
        // target pixel with the median background colour.
        let generator = SceneGenerator::new(SceneConfig::small(42)).unwrap();
        let (cube, truth) = generator.generate_with_truth();
        let out = SequentialPct::default().run(&cube).unwrap();
        let width = cube.width();
        let mut target_px = None;
        let mut forest_px = None;
        for (idx, material) in truth.iter().enumerate() {
            let (x, y) = (idx % width, idx / width);
            match material {
                hsi::Material::CamouflageNet if target_px.is_none() => {
                    target_px = Some(out.image.get(x, y).unwrap())
                }
                hsi::Material::Forest if forest_px.is_none() => {
                    forest_px = Some(out.image.get(x, y).unwrap())
                }
                _ => {}
            }
        }
        let t = target_px.expect("target present");
        let f = forest_px.expect("forest present");
        let dist: i32 = (0..3).map(|c| (t[c] as i32 - f[c] as i32).abs()).sum();
        assert!(
            dist > 20,
            "target and forest colours too similar: {t:?} vs {f:?}"
        );
    }

    #[test]
    fn derive_only_matches_full_run_statistics() {
        let cube = small_scene();
        let pct = SequentialPct::default();
        let (spec, unique) = pct.derive(&cube).unwrap();
        let out = pct.run(&cube).unwrap();
        assert_eq!(out.unique_count, unique);
        assert_eq!(out.eigenvalues, spec.eigenvalues);
    }
}
