//! The sequential reference implementation of the eight-step pipeline.
//!
//! Every concurrent implementation is validated against this one: same
//! unique-set rule, same statistics, same transform, same colour mapping —
//! just executed on one thread in step order.

use crate::colormap::{map_cube, ComponentScale};
use crate::config::{FusionOutput, PctConfig};
use crate::pipeline::{derive_transform, transform_cube, transform_view, TransformSpec};
use crate::screening::screen_pixels;
use crate::Result;
use hsi::{CubeView, HyperCube};
use std::sync::Arc;

/// The sequential fusion pipeline.
#[derive(Debug, Clone)]
pub struct SequentialPct {
    config: PctConfig,
}

impl SequentialPct {
    /// Creates a sequential pipeline with the given configuration.
    pub fn new(config: PctConfig) -> Self {
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PctConfig {
        &self.config
    }

    /// Runs steps 1–6 only, returning the derived transform together with
    /// the unique-set size.  Exposed so tests and ablations can inspect the
    /// statistics phase without paying for the full transform.
    pub fn derive(&self, cube: &HyperCube) -> Result<(TransformSpec, usize)> {
        let pixels = cube.pixel_vectors();
        let unique = screen_pixels(&pixels, self.config.screening_angle_rad);
        let spec = derive_transform(&unique, &self.config)?;
        Ok((spec, unique.len()))
    }

    /// Runs the full pipeline and produces the fused colour composite.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.config.validate()?;
        let (spec, unique_count) = self.derive(cube)?;
        let transformed = transform_cube(&spec, cube)?;
        let scales = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3);
        let image = map_cube(&transformed, &scales);
        Ok(FusionOutput {
            image,
            eigenvalues: spec.eigenvalues,
            unique_count,
            pixels: cube.pixels(),
        })
    }

    /// Runs the full pipeline over shared storage.  Sequential execution
    /// never partitions, so this is already zero-copy; it exists so the
    /// reference implementation has the same shared entry point as the
    /// concurrent ones.
    pub fn run_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run(cube)
    }

    /// Runs the full pipeline over an arbitrary zero-copy window of a
    /// shared cube — fusing a region of interest without extracting it.
    /// For a full-cube view this is byte-identical to [`SequentialPct::run`].
    pub fn run_view(&self, view: &CubeView) -> Result<FusionOutput> {
        self.config.validate()?;
        let pixels = view.pixel_vectors();
        let unique = screen_pixels(&pixels, self.config.screening_angle_rad);
        let spec = derive_transform(&unique, &self.config)?;
        let transformed = transform_view(&spec, view)?;
        let scales = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3);
        let image = map_cube(&transformed, &scales);
        Ok(FusionOutput {
            image,
            eigenvalues: spec.eigenvalues,
            unique_count: unique.len(),
            pixels: view.pixels(),
        })
    }
}

impl Default for SequentialPct {
    fn default() -> Self {
        Self::new(PctConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(42))
            .unwrap()
            .generate()
    }

    #[test]
    fn full_pipeline_produces_image_of_scene_size() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert_eq!(out.image.width(), cube.width());
        assert_eq!(out.image.height(), cube.height());
        assert_eq!(out.pixels, cube.pixels());
    }

    #[test]
    fn screening_reduces_the_unique_set() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(out.unique_count > 0);
        assert!(
            out.unique_count < cube.pixels(),
            "screening kept all {} pixels",
            out.unique_count
        );
    }

    #[test]
    fn leading_components_capture_most_variance() {
        // The paper's premise: hyper-spectral bands are highly redundant, so
        // three principal components carry nearly everything.
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(
            out.variance_fraction(3) > 0.95,
            "first three components only carry {}",
            out.variance_fraction(3)
        );
    }

    #[test]
    fn fused_image_has_contrast() {
        let cube = small_scene();
        let out = SequentialPct::default().run(&cube).unwrap();
        assert!(out.image.rms_contrast() > 10.0);
    }

    #[test]
    fn fusion_is_deterministic() {
        let cube = small_scene();
        let a = SequentialPct::default().run(&cube).unwrap();
        let b = SequentialPct::default().run(&cube).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.unique_count, b.unique_count);
    }

    #[test]
    fn disabling_screening_keeps_every_pixel() {
        let cube = small_scene();
        let out = SequentialPct::new(PctConfig::without_screening())
            .run(&cube)
            .unwrap();
        assert_eq!(out.unique_count, cube.pixels());
    }

    #[test]
    fn camouflaged_target_region_differs_from_forest_in_fused_image() {
        // The paper's qualitative claim for Figure 3: the camouflaged vehicle
        // is enhanced against its background.  Compare the fused colour at a
        // target pixel with the median background colour.
        let generator = SceneGenerator::new(SceneConfig::small(42)).unwrap();
        let (cube, truth) = generator.generate_with_truth();
        let out = SequentialPct::default().run(&cube).unwrap();
        let width = cube.width();
        let mut target_px = None;
        let mut forest_px = None;
        for (idx, material) in truth.iter().enumerate() {
            let (x, y) = (idx % width, idx / width);
            match material {
                hsi::Material::CamouflageNet if target_px.is_none() => {
                    target_px = Some(out.image.get(x, y).unwrap())
                }
                hsi::Material::Forest if forest_px.is_none() => {
                    forest_px = Some(out.image.get(x, y).unwrap())
                }
                _ => {}
            }
        }
        let t = target_px.expect("target present");
        let f = forest_px.expect("forest present");
        let dist: i32 = (0..3).map(|c| (t[c] as i32 - f[c] as i32).abs()).sum();
        assert!(
            dist > 20,
            "target and forest colours too similar: {t:?} vs {f:?}"
        );
    }

    #[test]
    fn run_view_on_full_view_is_byte_identical_to_run() {
        let cube = Arc::new(small_scene());
        let pct = SequentialPct::default();
        let from_cube = pct.run(&cube).unwrap();
        let ledger = hsi::CloneLedger::snapshot();
        let from_view = pct.run_view(&CubeView::full(Arc::clone(&cube))).unwrap();
        assert_eq!(ledger.delta(), 0, "run_view deep-copied payload bytes");
        assert_eq!(from_view, from_cube);
    }

    #[test]
    fn run_view_fuses_a_window_without_extracting_it() {
        let cube = Arc::new(small_scene());
        let pct = SequentialPct::default();
        let view = CubeView::window(Arc::clone(&cube), 2, 3, 20, 17).unwrap();
        let windowed = pct.run_view(&view).unwrap();
        // Same result as extracting the window the owned way and fusing the
        // copy.  (cube.window, not view.materialize, keeps this binary free
        // of clone-ledger charges so exact-zero ledger tests can't race.)
        let owned = cube.window(2, 3, 20, 17).unwrap();
        assert_eq!(windowed, pct.run(&owned).unwrap());
        assert_eq!(windowed.pixels, 20 * 17);
    }

    #[test]
    fn derive_only_matches_full_run_statistics() {
        let cube = small_scene();
        let pct = SequentialPct::default();
        let (spec, unique) = pct.derive(&cube).unwrap();
        let out = pct.run(&cube).unwrap();
        assert_eq!(out.unique_count, unique);
        assert_eq!(out.eigenvalues, spec.eigenvalues);
    }
}
