//! Shared building blocks of steps 3–7, used by every implementation.
//!
//! The statistics phase (mean, covariance, eigen-decomposition) always runs
//! over the merged unique set; what differs between implementations is *who*
//! computes which piece and how the pieces travel.  Keeping the numerical
//! kernels here guarantees that the sequential, shared-memory, distributed
//! and resilient variants produce the same transformation matrix given the
//! same unique set.

use crate::config::PctConfig;
use crate::{PctError, Result};
use hsi::{CubeDims, CubeView, HyperCube};
use linalg::{
    covariance::{mean_vector, CovarianceAccumulator},
    eigen::{sorted_eigenpairs, JacobiOptions},
    Matrix, SymMatrix, Vector,
};

/// The statistics derived from the unique set: everything a worker needs to
/// transform its share of the image (steps 6→7 hand-off).
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSpec {
    /// Mean vector of the unique set (step 3).
    pub mean: Vector,
    /// Rows are the leading eigenvectors of the covariance matrix, sorted by
    /// descending eigenvalue (step 6); only the first `output_components`
    /// rows are retained.
    pub transform: Matrix,
    /// All eigenvalues, sorted descending.
    pub eigenvalues: Vec<f64>,
}

impl TransformSpec {
    /// Number of output components the spec produces.
    pub fn components(&self) -> usize {
        self.transform.rows()
    }

    /// Number of spectral bands the spec consumes.
    pub fn bands(&self) -> usize {
        self.mean.len()
    }
}

/// Steps 3–6: mean vector, covariance matrix and sorted eigen-decomposition
/// of the unique set, truncated to `config.output_components`.
pub fn derive_transform(unique: &[Vector], config: &PctConfig) -> Result<TransformSpec> {
    config.validate()?;
    if unique.is_empty() {
        return Err(PctError::InvalidConfig(
            "cannot derive a transform from an empty unique set".to_string(),
        ));
    }
    let mean = mean_vector(unique)?;
    let mut acc = CovarianceAccumulator::new(mean.clone());
    acc.push_all(unique)?;
    let covariance = acc.finalize()?;
    finalize_transform(mean, &covariance, config)
}

/// Step 5–6 only: given the already-merged covariance matrix (the manager's
/// view in the distributed protocol), sort the eigenpairs and truncate.
pub fn finalize_transform(
    mean: Vector,
    covariance: &SymMatrix,
    config: &PctConfig,
) -> Result<TransformSpec> {
    let (eigenvalues, full_transform) = sorted_eigenpairs(covariance, JacobiOptions::default())?;
    let components = config.output_components.min(full_transform.rows());
    Ok(TransformSpec {
        mean,
        transform: full_transform.top_rows(components),
        eigenvalues,
    })
}

/// Step 7 for one pixel: centre and project onto the leading eigenvectors.
pub fn transform_pixel(spec: &TransformSpec, pixel: &[f64]) -> Vec<f64> {
    let bands = spec.bands();
    debug_assert_eq!(pixel.len(), bands);
    let mut out = Vec::with_capacity(spec.components());
    for row in 0..spec.components() {
        let eigvec = spec.transform.row(row);
        let mut acc = 0.0;
        for b in 0..bands {
            acc += eigvec[b] * (pixel[b] - spec.mean[b]);
        }
        out.push(acc);
    }
    out
}

/// Step 7 for a whole cube (or sub-cube): produces a cube whose "bands" are
/// the leading principal components.
pub fn transform_cube(spec: &TransformSpec, cube: &HyperCube) -> Result<HyperCube> {
    if cube.bands() != spec.bands() {
        return Err(PctError::InvalidConfig(format!(
            "cube has {} bands but the transform expects {}",
            cube.bands(),
            spec.bands()
        )));
    }
    let dims = CubeDims::new(cube.width(), cube.height(), spec.components());
    let mut samples = Vec::with_capacity(dims.samples());
    for pixel in cube.iter_pixels() {
        samples.extend_from_slice(&transform_pixel(spec, pixel));
    }
    Ok(HyperCube::from_samples(dims, samples)?)
}

/// Step 7 for a zero-copy sub-cube view: identical arithmetic to
/// [`transform_cube`], reading pixels straight out of the shared storage.
/// The produced component cube is new data (it has different values, not a
/// copy), so this is not a clone in the message-plane sense.
pub fn transform_view(spec: &TransformSpec, view: &CubeView) -> Result<HyperCube> {
    if view.bands() != spec.bands() {
        return Err(PctError::InvalidConfig(format!(
            "view has {} bands but the transform expects {}",
            view.bands(),
            spec.bands()
        )));
    }
    let dims = CubeDims::new(view.width(), view.height(), spec.components());
    let mut samples = Vec::with_capacity(dims.samples());
    for pixel in view.iter_pixels() {
        samples.extend_from_slice(&transform_pixel(spec, pixel));
    }
    Ok(HyperCube::from_samples(dims, samples)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_pixels(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.05;
                Vector::from_vec(vec![
                    t + 0.01 * (i as f64).sin(),
                    2.0 * t + 0.01 * (i as f64).cos(),
                    -t + 0.02 * ((i * 3) as f64).sin(),
                    0.5 * t,
                ])
            })
            .collect()
    }

    #[test]
    fn derive_transform_produces_requested_components() {
        let spec = derive_transform(&correlated_pixels(100), &PctConfig::paper()).unwrap();
        assert_eq!(spec.components(), 3);
        assert_eq!(spec.bands(), 4);
        assert_eq!(spec.eigenvalues.len(), 4);
    }

    #[test]
    fn derive_transform_rejects_empty_unique_set() {
        assert!(derive_transform(&[], &PctConfig::paper()).is_err());
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let spec = derive_transform(&correlated_pixels(80), &PctConfig::paper()).unwrap();
        for w in spec.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn first_component_captures_most_variance_of_correlated_data() {
        let spec = derive_transform(&correlated_pixels(200), &PctConfig::paper()).unwrap();
        let total: f64 = spec.eigenvalues.iter().sum();
        assert!(spec.eigenvalues[0] / total > 0.95);
    }

    #[test]
    fn transformed_components_are_decorrelated() {
        let pixels = correlated_pixels(300);
        let spec = derive_transform(&pixels, &PctConfig::paper()).unwrap();
        let transformed: Vec<Vec<f64>> = pixels
            .iter()
            .map(|p| transform_pixel(&spec, p.as_slice()))
            .collect();
        // Empirical covariance between component 0 and 1 should be ~0
        // relative to the variances.
        let n = transformed.len() as f64;
        let mean0: f64 = transformed.iter().map(|t| t[0]).sum::<f64>() / n;
        let mean1: f64 = transformed.iter().map(|t| t[1]).sum::<f64>() / n;
        let cov01: f64 = transformed
            .iter()
            .map(|t| (t[0] - mean0) * (t[1] - mean1))
            .sum::<f64>()
            / n;
        let var0: f64 = transformed
            .iter()
            .map(|t| (t[0] - mean0).powi(2))
            .sum::<f64>()
            / n;
        let var1: f64 = transformed
            .iter()
            .map(|t| (t[1] - mean1).powi(2))
            .sum::<f64>()
            / n;
        let denom = (var0 * var1).sqrt();
        if denom > 1e-12 {
            assert!(
                cov01.abs() / denom < 0.05,
                "components still correlated: {}",
                cov01 / denom
            );
        }
    }

    #[test]
    fn transform_of_mean_pixel_is_zero() {
        let pixels = correlated_pixels(60);
        let spec = derive_transform(&pixels, &PctConfig::paper()).unwrap();
        let projected = transform_pixel(&spec, spec.mean.as_slice());
        for c in projected {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn transform_cube_maps_each_pixel_independently() {
        let pixels = correlated_pixels(12);
        let spec = derive_transform(&pixels, &PctConfig::paper()).unwrap();
        let dims = CubeDims::new(4, 3, 4);
        let samples: Vec<f64> = pixels.iter().flat_map(|p| p.as_slice().to_vec()).collect();
        let cube = HyperCube::from_samples(dims, samples).unwrap();
        let out = transform_cube(&spec, &cube).unwrap();
        assert_eq!(out.bands(), 3);
        assert_eq!(out.pixels(), 12);
        let direct = transform_pixel(&spec, cube.pixel(2, 1).unwrap());
        assert_eq!(out.pixel(2, 1).unwrap(), direct.as_slice());
    }

    #[test]
    fn transform_view_matches_transform_cube() {
        use std::sync::Arc;
        let pixels = correlated_pixels(12);
        let spec = derive_transform(&pixels, &PctConfig::paper()).unwrap();
        let dims = CubeDims::new(4, 3, 4);
        let samples: Vec<f64> = pixels.iter().flat_map(|p| p.as_slice().to_vec()).collect();
        let cube = Arc::new(HyperCube::from_samples(dims, samples).unwrap());
        let whole = transform_cube(&spec, &cube).unwrap();
        let view = CubeView::window(Arc::clone(&cube), 0, 1, 4, 2).unwrap();
        let part = transform_view(&spec, &view).unwrap();
        assert_eq!(part, whole.window(0, 1, 4, 2).unwrap());
        let mismatched = CubeView::full(cube).with_band_window(0, 2).unwrap();
        assert!(transform_view(&spec, &mismatched).is_err());
    }

    #[test]
    fn transform_cube_rejects_band_mismatch() {
        let spec = derive_transform(&correlated_pixels(10), &PctConfig::paper()).unwrap();
        let cube = HyperCube::zeros(CubeDims::new(2, 2, 7));
        assert!(transform_cube(&spec, &cube).is_err());
    }

    #[test]
    fn finalize_transform_respects_component_cap() {
        let pixels = correlated_pixels(50);
        let mean = mean_vector(&pixels).unwrap();
        let mut acc = CovarianceAccumulator::new(mean.clone());
        acc.push_all(&pixels).unwrap();
        let cov = acc.finalize().unwrap();
        let config = PctConfig {
            output_components: 10,
            ..PctConfig::paper()
        };
        let spec = finalize_transform(mean, &cov, &config).unwrap();
        // Only 4 bands exist, so at most 4 components.
        assert_eq!(spec.components(), 4);
    }
}
