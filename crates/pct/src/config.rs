//! Pipeline configuration and output types.

use hsi::RgbImage;
use serde::{Deserialize, Serialize};

/// Configuration shared by every implementation of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PctConfig {
    /// Spectral-angle screening threshold in radians: a pixel joins the
    /// unique set only if its angle to every existing unique vector exceeds
    /// this value.  Smaller thresholds keep more pixels (more faithful
    /// statistics, more work); larger thresholds keep fewer.
    pub screening_angle_rad: f64,
    /// Number of principal components produced per pixel in step 7.  The
    /// human-centred colour mapping of step 8 consumes the first three.
    pub output_components: usize,
}

impl PctConfig {
    /// The configuration used throughout the reproduction: a 5-degree
    /// screening angle and three output components.
    pub fn paper() -> Self {
        Self {
            screening_angle_rad: 5.0_f64.to_radians(),
            output_components: 3,
        }
    }

    /// Disables screening entirely (every pixel is "unique"), which reduces
    /// the pipeline to a plain PCT — the baseline the paper's spectral
    /// screening is compared against conceptually.
    pub fn without_screening() -> Self {
        Self {
            screening_angle_rad: 0.0,
            output_components: 3,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.output_components == 0 {
            return Err(crate::PctError::InvalidConfig(
                "output_components must be at least 1".to_string(),
            ));
        }
        if !(0.0..=std::f64::consts::PI).contains(&self.screening_angle_rad) {
            return Err(crate::PctError::InvalidConfig(format!(
                "screening angle {} outside [0, pi]",
                self.screening_angle_rad
            )));
        }
        Ok(())
    }
}

impl Default for PctConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The result of running the fusion pipeline on a cube.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionOutput {
    /// The fused colour-composite image (the paper's Figure 3 artefact).
    pub image: RgbImage,
    /// Eigenvalues of the screened covariance matrix, sorted descending —
    /// the per-component variances.
    pub eigenvalues: Vec<f64>,
    /// Number of pixel vectors that survived spectral screening (size of the
    /// merged unique set).
    pub unique_count: usize,
    /// Number of pixels processed.
    pub pixels: usize,
}

impl FusionOutput {
    /// Fraction of total variance captured by the first `k` principal
    /// components — the energy-compaction figure of merit for the PCT.
    pub fn variance_fraction(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().filter(|v| **v > 0.0).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let leading: f64 = self.eigenvalues.iter().filter(|v| **v > 0.0).take(k).sum();
        leading / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert!(PctConfig::paper().validate().is_ok());
        assert!(PctConfig::without_screening().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = PctConfig::paper();
        c.output_components = 0;
        assert!(c.validate().is_err());
        let mut c = PctConfig::paper();
        c.screening_angle_rad = -1.0;
        assert!(c.validate().is_err());
        let mut c = PctConfig::paper();
        c.screening_angle_rad = 4.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn variance_fraction_sums_to_one_over_all_components() {
        let out = FusionOutput {
            image: RgbImage::black(1, 1),
            eigenvalues: vec![8.0, 1.0, 1.0],
            unique_count: 10,
            pixels: 1,
        };
        assert!((out.variance_fraction(1) - 0.8).abs() < 1e-12);
        assert!((out.variance_fraction(3) - 1.0).abs() < 1e-12);
        assert!((out.variance_fraction(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_fraction_ignores_negative_round_off_eigenvalues() {
        let out = FusionOutput {
            image: RgbImage::black(1, 1),
            eigenvalues: vec![4.0, -1e-15],
            unique_count: 1,
            pixels: 1,
        };
        assert!((out.variance_fraction(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_fraction_of_degenerate_output_is_zero() {
        let out = FusionOutput {
            image: RgbImage::black(1, 1),
            eigenvalues: vec![0.0, 0.0],
            unique_count: 0,
            pixels: 0,
        };
        assert_eq!(out.variance_fraction(1), 0.0);
    }
}
