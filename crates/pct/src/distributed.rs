//! The manager/worker distributed implementation on real threads.
//!
//! This is the paper's message-passing algorithm (§3) on the `scp`
//! substrate.  The manager partitions the cube into sub-cubes, distributes
//! screening tasks through a work queue (a worker is sent its next task as
//! soon as its previous result arrives, which is the "overlap the request
//! for its next sub-problem with the calculation" optimisation), merges the
//! unique sets, computes the statistics sequentially (steps 3, 5, 6), then
//! distributes covariance and transform/colour tasks the same way, and
//! finally reassembles the colour strips into the fused image.

use crate::colormap::{map_pixel, ComponentScale};
use crate::config::{FusionOutput, PctConfig};
use crate::messages::{PctMessage, TaskId};
use crate::pipeline::{derive_transform, finalize_transform, TransformSpec};
use crate::screening::{merge_unique_sets, screen_pixels, screen_pixels_seeded};
use crate::{PctError, Result};
use hsi::partition::{GranularityPolicy, SubCubeSpec};
use hsi::{CubeView, HyperCube, RgbImage};
use linalg::covariance::{mean_vector, CovarianceAccumulator};
use linalg::{Matrix, SymMatrix, Vector};
use scp::{CommGraph, Runtime, RuntimeConfig, ThreadContext};
use std::collections::HashMap;
use std::sync::Arc;

/// Name used by the manager thread.
pub const MANAGER: &str = "manager";

/// Routing name of worker `i`.
pub fn worker_name(i: usize) -> String {
    format!("worker{i}")
}

/// The distributed fusion pipeline.
#[derive(Debug, Clone)]
pub struct DistributedPct {
    config: PctConfig,
    workers: usize,
    granularity: GranularityPolicy,
}

impl DistributedPct {
    /// Creates a distributed pipeline with `workers` worker threads and one
    /// sub-cube per worker.
    pub fn new(config: PctConfig, workers: usize) -> Self {
        Self {
            config,
            workers: workers.max(1),
            granularity: GranularityPolicy::PerWorkerMultiple(2),
        }
    }

    /// Overrides the granularity policy (Figure 5's experimental knob).
    pub fn with_granularity(mut self, granularity: GranularityPolicy) -> Self {
        self.granularity = granularity;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the full pipeline on a borrowed cube.  The cube is copied once
    /// into shared storage at this ingestion boundary; callers that already
    /// hold an `Arc` use [`DistributedPct::run_shared`] and copy nothing.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run_shared(&Arc::new(cube.clone()))
    }

    /// Runs the full pipeline on real threads over shared storage: every
    /// task payload is a zero-copy [`CubeView`] window of `cube`.
    pub fn run_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.config.validate()?;
        let worker_names: Vec<String> = (0..self.workers).map(worker_name).collect();
        let graph = CommGraph::manager_worker(MANAGER, &worker_names);
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig {
            validate_channels: true,
            graph,
        });
        let mut manager_ctx = runtime.context(MANAGER)?;

        // Spawn the workers.
        let handles: Vec<_> = worker_names
            .iter()
            .map(|name| {
                runtime.spawn(name.clone(), move |ctx: ThreadContext<PctMessage>| {
                    worker_loop(ctx)
                })
            })
            .collect::<scp::Result<Vec<_>>>()?;

        let result = run_manager(
            &mut manager_ctx,
            &worker_names,
            cube,
            &self.config,
            self.granularity,
        );

        // Always shut workers down, even if the manager phase failed.
        for name in &worker_names {
            let _ = manager_ctx.send(name, PctMessage::Shutdown);
        }
        for handle in handles {
            handle.join();
        }
        result
    }
}

/// The worker side of the protocol: a reactive loop that services tasks until
/// told to shut down.  Exposed so the resilient implementation can reuse the
/// exact same task handling inside replicated members.
pub fn handle_task(msg: PctMessage) -> Option<PctMessage> {
    match msg {
        PctMessage::ScreenTask {
            task,
            view,
            threshold_rad,
        } => {
            let unique = screen_pixels(&view.pixel_vectors(), threshold_rad);
            Some(PctMessage::UniqueSet { task, unique })
        }
        PctMessage::CovarianceTask { task, mean, pixels } => {
            let bands = mean.len();
            let mut acc = CovarianceAccumulator::new(mean);
            acc.push_all(&pixels).expect("uniform band count");
            Some(PctMessage::CovarianceSum {
                task,
                packed: acc.raw_sum().packed().to_vec(),
                bands,
                count: acc.count(),
            })
        }
        PctMessage::TransformTask {
            task,
            view,
            mean,
            transform,
            scales,
        } => Some(transform_and_map(task, &view, &mean, &transform, &scales)),
        PctMessage::ScreenSeededTask {
            task,
            view,
            seed,
            threshold_rad,
        } => {
            let accepted = screen_pixels_seeded(&seed, &view.pixel_vectors(), threshold_rad);
            Some(PctMessage::SeededUnique { task, accepted })
        }
        PctMessage::DeriveTask {
            task,
            unique,
            config,
        } => Some(match derive_transform(&unique, &config) {
            Ok(spec) => PctMessage::DerivedTransform {
                task,
                mean: spec.mean,
                transform: spec.transform,
                eigenvalues: spec.eigenvalues,
            },
            Err(e) => PctMessage::TaskFailed {
                task,
                error: e.to_string(),
            },
        }),
        // Results, heartbeats and shutdown are not tasks.
        _ => None,
    }
}

/// Steps 7–8 for one sub-cube view, producing a colour strip.  The pixels
/// are read straight out of the shared storage; nothing is copied.
fn transform_and_map(
    task: TaskId,
    view: &CubeView,
    mean: &Vector,
    transform: &Matrix,
    scales: &[(f64, f64)],
) -> PctMessage {
    let spec = TransformSpec {
        mean: mean.clone(),
        transform: transform.clone(),
        eigenvalues: Vec::new(),
    };
    let scale_structs: Vec<ComponentScale> = scales
        .iter()
        .map(|&(min, max)| ComponentScale { min, max })
        .collect();
    let width = view.width();
    let rows = view.height();
    let mut rgb = Vec::with_capacity(width * rows * 3);
    for pixel in view.iter_pixels() {
        let projected = crate::pipeline::transform_pixel(&spec, pixel);
        let mut components = [128.0_f64; 3];
        for (c, slot) in components.iter_mut().enumerate() {
            if c < projected.len() && c < scale_structs.len() {
                *slot = scale_structs[c].to_byte_range(projected[c]);
            }
        }
        rgb.extend_from_slice(&map_pixel(components));
    }
    PctMessage::RgbStrip {
        task,
        row_start: view.row_start(),
        rows,
        width,
        rgb,
    }
}

/// The plain (non-replicated) worker loop: services tasks until shut down.
/// Exposed so the service layer's long-lived pool can run the same loop on
/// its standard (non-resilient) workers.
pub fn worker_loop(mut ctx: ThreadContext<PctMessage>) {
    loop {
        let Ok(envelope) = ctx.recv() else { return };
        match envelope.payload {
            PctMessage::Shutdown => return,
            msg => {
                if let Some(reply) = handle_task(msg) {
                    // The manager may already have shut down if it errored;
                    // a failed send just ends this worker.
                    if ctx.send(&envelope.from, reply).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

/// Work-queue distribution of a set of tasks over the workers: every worker
/// gets one task immediately; each completed result triggers dispatch of the
/// next pending task to the worker that just finished.
fn distribute<T, F, G>(
    ctx: &mut ThreadContext<PctMessage>,
    worker_names: &[String],
    tasks: Vec<PctMessage>,
    mut on_result: F,
    mut extract: G,
) -> Result<Vec<T>>
where
    F: FnMut(&PctMessage) -> bool,
    G: FnMut(PctMessage) -> Option<T>,
{
    let mut pending: std::collections::VecDeque<PctMessage> = tasks.into();
    let total = pending.len();
    let mut results: Vec<(Option<usize>, T)> = Vec::with_capacity(total);
    let mut outstanding: HashMap<String, usize> = HashMap::new();

    // Prime every worker with one task (two would also be reasonable; one
    // keeps the protocol simple while the work queue still provides overlap
    // because task grain is finer than a worker's full share).
    for name in worker_names {
        if let Some(task) = pending.pop_front() {
            ctx.send(name, task)?;
            *outstanding.entry(name.clone()).or_insert(0) += 1;
        }
    }

    let mut completed = 0;
    while completed < total {
        let envelope = ctx.recv()?;
        let from = envelope.from.clone();
        if !on_result(&envelope.payload) {
            // Not a result message (e.g. a stray heartbeat); ignore.
            continue;
        }
        completed += 1;
        let task_id = envelope.payload.task();
        if let Some(value) = extract(envelope.payload) {
            results.push((task_id, value));
        }
        if let Some(task) = pending.pop_front() {
            ctx.send(&from, task)?;
        } else if let Some(count) = outstanding.get_mut(&from) {
            *count = count.saturating_sub(1);
        }
    }
    // Results arrive in completion order, which depends on thread scheduling;
    // sort them back into task order so the manager's subsequent sequential
    // steps (unique-set merge, covariance accumulation) are deterministic and
    // independent of how the run was scheduled.
    results.sort_by_key(|(task, _)| *task);
    Ok(results.into_iter().map(|(_, value)| value).collect())
}

/// The manager side of the protocol, phases 1–3.
fn run_manager(
    ctx: &mut ThreadContext<PctMessage>,
    worker_names: &[String],
    cube: &Arc<HyperCube>,
    config: &PctConfig,
    granularity: GranularityPolicy,
) -> Result<FusionOutput> {
    let specs: Vec<SubCubeSpec> =
        hsi::partition::partition_for_workers(cube.dims(), worker_names.len(), granularity)?;

    // ---- Phase 1: screening (steps 1–2) ------------------------------------------
    let screen_tasks: Vec<PctMessage> = specs
        .iter()
        .map(|spec| {
            Ok(PctMessage::ScreenTask {
                task: spec.id,
                view: spec.view(cube)?,
                threshold_rad: config.screening_angle_rad,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let unique_sets = distribute(
        ctx,
        worker_names,
        screen_tasks,
        |msg| matches!(msg, PctMessage::UniqueSet { .. }),
        |msg| match msg {
            PctMessage::UniqueSet { unique, .. } => Some(unique),
            _ => None,
        },
    )?;
    let unique = merge_unique_sets(unique_sets, config.screening_angle_rad);
    let unique_count = unique.len();
    if unique.is_empty() {
        return Err(PctError::InvalidConfig(
            "screening produced an empty unique set".into(),
        ));
    }

    // ---- Phase 2: statistics (steps 3–6) ------------------------------------------
    let mean = mean_vector(&unique)?;
    let bands = mean.len();
    let chunk = unique.len().div_ceil(worker_names.len());
    let cov_tasks: Vec<PctMessage> = unique
        .chunks(chunk.max(1))
        .enumerate()
        .map(|(i, pixels)| PctMessage::CovarianceTask {
            task: i,
            mean: mean.clone(),
            pixels: pixels.to_vec(),
        })
        .collect();
    let partials = distribute(
        ctx,
        worker_names,
        cov_tasks,
        |msg| matches!(msg, PctMessage::CovarianceSum { .. }),
        |msg| match msg {
            PctMessage::CovarianceSum {
                packed,
                bands,
                count,
                ..
            } => Some((packed, bands, count)),
            _ => None,
        },
    )?;
    let mut sum = SymMatrix::zeros(bands);
    let mut total_count = 0u64;
    for (packed, b, count) in partials {
        if b != bands {
            return Err(PctError::InvalidConfig(format!(
                "worker returned a {b}-band covariance sum for a {bands}-band image"
            )));
        }
        sum.add_assign_sym(&SymMatrix::from_packed(b, packed)?)?;
        total_count += count;
    }
    if total_count == 0 {
        return Err(PctError::InvalidConfig(
            "covariance phase accumulated no pixels".into(),
        ));
    }
    sum.scale_in_place(1.0 / total_count as f64);
    let spec = finalize_transform(mean, &sum, config)?;
    let scales: Vec<(f64, f64)> = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3)
        .into_iter()
        .map(|s| (s.min, s.max))
        .collect();

    // ---- Phase 3: transform + colour (steps 7–8) ----------------------------------
    let transform_tasks: Vec<PctMessage> = specs
        .iter()
        .map(|sub_spec| {
            Ok(PctMessage::TransformTask {
                task: sub_spec.id,
                view: sub_spec.view(cube)?,
                mean: spec.mean.clone(),
                transform: spec.transform.clone(),
                scales: scales.clone(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let strips = distribute(
        ctx,
        worker_names,
        transform_tasks,
        |msg| matches!(msg, PctMessage::RgbStrip { .. }),
        |msg| match msg {
            PctMessage::RgbStrip {
                row_start,
                rows,
                width,
                rgb,
                ..
            } => Some((row_start, rows, width, rgb)),
            _ => None,
        },
    )?;

    let image = assemble_image(cube.width(), cube.height(), strips)?;
    Ok(FusionOutput {
        image,
        eigenvalues: spec.eigenvalues,
        unique_count,
        pixels: cube.pixels(),
    })
}

/// Reassembles worker colour strips into the final image.
pub fn assemble_image(
    width: usize,
    height: usize,
    strips: Vec<(usize, usize, usize, Vec<u8>)>,
) -> Result<RgbImage> {
    let mut data = vec![0u8; width * height * 3];
    for (row_start, rows, strip_width, rgb) in strips {
        if strip_width != width || rgb.len() != rows * width * 3 {
            return Err(PctError::InvalidConfig("malformed colour strip".into()));
        }
        let offset = row_start * width * 3;
        data[offset..offset + rgb.len()].copy_from_slice(&rgb);
    }
    Ok(RgbImage::from_raw(width, height, data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialPct;
    use hsi::partition::partition_rows;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(5))
            .unwrap()
            .generate()
    }

    #[test]
    fn distributed_matches_sequential_output_closely() {
        let cube = small_scene();
        let seq = SequentialPct::default().run(&cube).unwrap();
        let dist = DistributedPct::new(PctConfig::paper(), 4)
            .run(&cube)
            .unwrap();
        assert_eq!(dist.pixels, seq.pixels);
        let diff = seq.image.mean_abs_diff(&dist.image).unwrap();
        assert!(
            diff < 10.0,
            "distributed output diverges: mean abs diff {diff}"
        );
        assert!(dist.variance_fraction(3) > 0.95);
    }

    #[test]
    fn worker_count_does_not_change_the_image_materially() {
        let cube = small_scene();
        let one = DistributedPct::new(PctConfig::paper(), 1)
            .run(&cube)
            .unwrap();
        let four = DistributedPct::new(PctConfig::paper(), 4)
            .run(&cube)
            .unwrap();
        let diff = one.image.mean_abs_diff(&four.image).unwrap();
        assert!(diff < 10.0, "worker-count sensitivity {diff}");
    }

    #[test]
    fn granularity_policy_does_not_change_the_image_materially() {
        let cube = small_scene();
        let coarse = DistributedPct::new(PctConfig::paper(), 2)
            .with_granularity(GranularityPolicy::OnePerWorker)
            .run(&cube)
            .unwrap();
        let fine = DistributedPct::new(PctConfig::paper(), 2)
            .with_granularity(GranularityPolicy::PerWorkerMultiple(3))
            .run(&cube)
            .unwrap();
        let diff = coarse.image.mean_abs_diff(&fine.image).unwrap();
        assert!(diff < 10.0, "granularity sensitivity {diff}");
    }

    #[test]
    fn handle_task_screen_returns_unique_set() {
        let cube = Arc::new(small_scene());
        let spec = partition_rows(cube.dims(), 4).unwrap()[0];
        let view = spec.view(&cube).unwrap();
        let reply = handle_task(PctMessage::ScreenTask {
            task: 9,
            view,
            threshold_rad: PctConfig::paper().screening_angle_rad,
        })
        .unwrap();
        match reply {
            PctMessage::UniqueSet { task, unique } => {
                assert_eq!(task, 9);
                assert!(!unique.is_empty());
                assert!(unique.len() < spec.pixels());
            }
            other => panic!("unexpected reply {}", other.kind()),
        }
    }

    #[test]
    fn handle_task_seeded_screening_continues_the_chain() {
        let cube = Arc::new(small_scene());
        let threshold = PctConfig::paper().screening_angle_rad;
        let specs = partition_rows(cube.dims(), 2).unwrap();
        let first = handle_task(PctMessage::ScreenSeededTask {
            task: 0,
            view: specs[0].view(&cube).unwrap(),
            seed: vec![],
            threshold_rad: threshold,
        })
        .unwrap();
        let PctMessage::SeededUnique { accepted: seed, .. } = first else {
            panic!("unexpected reply");
        };
        let second = handle_task(PctMessage::ScreenSeededTask {
            task: 1,
            view: specs[1].view(&cube).unwrap(),
            seed: seed.clone(),
            threshold_rad: threshold,
        })
        .unwrap();
        let PctMessage::SeededUnique { accepted, .. } = second else {
            panic!("unexpected reply");
        };
        // The chained result is exactly whole-image screening.
        let mut chained = seed;
        chained.extend(accepted);
        assert_eq!(chained, screen_pixels(&cube.pixel_vectors(), threshold));
    }

    #[test]
    fn task_construction_and_cloning_copy_no_payload_bytes() {
        let cube = Arc::new(small_scene());
        let specs = partition_rows(cube.dims(), 4).unwrap();
        let ledger = hsi::CloneLedger::snapshot();
        let tasks: Vec<PctMessage> = specs
            .iter()
            .map(|spec| PctMessage::ScreenTask {
                task: spec.id,
                view: spec.view(&cube).unwrap(),
                threshold_rad: 0.1,
            })
            .collect();
        // Cloning (what a replica-group fan-out does per member) shares the
        // storage: the clone ledger stays untouched.
        let clones = tasks.clone();
        assert_eq!(ledger.delta(), 0);
        assert!(clones.iter().all(|t| t.payload_bytes() > 0));
    }

    #[test]
    fn handle_task_derive_matches_direct_derivation() {
        let cube = small_scene();
        let config = PctConfig::paper();
        let unique = screen_pixels(&cube.pixel_vectors(), config.screening_angle_rad);
        let reply = handle_task(PctMessage::DeriveTask {
            task: 4,
            unique: unique.clone(),
            config,
        })
        .unwrap();
        let spec = derive_transform(&unique, &config).unwrap();
        match reply {
            PctMessage::DerivedTransform {
                task,
                mean,
                transform,
                eigenvalues,
            } => {
                assert_eq!(task, 4);
                assert_eq!(mean, spec.mean);
                assert_eq!(transform, spec.transform);
                assert_eq!(eigenvalues, spec.eigenvalues);
            }
            other => panic!("unexpected reply {}", other.kind()),
        }
    }

    #[test]
    fn handle_task_derive_reports_failure_on_empty_unique_set() {
        let reply = handle_task(PctMessage::DeriveTask {
            task: 5,
            unique: vec![],
            config: PctConfig::paper(),
        })
        .unwrap();
        assert!(matches!(reply, PctMessage::TaskFailed { task: 5, .. }));
    }

    #[test]
    fn handle_task_ignores_non_task_messages() {
        assert!(handle_task(PctMessage::Heartbeat).is_none());
        assert!(handle_task(PctMessage::Shutdown).is_none());
        assert!(handle_task(PctMessage::UniqueSet {
            task: 0,
            unique: vec![]
        })
        .is_none());
    }

    #[test]
    fn assemble_image_rejects_malformed_strips() {
        assert!(assemble_image(4, 4, vec![(0, 2, 3, vec![0; 18])]).is_err());
        assert!(assemble_image(4, 4, vec![(0, 2, 4, vec![0; 5])]).is_err());
        let ok = assemble_image(4, 4, vec![(0, 4, 4, vec![7; 48])]).unwrap();
        assert_eq!(ok.get(3, 3).unwrap(), [7, 7, 7]);
    }
}
