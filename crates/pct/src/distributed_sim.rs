//! The simulator-driven implementation used to regenerate Figures 4 and 5.
//!
//! The paper's performance numbers come from 16 Sun workstations on 100BaseT
//! — hardware this reproduction substitutes with the `netsim` discrete-event
//! cluster.  The manager and workers here are `netsim` actors that execute
//! the *same protocol* as the real-thread implementation (work-queue
//! distribution of screening, covariance and transform tasks, sequential
//! merge/eigen at the manager), but instead of crunching real pixels they
//! charge the calibrated [`CostModel`] for compute time and the
//! [`NetworkModel`] for message bytes.  Replication is modelled faithfully:
//! every member of a replica group receives every task, members share the
//! worker nodes' CPUs, results are deduplicated at the manager, and the
//! group protocols add the ~10 % processing overhead plus acknowledgement
//! traffic described by [`OverheadModel`].

use crate::{PctError, Result};
use hsi::partition::{partition_rows, GranularityPolicy};
use hsi::CubeDims;
use netsim::{
    Actor, ActorContext, ActorId, ClusterSim, CostModel, Duration, FaultPlan, NetworkModel, NodeId,
    NodeSpec, SimConfig,
};
use resilience::OverheadModel;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Parameters of one simulated fusion run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Image dimensions (the paper's evaluation cube is 320×320×105).
    pub dims: CubeDims,
    /// Number of worker processors (the x-axis of Figures 4 and 5).
    pub workers: usize,
    /// Sub-cube granularity (the Figure 5 knob).
    pub granularity: GranularityPolicy,
    /// Resiliency configuration (replication level and protocol overheads).
    pub overhead: OverheadModel,
    /// LAN model.
    pub network: NetworkModel,
    /// Compute cost model.
    pub cost: CostModel,
}

impl SimParams {
    /// The Figure 4 configuration for a given processor count, with or
    /// without level-2 resiliency.
    pub fn figure4(workers: usize, resilient: bool) -> Self {
        Self {
            dims: CubeDims::paper_eval(),
            workers,
            granularity: GranularityPolicy::PerWorkerMultiple(2),
            overhead: if resilient {
                OverheadModel::paper_level_2()
            } else {
                OverheadModel::none()
            },
            network: NetworkModel::paper_lan(),
            cost: CostModel::paper(),
        }
    }

    /// The Figure 5 configuration: no resiliency, varying granularity.
    pub fn figure5(workers: usize, subcubes_per_worker: usize) -> Self {
        Self {
            dims: CubeDims::paper_eval(),
            workers,
            granularity: GranularityPolicy::PerWorkerMultiple(subcubes_per_worker),
            overhead: OverheadModel::none(),
            network: NetworkModel::paper_lan(),
            cost: CostModel::paper(),
        }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Worker processors used.
    pub workers: usize,
    /// Replication level of the run.
    pub replication_level: usize,
    /// Number of sub-cubes the image was decomposed into.
    pub sub_cubes: usize,
    /// Simulated wall-clock time of the whole fusion, in seconds.
    pub elapsed_secs: f64,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes that crossed the network.
    pub network_bytes: u64,
}

impl SimReport {
    /// Speed-up relative to a reference (typically the 1-worker,
    /// no-resiliency run).
    pub fn speedup_vs(&self, reference_secs: f64) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        reference_secs / self.elapsed_secs
    }
}

/// Protocol messages of the simulated run.  Payload *sizes* are what the
/// network model charges; the enum itself only carries identifiers.
#[derive(Debug, Clone, PartialEq)]
enum SimMsg {
    ScreenTask { task: usize, pixels: usize },
    UniqueSet { task: usize, unique: usize },
    CovTask { task: usize, vectors: usize },
    CovSum { task: usize },
    TransformTask { task: usize, pixels: usize },
    RgbPart { task: usize },
    Ack,
}

const TAG_MERGE: u64 = 1;
const TAG_EIGEN: u64 = 2;
const TAG_WORKER_TASK: u64 = 100;

/// A worker member actor: services tasks one at a time, queueing any that
/// arrive while it is busy (which is how over-decomposition overlaps the
/// transfer of the next sub-problem with computation on the current one).
struct WorkerActor {
    manager: ActorId,
    cost: CostModel,
    overhead: OverheadModel,
    bands: usize,
    queue: VecDeque<SimMsg>,
    busy: bool,
    current: Option<SimMsg>,
}

impl WorkerActor {
    fn new(manager: ActorId, cost: CostModel, overhead: OverheadModel, bands: usize) -> Self {
        Self {
            manager,
            cost,
            overhead,
            bands,
            queue: VecDeque::new(),
            busy: false,
            current: None,
        }
    }

    fn start_next(&mut self, ctx: &mut ActorContext<'_, SimMsg>) {
        if self.busy {
            return;
        }
        let Some(task) = self.queue.pop_front() else {
            return;
        };
        let work = match &task {
            SimMsg::ScreenTask { pixels, .. } => self.cost.screening_work(*pixels, self.bands),
            SimMsg::CovTask { vectors, .. } => self.cost.covariance_work(*vectors, self.bands),
            SimMsg::TransformTask { pixels, .. } => {
                self.cost.transform_work(*pixels, self.bands) + self.cost.colormap_work(*pixels)
            }
            _ => Duration::ZERO,
        };
        // Every task also pays the fixed SCPlib marshalling overhead, and the
        // resiliency protocols add their fractional processing cost on top.
        let work =
            (work + self.cost.per_task_overhead()).mul_f64(self.overhead.compute_multiplier());
        self.busy = true;
        self.current = Some(task);
        ctx.compute(TAG_WORKER_TASK, work);
    }
}

impl Actor<SimMsg> for WorkerActor {
    fn on_message(&mut self, ctx: &mut ActorContext<'_, SimMsg>, _from: ActorId, msg: SimMsg) {
        match msg {
            SimMsg::ScreenTask { .. } | SimMsg::CovTask { .. } | SimMsg::TransformTask { .. } => {
                self.queue.push_back(msg);
                self.start_next(ctx);
            }
            _ => {}
        }
    }

    fn on_compute_done(&mut self, ctx: &mut ActorContext<'_, SimMsg>, _tag: u64) {
        let finished = self
            .current
            .take()
            .expect("compute completion implies a task");
        self.busy = false;
        let (reply, bytes) = match finished {
            SimMsg::ScreenTask { task, pixels } => {
                let unique = self.cost.unique_pixels(pixels);
                (
                    SimMsg::UniqueSet { task, unique },
                    self.cost.unique_set_bytes(unique, self.bands),
                )
            }
            SimMsg::CovTask { task, .. } => (
                SimMsg::CovSum { task },
                self.cost.covariance_bytes(self.bands),
            ),
            SimMsg::TransformTask { task, pixels } => {
                (SimMsg::RgbPart { task }, self.cost.result_bytes(pixels))
            }
            other => unreachable!("unexpected current task {other:?}"),
        };
        ctx.send(self.manager, reply, bytes);
        if self.overhead.is_resilient() {
            // Group-protocol acknowledgement traffic.
            ctx.send(
                self.manager,
                SimMsg::Ack,
                self.overhead.control_message_bytes,
            );
        }
        self.start_next(ctx);
    }
}

/// Phases of the manager's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Screening,
    MergeCompute,
    Covariance,
    EigenCompute,
    Transform,
    Done,
}

/// Shared cell the manager writes its completion state into, read by the
/// driver after the simulation finishes.
type Completion = Rc<RefCell<Option<f64>>>;

/// The manager actor: drives the three distributed phases and the two
/// sequential compute blocks, exactly mirroring the real-thread manager.
struct ManagerActor {
    cost: CostModel,
    bands: usize,
    /// Group id -> member actor ids.
    groups: Vec<Vec<ActorId>>,
    /// Sub-cube pixel counts, indexed by task id (used for both the
    /// screening and transform phases).
    subcube_pixels: Vec<usize>,
    phase: Phase,
    pending: VecDeque<usize>,
    outstanding: HashMap<usize, usize>,
    completed: HashSet<usize>,
    total_unique: usize,
    cov_chunks: Vec<usize>,
    completion: Completion,
    transform_broadcast_done: HashSet<usize>,
    /// Which group screened each sub-cube.  Workers keep the sub-cubes they
    /// screened, so the step-7 transform task for a sub-cube must go to the
    /// group that already holds it — only the small transform broadcast
    /// crosses the network again, exactly as in the paper's protocol.
    screen_owner: HashMap<usize, usize>,
}

impl ManagerActor {
    fn send_task(&mut self, ctx: &mut ActorContext<'_, SimMsg>, group: usize, task: usize) {
        let msg_and_bytes = match self.phase {
            Phase::Screening => {
                let pixels = self.subcube_pixels[task];
                (
                    SimMsg::ScreenTask { task, pixels },
                    self.cost.subcube_bytes(pixels, self.bands),
                )
            }
            Phase::Covariance => {
                let vectors = self.cov_chunks[task];
                (
                    SimMsg::CovTask { task, vectors },
                    self.cost.unique_set_bytes(vectors, self.bands),
                )
            }
            Phase::Transform => {
                let pixels = self.subcube_pixels[task];
                // The worker already holds the sub-cube it screened; only a
                // small control message is needed, plus the mean/transform
                // broadcast the first time this group is addressed.
                let mut bytes = self.cost.control_bytes();
                if self.transform_broadcast_done.insert(group) {
                    bytes += self.cost.transform_broadcast_bytes(self.bands);
                }
                (SimMsg::TransformTask { task, pixels }, bytes)
            }
            _ => return,
        };
        let (msg, bytes) = msg_and_bytes;
        for member in self.groups[group].clone() {
            ctx.send(member, msg.clone(), bytes);
        }
        self.outstanding.insert(task, group);
    }

    /// Primes each group with up to two tasks (overlap), then relies on the
    /// one-new-task-per-result work queue.  Priming two tasks is what lets a
    /// worker overlap the transfer of its next sub-problem with computation
    /// on the current one when the decomposition is finer than one sub-cube
    /// per worker.
    fn prime(&mut self, ctx: &mut ActorContext<'_, SimMsg>) {
        for _depth in 0..2 {
            for group in 0..self.groups.len() {
                if let Some(task) = self.pending.pop_front() {
                    self.send_task(ctx, group, task);
                }
            }
        }
    }

    fn phase_tasks(&self) -> usize {
        match self.phase {
            Phase::Screening | Phase::Transform => self.subcube_pixels.len(),
            Phase::Covariance => self.cov_chunks.len(),
            _ => 0,
        }
    }

    fn begin_phase(&mut self, ctx: &mut ActorContext<'_, SimMsg>, phase: Phase) {
        self.phase = phase;
        self.completed.clear();
        self.outstanding.clear();
        if phase == Phase::Transform {
            // Every sub-cube already sits on the group that screened it, so
            // all transform tasks are dispatched immediately to their owners.
            self.pending.clear();
            for task in 0..self.phase_tasks() {
                let owner = self
                    .screen_owner
                    .get(&task)
                    .copied()
                    .unwrap_or(task % self.groups.len());
                self.send_task(ctx, owner, task);
            }
        } else {
            self.pending = (0..self.phase_tasks()).collect();
            self.prime(ctx);
        }
    }

    fn on_result(&mut self, ctx: &mut ActorContext<'_, SimMsg>, task: usize) {
        if !self.completed.insert(task) {
            return; // duplicate from a replica
        }
        let group = self.outstanding.remove(&task);
        if self.phase == Phase::Screening {
            if let Some(group) = group {
                self.screen_owner.insert(task, group);
            }
        }
        if let (Some(group), Some(next)) = (group, self.pending.pop_front()) {
            self.send_task(ctx, group, next);
        }
        if self.completed.len() == self.phase_tasks() {
            self.advance(ctx);
        }
    }

    fn advance(&mut self, ctx: &mut ActorContext<'_, SimMsg>) {
        match self.phase {
            Phase::Screening => {
                self.phase = Phase::MergeCompute;
                let work = self.cost.merge_work(self.total_unique, self.bands)
                    + self.cost.mean_work(self.total_unique, self.bands);
                ctx.compute(TAG_MERGE, work);
            }
            Phase::Covariance => {
                self.phase = Phase::EigenCompute;
                let work = self
                    .cost
                    .covariance_reduce_work(self.groups.len(), self.bands)
                    + self.cost.eigen_work(self.bands);
                ctx.compute(TAG_EIGEN, work);
            }
            Phase::Transform => {
                self.phase = Phase::Done;
                *self.completion.borrow_mut() = Some(ctx.now().as_secs_f64());
                ctx.halt();
            }
            _ => {}
        }
    }
}

impl Actor<SimMsg> for ManagerActor {
    fn on_start(&mut self, ctx: &mut ActorContext<'_, SimMsg>) {
        self.begin_phase(ctx, Phase::Screening);
    }

    fn on_message(&mut self, ctx: &mut ActorContext<'_, SimMsg>, _from: ActorId, msg: SimMsg) {
        // Results are only meaningful in their own phase: a late duplicate
        // from a replica whose phase already finished must not be mistaken
        // for a result of the current phase.
        match msg {
            SimMsg::UniqueSet { task, unique } => {
                if self.phase != Phase::Screening {
                    return;
                }
                if !self.completed.contains(&task) {
                    self.total_unique += unique;
                }
                self.on_result(ctx, task);
            }
            SimMsg::CovSum { task } if self.phase == Phase::Covariance => {
                self.on_result(ctx, task);
            }
            SimMsg::RgbPart { task } if self.phase == Phase::Transform => {
                self.on_result(ctx, task);
            }
            SimMsg::Ack => {}
            _ => {}
        }
    }

    fn on_compute_done(&mut self, ctx: &mut ActorContext<'_, SimMsg>, tag: u64) {
        match tag {
            TAG_MERGE => {
                // Build the covariance chunks from the merged unique set.
                let groups = self.groups.len();
                let per_chunk = self.total_unique.div_ceil(groups).max(1);
                self.cov_chunks = (0..groups)
                    .map(|i| per_chunk.min(self.total_unique.saturating_sub(i * per_chunk)))
                    .filter(|&c| c > 0)
                    .collect();
                if self.cov_chunks.is_empty() {
                    self.cov_chunks.push(1);
                }
                self.begin_phase(ctx, Phase::Covariance);
            }
            TAG_EIGEN => {
                self.transform_broadcast_done.clear();
                self.begin_phase(ctx, Phase::Transform);
            }
            _ => {}
        }
    }
}

/// Runs one simulated fusion and reports the virtual elapsed time.
pub fn simulate_fusion(params: &SimParams) -> Result<SimReport> {
    if params.workers == 0 {
        return Err(PctError::InvalidConfig(
            "at least one worker is required".into(),
        ));
    }
    let level = params.overhead.replication_level.max(1);
    let specs = partition_rows(
        params.dims,
        params.granularity.sub_cube_count(params.workers),
    )?;
    let subcube_pixels: Vec<usize> = specs.iter().map(|s| s.pixels()).collect();

    // Node 0 hosts the manager (the sensor); nodes 1..=workers host worker
    // members.  Member m of group g lives on node 1 + ((g + m) mod workers),
    // so level-2 replication puts two members on every worker node — the
    // "factor of two" resource cost the paper expects.
    let config = SimConfig {
        nodes: NodeSpec::uniform(params.workers + 1),
        network: params.network,
        faults: FaultPlan::none(),
        max_events: 10_000_000,
    };
    let mut sim: ClusterSim<SimMsg> = ClusterSim::new(config)?;
    let completion: Completion = Rc::new(RefCell::new(None));

    // The manager is registered first so workers can be handed its id; we
    // need the id before constructing it, so reserve id 0 by adding the
    // manager last and telling workers the id in advance is not possible —
    // instead add workers first and the manager afterwards, then fix up by
    // knowing the manager id deterministically: actor ids are assigned in
    // registration order, so the manager's id equals the number of workers
    // registered before it.
    let mut groups: Vec<Vec<ActorId>> = vec![Vec::new(); params.workers];
    let manager_id = ActorId(params.workers * level);
    for (g, group) in groups.iter_mut().enumerate() {
        for m in 0..level {
            let node = NodeId(1 + (g + m) % params.workers);
            let actor =
                WorkerActor::new(manager_id, params.cost, params.overhead, params.dims.bands);
            let id = sim.add_actor(node, Box::new(actor))?;
            group.push(id);
        }
    }
    let manager = ManagerActor {
        cost: params.cost,
        bands: params.dims.bands,
        groups,
        subcube_pixels: subcube_pixels.clone(),
        phase: Phase::Screening,
        pending: VecDeque::new(),
        outstanding: HashMap::new(),
        completed: HashSet::new(),
        total_unique: 0,
        cov_chunks: Vec::new(),
        completion: completion.clone(),
        transform_broadcast_done: HashSet::new(),
        screen_owner: HashMap::new(),
    };
    let actual_manager_id = sim.add_actor(NodeId(0), Box::new(manager))?;
    debug_assert_eq!(actual_manager_id, manager_id);

    let outcome = sim.run()?;
    let elapsed = completion
        .borrow()
        .ok_or_else(|| PctError::InvalidConfig("simulated fusion never completed".into()))?;
    Ok(SimReport {
        workers: params.workers,
        replication_level: level,
        sub_cubes: specs.len(),
        elapsed_secs: elapsed,
        messages: outcome.metrics.messages_sent,
        network_bytes: outcome.metrics.network_bytes,
    })
}

/// Convenience: the simulated sequential (single-worker, non-resilient) time
/// used as the speed-up reference for Figure 4.
pub fn reference_time(dims: CubeDims, cost: &CostModel) -> f64 {
    cost.sequential_total(dims.pixels(), dims.bands)
        .as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_fusion_completes_and_reports_time() {
        let report = simulate_fusion(&SimParams::figure4(4, false)).unwrap();
        assert_eq!(report.workers, 4);
        assert_eq!(report.replication_level, 1);
        assert!(report.elapsed_secs > 0.0);
        assert!(report.messages > 0);
    }

    #[test]
    fn zero_workers_is_rejected() {
        let mut params = SimParams::figure4(1, false);
        params.workers = 0;
        assert!(simulate_fusion(&params).is_err());
    }

    #[test]
    fn more_processors_reduce_elapsed_time() {
        let t1 = simulate_fusion(&SimParams::figure4(1, false))
            .unwrap()
            .elapsed_secs;
        let t4 = simulate_fusion(&SimParams::figure4(4, false))
            .unwrap()
            .elapsed_secs;
        let t16 = simulate_fusion(&SimParams::figure4(16, false))
            .unwrap()
            .elapsed_secs;
        assert!(t4 < t1, "t4={t4} not faster than t1={t1}");
        assert!(t16 < t4, "t16={t16} not faster than t4={t4}");
    }

    #[test]
    fn speedup_is_within_twenty_percent_of_linear_at_sixteen() {
        // The paper: "The concurrent algorithm operates within 20% of linear
        // speedup in both cases."
        let t1 = simulate_fusion(&SimParams::figure4(1, false))
            .unwrap()
            .elapsed_secs;
        let t16 = simulate_fusion(&SimParams::figure4(16, false))
            .unwrap()
            .elapsed_secs;
        let speedup = t1 / t16;
        assert!(
            speedup >= 0.8 * 16.0,
            "speed-up {speedup} below 80% of linear"
        );
        assert!(
            speedup <= 16.5,
            "speed-up {speedup} super-linear, model broken"
        );
    }

    #[test]
    fn resiliency_costs_roughly_replication_plus_ten_percent() {
        // The paper: overhead caused by resiliency is approximately 10% plus
        // the cost of replication.
        for workers in [4usize, 8] {
            let plain = simulate_fusion(&SimParams::figure4(workers, false))
                .unwrap()
                .elapsed_secs;
            let resilient = simulate_fusion(&SimParams::figure4(workers, true))
                .unwrap()
                .elapsed_secs;
            let ratio = resilient / plain;
            assert!(
                (1.9..=2.6).contains(&ratio),
                "resilient/plain ratio {ratio} at {workers} workers outside the paper's 2.0-2.3 ballpark"
            );
        }
    }

    #[test]
    fn over_decomposition_helps_then_hurts() {
        // Figure 5: more sub-cubes than processors enables overlap and
        // improves performance, but performance tails off when sub-cubes get
        // too small (paper: beyond ~32 sub-cubes for this problem size).
        let workers = 8;
        let one = simulate_fusion(&SimParams::figure5(workers, 1))
            .unwrap()
            .elapsed_secs;
        let two = simulate_fusion(&SimParams::figure5(workers, 2))
            .unwrap()
            .elapsed_secs;
        assert!(
            two <= one * 1.001,
            "2x decomposition ({two}) should not be slower than 1x ({one})"
        );
        // Absurdly fine granularity (40 sub-cubes per worker = 320 sub-cubes)
        // drowns in per-message overhead.
        let silly = simulate_fusion(&SimParams::figure5(workers, 40))
            .unwrap()
            .elapsed_secs;
        assert!(
            silly > two,
            "extremely fine granularity ({silly}) should cost more than 2x ({two})"
        );
    }

    #[test]
    fn replication_doubles_messages() {
        let plain = simulate_fusion(&SimParams::figure4(4, false)).unwrap();
        let resilient = simulate_fusion(&SimParams::figure4(4, true)).unwrap();
        assert!(
            resilient.messages > 2 * plain.messages / 10 * 9,
            "replication should add traffic"
        );
        assert!(resilient.network_bytes > plain.network_bytes);
    }
}
