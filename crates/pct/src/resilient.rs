//! The intrusion-tolerant (resilient) distributed implementation.
//!
//! Same protocol as [`crate::distributed`], but every logical worker is a
//! *replica group*: `level` member threads that all receive every task and
//! all return results, with the manager acting on the first result per task
//! and discarding duplicates.  Members emit heartbeats; a failure detector at
//! the manager notices a member that has gone silent (because an attack
//! killed it), and the regeneration protocol immediately spawns a replacement
//! member — rebinding its routing name and re-issuing any tasks its group
//! still owes — restoring the replication level instead of merely degrading.
//! That restore-not-degrade behaviour is the paper's definition of
//! computational resiliency.

use crate::colormap::ComponentScale;
use crate::config::{FusionOutput, PctConfig};
use crate::distributed::{assemble_image, handle_task, MANAGER};
use crate::messages::{PctMessage, TaskId};
use crate::pipeline::finalize_transform;
use crate::screening::merge_unique_sets;
use crate::{PctError, Result};
use hsi::partition::{partition_for_workers, GranularityPolicy};
use hsi::HyperCube;
use linalg::covariance::mean_vector;
use linalg::SymMatrix;
use resilience::attack::AttackInjector;
use resilience::group::ReplicaGroup;
use resilience::{
    DetectorConfig, FailureDetector, KillSwitch, MemberId, MembershipTable, PlacementPolicy,
    RegenerationEvent, Regenerator,
};
use scp::{Runtime, RuntimeConfig, ScpError, ThreadContext, ThreadHandle};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// A staged attack against the running computation: after the manager has
/// received `after_results` task results, the listed member routing names are
/// killed.  This emulates an adversary taking out processes mid-run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackPlan {
    /// Number of results to wait for before the attack fires.
    pub after_results: usize,
    /// Member routing names (e.g. `worker0#0`) to kill.
    pub victims: Vec<String>,
}

impl AttackPlan {
    /// No attack.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills one member of logical worker 0 early in the run.
    pub fn kill_first_worker_member() -> Self {
        Self {
            after_results: 1,
            victims: vec!["worker0#0".to_string()],
        }
    }
}

/// What happened during a resilient run, beyond the fused output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilientRunReport {
    /// Heartbeats the manager consumed.
    pub heartbeats: u64,
    /// Duplicate task results discarded by the manager.
    pub duplicates_ignored: u64,
    /// Members the attack plan killed.
    pub members_attacked: Vec<String>,
    /// Regenerations the protocol performed.
    pub regenerations: Vec<RegenerationEvent>,
    /// Tasks that had to be re-issued after a regeneration.
    pub tasks_reissued: u64,
}

/// The resilient distributed fusion pipeline.
#[derive(Debug, Clone)]
pub struct ResilientPct {
    config: PctConfig,
    workers: usize,
    level: usize,
    granularity: GranularityPolicy,
}

impl ResilientPct {
    /// Creates a resilient pipeline with `workers` logical workers replicated
    /// to `level` members each (the paper evaluates level 2).
    pub fn new(config: PctConfig, workers: usize, level: usize) -> Self {
        Self {
            config,
            workers: workers.max(1),
            level: level.max(1),
            granularity: GranularityPolicy::PerWorkerMultiple(2),
        }
    }

    /// Overrides the granularity policy.
    pub fn with_granularity(mut self, granularity: GranularityPolicy) -> Self {
        self.granularity = granularity;
        self
    }

    /// Runs the pipeline with no attack.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run_with_attack(cube, AttackPlan::none())
            .map(|(out, _)| out)
    }

    /// Runs the pipeline while an [`AttackPlan`] kills members mid-run.
    pub fn run_with_attack(
        &self,
        cube: &HyperCube,
        attack: AttackPlan,
    ) -> Result<(FusionOutput, ResilientRunReport)> {
        self.config.validate()?;
        // Channel validation is off: regenerated members introduce new
        // routing names at runtime, which a static graph cannot anticipate.
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut manager_ctx = runtime.context(MANAGER)?;

        let membership = MembershipTable::new();
        let injector = AttackInjector::new();
        let mut handles: Vec<ThreadHandle<()>> = Vec::new();

        // Spawn `level` members for each logical worker, placed round-robin
        // over virtual nodes 0..workers (placement bookkeeping only — all
        // members are OS threads on this machine).
        let nodes: Vec<usize> = (0..self.workers).collect();
        for w in 0..self.workers {
            let placements: Vec<usize> = (0..self.level).map(|m| (w + m) % self.workers).collect();
            let group = ReplicaGroup::new(format!("worker{w}"), self.level, &placements)?;
            for member in &group.members {
                handles.push(spawn_member(&runtime, &injector, member)?);
            }
            membership.insert(group);
        }

        let mut detector = FailureDetector::new(DetectorConfig {
            heartbeat_period_ms: 50,
            miss_threshold: 8,
        });
        for member in membership.all_members() {
            detector.watch(member, 0);
        }
        let mut regenerator = Regenerator::new(
            membership.clone(),
            PlacementPolicy::SpreadAcrossNodes,
            nodes,
        );
        let mut report = ResilientRunReport::default();

        let result = run_resilient_manager(
            &mut manager_ctx,
            &runtime,
            cube,
            &self.config,
            self.granularity,
            self.workers,
            &membership,
            &injector,
            &mut detector,
            &mut regenerator,
            &mut handles,
            &attack,
            &mut report,
        );

        // Shut down every member that ever existed — not just current group
        // membership. A member falsely declared failed is removed from its
        // group but its thread keeps running; addressing the shutdown by
        // spawn handle reaches those orphans too, so the joins below cannot
        // hang on them.
        for handle in &handles {
            let _ = manager_ctx.send(&handle.name, PctMessage::Shutdown);
        }
        // Killed members exit via their kill switches; joining is safe either way.
        for handle in handles {
            handle.join();
        }
        report.regenerations = regenerator.history().to_vec();
        report.members_attacked = injector.attack_log();
        result.map(|out| (out, report))
    }
}

/// Spawns one replica-group member thread and registers its kill switch.
fn spawn_member(
    runtime: &Runtime<PctMessage>,
    injector: &AttackInjector,
    member: &MemberId,
) -> Result<ThreadHandle<()>> {
    let kill = injector.register(member.routing_name());
    Ok(runtime.spawn(
        member.routing_name(),
        move |ctx: ThreadContext<PctMessage>| member_loop(ctx, kill),
    )?)
}

/// The reactive loop of one group member: service tasks, heartbeat while
/// idle, and stop silently when attacked.
fn member_loop(mut ctx: ThreadContext<PctMessage>, kill: KillSwitch) {
    loop {
        if kill.is_killed() {
            return;
        }
        match ctx.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => match envelope.payload {
                PctMessage::Shutdown => return,
                msg => {
                    if let Some(reply) = handle_task(msg) {
                        if kill.is_killed() {
                            return;
                        }
                        if ctx.send(MANAGER, reply).is_err() {
                            return;
                        }
                        let _ = ctx.send(MANAGER, PctMessage::Heartbeat);
                    }
                }
            },
            Err(ScpError::Timeout) => {
                if ctx.send(MANAGER, PctMessage::Heartbeat).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Sends a task to every live member of a group.  Returns the members whose
/// mailboxes turned out to be gone — a killed thread's queue disappears when
/// it exits, so a failed send is an immediate failure report that complements
/// the heartbeat detector.
fn group_send(
    ctx: &mut ThreadContext<PctMessage>,
    membership: &MembershipTable,
    group: &str,
    msg: &PctMessage,
) -> Result<Vec<MemberId>> {
    let snapshot = membership.get(group)?;
    let mut dead = Vec::new();
    for member in &snapshot.members {
        if let Err(ScpError::Disconnected(_)) = ctx.send(&member.routing_name(), msg.clone()) {
            dead.push(member.clone());
        }
    }
    Ok(dead)
}

/// Handles one member failure (reported by the detector or by a failed send):
/// regenerate the member on another node, start watching the replacement, and
/// re-issue every task its group still owes to the new member.
#[allow(clippy::too_many_arguments)]
fn handle_member_failure(
    ctx: &mut ThreadContext<PctMessage>,
    runtime: &Runtime<PctMessage>,
    injector: &AttackInjector,
    detector: &mut FailureDetector,
    regenerator: &mut Regenerator,
    handles: &mut Vec<ThreadHandle<()>>,
    outstanding: &HashMap<TaskId, (String, PctMessage)>,
    report: &mut ResilientRunReport,
    now_ms: u64,
    failed: &MemberId,
) -> Result<()> {
    detector.unwatch(failed);
    let event = regenerator.handle_failure(failed, |replacement, _node| {
        let handle = spawn_member(runtime, injector, replacement)
            .map_err(|_| resilience::ResilienceError::InvalidConfig("spawn failed".into()))?;
        handles.push(handle);
        Ok(())
    })?;
    if let Some(event) = event {
        detector.watch(event.replacement.clone(), now_ms);
        for (group, msg) in outstanding.values() {
            if *group == event.replacement.group {
                let _ = ctx.send(&event.replacement.routing_name(), msg.clone());
                report.tasks_reissued += 1;
            }
        }
    }
    Ok(())
}

/// Arguments threaded through the group work-queue distribution.
#[allow(clippy::too_many_arguments)]
fn distribute_to_groups<T>(
    ctx: &mut ThreadContext<PctMessage>,
    runtime: &Runtime<PctMessage>,
    groups: &[String],
    membership: &MembershipTable,
    injector: &AttackInjector,
    detector: &mut FailureDetector,
    regenerator: &mut Regenerator,
    handles: &mut Vec<ThreadHandle<()>>,
    attack: &AttackPlan,
    attack_fired: &mut bool,
    total_results_seen: &mut usize,
    report: &mut ResilientRunReport,
    start: Instant,
    tasks: Vec<(TaskId, PctMessage)>,
    mut extract: impl FnMut(PctMessage) -> Option<T>,
) -> Result<Vec<T>> {
    let total = tasks.len();
    let mut pending: VecDeque<(TaskId, PctMessage)> = tasks.into();
    let mut outstanding: HashMap<TaskId, (String, PctMessage)> = HashMap::new();
    let mut completed: HashSet<TaskId> = HashSet::new();
    let mut results: Vec<(TaskId, T)> = Vec::with_capacity(total);
    // Which group handled which task, so the next task goes to a group that
    // just freed up.
    let deadline = start + Duration::from_secs(300);

    // Prime each group with one task.
    let mut dead_members: Vec<MemberId> = Vec::new();
    for group in groups {
        if let Some((task, msg)) = pending.pop_front() {
            dead_members.extend(group_send(ctx, membership, group, &msg)?);
            outstanding.insert(task, (group.clone(), msg));
        }
    }

    while completed.len() < total {
        if Instant::now() > deadline {
            return Err(PctError::WorkerLost(
                "resilient run exceeded its deadline waiting for results".to_string(),
            ));
        }
        let now_ms = start.elapsed().as_millis() as u64;
        match ctx.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => {
                let from = envelope.from.clone();
                match envelope.payload {
                    PctMessage::Heartbeat => {
                        report.heartbeats += 1;
                        if let Some(member) = MemberId::parse(&from) {
                            detector.heartbeat(&member, now_ms);
                        }
                    }
                    msg => {
                        if let Some(member) = MemberId::parse(&from) {
                            detector.heartbeat(&member, now_ms);
                        }
                        let Some(task) = msg.task() else { continue };
                        if completed.contains(&task) {
                            report.duplicates_ignored += 1;
                            continue;
                        }
                        let Some(value) = extract(msg) else { continue };
                        completed.insert(task);
                        results.push((task, value));
                        *total_results_seen += 1;
                        // Hand the next pending task to the group that just
                        // finished this one.
                        let finished_group = outstanding
                            .remove(&task)
                            .map(|(g, _)| g)
                            .or_else(|| MemberId::parse(&from).map(|m| m.group));
                        if let (Some(group), Some((next_task, next_msg))) =
                            (finished_group, pending.pop_front())
                        {
                            dead_members.extend(group_send(ctx, membership, &group, &next_msg)?);
                            outstanding.insert(next_task, (group, next_msg));
                        }
                    }
                }
            }
            Err(ScpError::Timeout) => {}
            Err(e) => return Err(e.into()),
        }

        // Fire the staged attack once enough results have been seen.
        if !*attack_fired
            && *total_results_seen >= attack.after_results
            && !attack.victims.is_empty()
        {
            for victim in &attack.victims {
                injector.attack(victim);
            }
            *attack_fired = true;
        }

        // Attack assessment: anything whose heartbeat stopped, or whose
        // mailbox vanished under a send, is regenerated immediately.
        // Heartbeat silence alone is not proof of death — a member that is
        // deep in a long screening task goes silent too — so each
        // silence-flagged member is probed through its mailbox: a dead
        // thread's receiver is gone (the send reports Disconnected), while a
        // busy thread's mailbox accepts the probe and the member is given a
        // fresh heartbeat lease instead of being regenerated.
        let now_ms = start.elapsed().as_millis() as u64;
        let mut failures = Vec::new();
        for suspect in detector.sweep(now_ms) {
            match ctx.send(&suspect.routing_name(), PctMessage::Heartbeat) {
                Err(ScpError::Disconnected(_)) => failures.push(suspect),
                _ => detector.heartbeat(&suspect, now_ms),
            }
        }
        failures.append(&mut dead_members);
        for failed in failures {
            handle_member_failure(
                ctx,
                runtime,
                injector,
                detector,
                regenerator,
                handles,
                &outstanding,
                report,
                now_ms,
                &failed,
            )?;
        }
    }
    // Sort back into task order so the merge and covariance steps are
    // deterministic regardless of which replica answered first.
    results.sort_by_key(|(task, _)| *task);
    Ok(results.into_iter().map(|(_, value)| value).collect())
}

/// The manager side of the resilient protocol: the same three phases as the
/// plain distributed manager, but with group addressing, deduplication,
/// failure detection and regeneration.
#[allow(clippy::too_many_arguments)]
fn run_resilient_manager(
    ctx: &mut ThreadContext<PctMessage>,
    runtime: &Runtime<PctMessage>,
    cube: &HyperCube,
    config: &PctConfig,
    granularity: GranularityPolicy,
    workers: usize,
    membership: &MembershipTable,
    injector: &AttackInjector,
    detector: &mut FailureDetector,
    regenerator: &mut Regenerator,
    handles: &mut Vec<ThreadHandle<()>>,
    attack: &AttackPlan,
    report: &mut ResilientRunReport,
) -> Result<FusionOutput> {
    let groups: Vec<String> = (0..workers).map(|w| format!("worker{w}")).collect();
    let specs = partition_for_workers(cube.dims(), workers, granularity)?;
    let start = Instant::now();
    let mut attack_fired = false;
    let mut results_seen = 0usize;

    // ---- Phase 1: screening --------------------------------------------------------
    let screen_tasks: Vec<(TaskId, PctMessage)> = specs
        .iter()
        .map(|spec| {
            Ok((
                spec.id,
                PctMessage::ScreenTask {
                    task: spec.id,
                    sub: spec.extract(cube)?,
                    threshold_rad: config.screening_angle_rad,
                },
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let unique_sets = distribute_to_groups(
        ctx,
        runtime,
        &groups,
        membership,
        injector,
        detector,
        regenerator,
        handles,
        attack,
        &mut attack_fired,
        &mut results_seen,
        report,
        start,
        screen_tasks,
        |msg| match msg {
            PctMessage::UniqueSet { unique, .. } => Some(unique),
            _ => None,
        },
    )?;
    let unique = merge_unique_sets(unique_sets, config.screening_angle_rad);
    let unique_count = unique.len();
    if unique.is_empty() {
        return Err(PctError::InvalidConfig(
            "screening produced an empty unique set".into(),
        ));
    }

    // ---- Phase 2: statistics -------------------------------------------------------
    let mean = mean_vector(&unique)?;
    let bands = mean.len();
    let chunk = unique.len().div_ceil(groups.len()).max(1);
    let cov_tasks: Vec<(TaskId, PctMessage)> = unique
        .chunks(chunk)
        .enumerate()
        .map(|(i, pixels)| {
            (
                i,
                PctMessage::CovarianceTask {
                    task: i,
                    mean: mean.clone(),
                    pixels: pixels.to_vec(),
                },
            )
        })
        .collect();
    let partials = distribute_to_groups(
        ctx,
        runtime,
        &groups,
        membership,
        injector,
        detector,
        regenerator,
        handles,
        attack,
        &mut attack_fired,
        &mut results_seen,
        report,
        start,
        cov_tasks,
        |msg| match msg {
            PctMessage::CovarianceSum {
                packed,
                bands,
                count,
                ..
            } => Some((packed, bands, count)),
            _ => None,
        },
    )?;
    let mut sum = SymMatrix::zeros(bands);
    let mut total_count = 0u64;
    for (packed, b, count) in partials {
        sum.add_assign_sym(&SymMatrix::from_packed(b, packed)?)?;
        total_count += count;
    }
    if total_count == 0 {
        return Err(PctError::InvalidConfig(
            "covariance phase accumulated no pixels".into(),
        ));
    }
    sum.scale_in_place(1.0 / total_count as f64);
    let spec = finalize_transform(mean, &sum, config)?;
    let scales: Vec<(f64, f64)> = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3)
        .into_iter()
        .map(|s| (s.min, s.max))
        .collect();

    // ---- Phase 3: transform + colour ------------------------------------------------
    let transform_tasks: Vec<(TaskId, PctMessage)> = specs
        .iter()
        .map(|sub_spec| {
            Ok((
                sub_spec.id,
                PctMessage::TransformTask {
                    task: sub_spec.id,
                    sub: sub_spec.extract(cube)?,
                    mean: spec.mean.clone(),
                    transform: spec.transform.clone(),
                    scales: scales.clone(),
                },
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let strips = distribute_to_groups(
        ctx,
        runtime,
        &groups,
        membership,
        injector,
        detector,
        regenerator,
        handles,
        attack,
        &mut attack_fired,
        &mut results_seen,
        report,
        start,
        transform_tasks,
        |msg| match msg {
            PctMessage::RgbStrip {
                row_start,
                rows,
                width,
                rgb,
                ..
            } => Some((row_start, rows, width, rgb)),
            _ => None,
        },
    )?;
    let image = assemble_image(cube.width(), cube.height(), strips)?;

    Ok(FusionOutput {
        image,
        eigenvalues: spec.eigenvalues,
        unique_count,
        pixels: cube.pixels(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::DistributedPct;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(13))
            .unwrap()
            .generate()
    }

    /// The non-resilient distributed run with the identical decomposition —
    /// the resilient pipeline must produce exactly the same statistics and
    /// image, since replication and regeneration are transparent to the
    /// application.
    fn reference(cube: &HyperCube) -> FusionOutput {
        DistributedPct::new(PctConfig::paper(), 2)
            .run(cube)
            .unwrap()
    }

    #[test]
    fn resilient_level_1_matches_sequential() {
        let cube = small_scene();
        let reference = reference(&cube);
        let res = ResilientPct::new(PctConfig::paper(), 2, 1)
            .run(&cube)
            .unwrap();
        assert_eq!(res.unique_count, reference.unique_count);
        let diff = reference.image.mean_abs_diff(&res.image).unwrap();
        assert!(diff < 0.5, "level-1 resilient output diverges: {diff}");
    }

    #[test]
    fn resilient_level_2_matches_sequential_and_dedups() {
        let cube = small_scene();
        let reference = reference(&cube);
        let (out, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
            .run_with_attack(&cube, AttackPlan::none())
            .unwrap();
        let diff = reference.image.mean_abs_diff(&out.image).unwrap();
        assert!(diff < 0.5, "level-2 resilient output diverges: {diff}");
        // With two members per group, every task produces a duplicate result.
        assert!(
            report.duplicates_ignored > 0,
            "no duplicates observed: {report:?}"
        );
        assert!(report.regenerations.is_empty());
    }

    #[test]
    fn attack_on_one_member_is_survived_and_regenerated() {
        // A somewhat larger scene so the run comfortably outlives the
        // failure-detection latency after the attack fires.
        let mut config = SceneConfig::small(13);
        config.dims = hsi::CubeDims::new(64, 64, 24);
        let cube = SceneGenerator::new(config).unwrap().generate();
        let reference = reference(&cube);
        let (out, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
            .run_with_attack(&cube, AttackPlan::kill_first_worker_member())
            .unwrap();
        // The fused image is still correct: identical to the undisturbed run.
        let diff = reference.image.mean_abs_diff(&out.image).unwrap();
        assert!(diff < 0.5, "post-attack output diverges: {diff}");
        // The attack actually happened and was repaired.
        assert_eq!(report.members_attacked, vec!["worker0#0".to_string()]);
        assert!(
            !report.regenerations.is_empty(),
            "the killed member was never regenerated: {report:?}"
        );
        let regen = &report.regenerations[0];
        assert_eq!(regen.failed.group, "worker0");
        assert!(regen.replacement.incarnation >= 2);
    }

    #[test]
    fn attack_plan_constructors() {
        assert_eq!(AttackPlan::none().victims.len(), 0);
        let plan = AttackPlan::kill_first_worker_member();
        assert_eq!(plan.victims, vec!["worker0#0".to_string()]);
        assert_eq!(plan.after_results, 1);
    }
}
