//! The intrusion-tolerant (resilient) distributed implementation.
//!
//! Same protocol as [`crate::distributed`], but every logical worker is a
//! *replica group*: `level` member threads that all receive every task and
//! all return results, with the manager acting on the first result per task
//! and discarding duplicates.  Members emit heartbeats; a failure detector at
//! the manager notices a member that has gone silent (because an attack
//! killed it), and the regeneration protocol immediately spawns a replacement
//! member — rebinding its routing name and re-issuing any tasks its group
//! still owes — restoring the replication level instead of merely degrading.
//! That restore-not-degrade behaviour is the paper's definition of
//! computational resiliency.
//!
//! The manager-side machinery (membership, attack injection, failure
//! detection, regeneration, spawn handles and run accounting) is folded into
//! one owned [`ResilientManagerState`], so a long-lived owner — this
//! pipeline for the duration of a run, or the service layer's worker pool
//! for the lifetime of the process — carries a single value instead of
//! threading a dozen loose arguments.

use crate::colormap::ComponentScale;
use crate::config::{FusionOutput, PctConfig};
use crate::distributed::{assemble_image, handle_task, MANAGER};
use crate::messages::{PctMessage, TaskId};
use crate::pipeline::finalize_transform;
use crate::screening::merge_unique_sets;
use crate::{PctError, Result};
use hsi::partition::{partition_for_workers, GranularityPolicy};
use hsi::HyperCube;
use linalg::covariance::mean_vector;
use linalg::SymMatrix;
use resilience::attack::AttackInjector;
use resilience::group::ReplicaGroup;
use resilience::{
    DetectorConfig, FailureDetector, KillSwitch, MemberId, MembershipTable, PlacementPolicy,
    Regenerator,
};
use scp::{Runtime, RuntimeConfig, ScpError, ThreadContext, ThreadHandle};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A staged attack against the running computation: after the manager has
/// received `after_results` task results, the listed member routing names are
/// killed.  This emulates an adversary taking out processes mid-run.
///
/// `drop_sends` additionally emulates *lost messages*: the next `count`
/// group-send deliveries to each listed member are silently discarded in
/// transit (the send "succeeds" but nothing arrives).  Dropping the sends to
/// every member of a group loses the task entirely without killing anyone —
/// the task-loss window that retransmit-on-timeout closes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackPlan {
    /// Number of results to wait for before the attack fires.
    pub after_results: usize,
    /// Member routing names (e.g. `worker0#0`) to kill.
    pub victims: Vec<String>,
    /// `(member routing name, deliveries to drop)` send-fault injections.
    pub drop_sends: Vec<(String, usize)>,
}

impl AttackPlan {
    /// No attack.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills one member of logical worker 0 early in the run.
    pub fn kill_first_worker_member() -> Self {
        Self {
            after_results: 1,
            victims: vec!["worker0#0".to_string()],
            drop_sends: Vec::new(),
        }
    }

    /// Drops the next delivery to each listed member without killing anyone:
    /// a group send made "mid-group" reaches nobody on the first attempt.
    pub fn drop_next_send_to(members: &[&str]) -> Self {
        Self {
            after_results: 0,
            victims: Vec::new(),
            drop_sends: members.iter().map(|m| (m.to_string(), 1)).collect(),
        }
    }
}

/// What happened during a resilient run, beyond the fused output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilientRunReport {
    /// Heartbeats the manager consumed.
    pub heartbeats: u64,
    /// Duplicate task results discarded by the manager.
    pub duplicates_ignored: u64,
    /// Members the attack plan killed.
    pub members_attacked: Vec<String>,
    /// Regenerations the protocol performed.
    pub regenerations: Vec<resilience::RegenerationEvent>,
    /// Tasks that had to be re-issued after a regeneration.
    pub tasks_reissued: u64,
    /// Whole-group retransmissions of tasks that timed out without a result
    /// (covers sends lost in transit to members that never acked).
    pub retransmits: u64,
    /// Sub-cube payload bytes deep-copied while building and routing task
    /// messages (clone-ledger delta over the run): 0 on the view-based
    /// message plane.
    pub bytes_cloned: u64,
}

/// The folded manager-side state of the resilient protocol (the former 13
/// loose arguments of `run_resilient_manager`).
///
/// Owns everything needed to keep a set of replica groups alive: membership,
/// the kill-switch registry used to emulate attacks, the heartbeat failure
/// detector, the regeneration driver, the spawn handles of every member ever
/// created, and the run accounting.  [`ResilientPct`] builds one per run;
/// the service layer's worker pool owns one for the lifetime of the process.
pub struct ResilientManagerState {
    /// Replica-group membership, shared with the regenerator.
    pub membership: MembershipTable,
    /// Kill-switch registry used to emulate attacks against members.
    pub injector: AttackInjector,
    /// Heartbeat failure detector over all live members.
    pub detector: FailureDetector,
    /// The regeneration protocol driver.
    pub regenerator: Regenerator,
    /// Handles of every member thread ever spawned (including regenerated
    /// replacements and members later declared failed).
    pub handles: Vec<ThreadHandle<()>>,
    /// Run accounting (heartbeats, duplicates, re-issues).
    pub report: ResilientRunReport,
    /// How long an outstanding task may go unanswered before it is re-sent
    /// to every current member of its group.  Retransmits are idempotent
    /// (workers recompute, the manager dedups by task id), so a conservative
    /// default only costs latency on genuinely lost sends.
    pub retransmit_after: Duration,
    /// Remaining send-fault injections: deliveries to drop per routing name.
    send_drops: HashMap<String, usize>,
    attack: AttackPlan,
    attack_fired: bool,
    results_seen: usize,
}

/// A dispatched, not-yet-answered task: which group owes it, the (cheaply
/// clonable) task message for re-issue, when it was last sent, and how many
/// times it has been retransmitted.
#[derive(Debug, Clone)]
pub struct OutstandingTask {
    /// Logical group name the task was sent to.
    pub group: String,
    /// The task message (view payloads make cloning an `Arc` bump).
    pub message: PctMessage,
    /// When the task was last (re)transmitted.
    pub sent_at: Instant,
    /// Retransmissions performed so far (drives the backoff).
    pub attempts: u32,
}

impl OutstandingTask {
    /// Records a task just sent to `group`.
    pub fn new(group: String, message: PctMessage) -> Self {
        Self {
            group,
            message,
            sent_at: Instant::now(),
            attempts: 0,
        }
    }

    /// The single retransmit-backoff policy, shared by the resilient
    /// pipeline and the service scheduler: the wait doubles with every
    /// attempt (capped at 32×) so a genuinely long task on a healthy group
    /// costs at most a handful of idempotent duplicates instead of a
    /// re-send storm, while a genuinely lost send is still recovered after
    /// one base timeout.
    pub fn backoff(base: Duration, attempts: u32) -> Duration {
        base * (1u32 << attempts.min(5))
    }

    /// Whether the task has gone unanswered past its current backoff.
    pub fn is_overdue(&self, base: Duration) -> bool {
        self.sent_at.elapsed() > Self::backoff(base, self.attempts)
    }

    /// Records a retransmission: the timer restarts and the backoff grows.
    pub fn mark_retransmitted(&mut self) {
        self.sent_at = Instant::now();
        self.attempts = self.attempts.saturating_add(1);
    }

    /// Records a fresh delivery (e.g. a re-issue to a regenerated member):
    /// the timer restarts so the retransmit sweep does not immediately
    /// re-send what was just sent.
    pub fn mark_delivered(&mut self) {
        self.sent_at = Instant::now();
    }
}

impl ResilientManagerState {
    /// Attaches a telemetry handle to the resilience machinery: the
    /// failure detector records `member_failed` instants and the
    /// regenerator records `member_regenerated` instants, each with a
    /// matching counter.
    pub fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.detector.set_telemetry(telemetry.clone());
        self.regenerator.set_telemetry(telemetry);
        self
    }

    /// Builds the state for one replica group per name in `group_names`,
    /// each with `level` members, spawning every member on `runtime` and
    /// watching it in a detector configured by `detector_config`.  Members
    /// are placed round-robin over virtual nodes `0..group_names.len()`
    /// (placement bookkeeping only — all members are OS threads on this
    /// machine).
    pub fn build(
        runtime: &Runtime<PctMessage>,
        group_names: &[String],
        level: usize,
        detector_config: DetectorConfig,
        attack: AttackPlan,
    ) -> Result<Self> {
        let membership = MembershipTable::new();
        let injector = AttackInjector::new();
        let mut handles: Vec<ThreadHandle<()>> = Vec::new();
        let nodes: Vec<usize> = (0..group_names.len()).collect();
        for (w, name) in group_names.iter().enumerate() {
            let placements: Vec<usize> = (0..level)
                .map(|m| (w + m) % group_names.len().max(1))
                .collect();
            let group = ReplicaGroup::new(name.clone(), level, &placements)?;
            for member in &group.members {
                handles.push(spawn_member(runtime, &injector, member)?);
            }
            membership.insert(group);
        }
        let mut detector = FailureDetector::new(detector_config);
        for member in membership.all_members() {
            detector.watch(member, 0);
        }
        let regenerator = Regenerator::new(
            membership.clone(),
            PlacementPolicy::SpreadAcrossNodes,
            nodes,
        );
        let send_drops = attack.drop_sends.iter().cloned().collect();
        Ok(Self {
            membership,
            injector,
            detector,
            regenerator,
            handles,
            report: ResilientRunReport::default(),
            retransmit_after: Duration::from_millis(500),
            send_drops,
            attack,
            attack_fired: false,
            results_seen: 0,
        })
    }

    /// Records a heartbeat-equivalent signal from the routing name `from` at
    /// `now_ms`, refreshing its detector lease if it names a group member.
    pub fn heartbeat_from(&mut self, from: &str, now_ms: u64) {
        if let Some(member) = MemberId::parse(from) {
            self.detector.heartbeat(&member, now_ms);
        }
    }

    /// Counts one consumed task result toward the staged attack trigger.
    pub fn note_result(&mut self) {
        self.results_seen += 1;
    }

    /// Fires the staged [`AttackPlan`] once enough results have been seen.
    pub fn fire_attack_if_due(&mut self) {
        if !self.attack_fired
            && self.results_seen >= self.attack.after_results
            && !self.attack.victims.is_empty()
        {
            for victim in &self.attack.victims {
                self.injector.attack(victim);
            }
            self.attack_fired = true;
        }
    }

    /// Sends a task to every live member of a group.  Returns the members
    /// whose mailboxes turned out to be gone — a killed thread's queue
    /// disappears when it exits, so a failed send is an immediate failure
    /// report that complements the heartbeat detector.
    ///
    /// Message clones here are `Arc` bumps on view payloads, so replicating
    /// a task across a group costs reference counts, not pixel copies.  A
    /// pending send-fault injection ([`AttackPlan::drop_sends`]) consumes
    /// one delivery: the message is discarded in transit while the send
    /// appears to succeed.
    pub fn group_send(
        &mut self,
        ctx: &mut ThreadContext<PctMessage>,
        group: &str,
        msg: &PctMessage,
    ) -> Result<Vec<MemberId>> {
        let snapshot = self.membership.get(group)?;
        let mut dead = Vec::new();
        for member in &snapshot.members {
            let name = member.routing_name();
            if let Some(remaining) = self.send_drops.get_mut(&name) {
                if *remaining > 0 {
                    *remaining -= 1;
                    continue;
                }
            }
            if let Err(ScpError::Disconnected(_)) = ctx.send(&name, msg.clone()) {
                dead.push(member.clone());
            }
        }
        Ok(dead)
    }

    /// Attack assessment: sweeps the detector at `now_ms` and probes each
    /// silence-flagged member through its mailbox.  Heartbeat silence alone
    /// is not proof of death — a member deep in a long screening task goes
    /// silent too — so a probe that is *accepted* refreshes the member's
    /// lease, while a probe that reports `Disconnected` confirms the member
    /// is gone.  Returns the confirmed failures.
    pub fn sweep_and_probe(
        &mut self,
        ctx: &mut ThreadContext<PctMessage>,
        now_ms: u64,
    ) -> Vec<MemberId> {
        let mut failures = Vec::new();
        for suspect in self.detector.sweep(now_ms) {
            match ctx.send(&suspect.routing_name(), PctMessage::Heartbeat) {
                Err(ScpError::Disconnected(_)) => failures.push(suspect),
                _ => self.detector.heartbeat(&suspect, now_ms),
            }
        }
        failures
    }

    /// Handles one member failure (reported by the detector or by a failed
    /// send): regenerate the member on another node, start watching the
    /// replacement, and re-issue every task its group still owes
    /// (`outstanding` maps task id to the owing group, message and send
    /// time).
    pub fn handle_member_failure(
        &mut self,
        ctx: &mut ThreadContext<PctMessage>,
        runtime: &Runtime<PctMessage>,
        outstanding: &mut HashMap<TaskId, OutstandingTask>,
        now_ms: u64,
        failed: &MemberId,
    ) -> Result<()> {
        let Self {
            injector,
            detector,
            regenerator,
            handles,
            report,
            ..
        } = self;
        detector.unwatch(failed);
        let event = regenerator.handle_failure(failed, |replacement, _node| {
            let handle = spawn_member(runtime, injector, replacement)
                .map_err(|_| resilience::ResilienceError::InvalidConfig("spawn failed".into()))?;
            handles.push(handle);
            Ok(())
        })?;
        if let Some(event) = event {
            detector.watch(event.replacement.clone(), now_ms);
            for task in outstanding.values_mut() {
                if task.group == event.replacement.group {
                    let _ = ctx.send(&event.replacement.routing_name(), task.message.clone());
                    // The re-issue restarts the task's retransmit timer so
                    // the next sweep does not immediately re-send it.
                    task.mark_delivered();
                    report.tasks_reissued += 1;
                }
            }
        }
        Ok(())
    }

    /// Retransmits every outstanding task that has gone unanswered past its
    /// backoff ([`OutstandingTask::is_overdue`], base
    /// [`ResilientManagerState::retransmit_after`]) to all current members
    /// of its group — including survivors that never acked the original
    /// send (the task-loss window a regeneration-only re-issue leaves
    /// open).  Returns members whose mailboxes were found dead.
    pub fn retransmit_overdue(
        &mut self,
        ctx: &mut ThreadContext<PctMessage>,
        outstanding: &mut HashMap<TaskId, OutstandingTask>,
    ) -> Result<Vec<MemberId>> {
        let mut dead = Vec::new();
        let overdue: Vec<TaskId> = outstanding
            .iter()
            .filter(|(_, task)| task.is_overdue(self.retransmit_after))
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let (group, message) = {
                let task = outstanding.get(&id).expect("listed above");
                (task.group.clone(), task.message.clone())
            };
            dead.extend(self.group_send(ctx, &group, &message)?);
            if let Some(task) = outstanding.get_mut(&id) {
                task.mark_retransmitted();
            }
            self.report.retransmits += 1;
        }
        Ok(dead)
    }

    /// Shuts down every member that ever existed — not just current group
    /// membership.  A member falsely declared failed is removed from its
    /// group but its thread keeps running; addressing the shutdown by spawn
    /// handle reaches those orphans too, so the joins cannot hang on them.
    /// Folds the attack and regeneration logs into the report and returns it.
    pub fn shutdown(mut self, ctx: &mut ThreadContext<PctMessage>) -> ResilientRunReport {
        for handle in &self.handles {
            let _ = ctx.send(&handle.name, PctMessage::Shutdown);
        }
        // Killed members exit via their kill switches; joining is safe either
        // way.
        for handle in self.handles {
            handle.join();
        }
        self.report.regenerations = self.regenerator.history().to_vec();
        self.report.members_attacked = self.injector.attack_log();
        self.report
    }
}

/// The resilient distributed fusion pipeline.
#[derive(Debug, Clone)]
pub struct ResilientPct {
    config: PctConfig,
    workers: usize,
    level: usize,
    granularity: GranularityPolicy,
    detector: DetectorConfig,
}

impl ResilientPct {
    /// Creates a resilient pipeline with `workers` logical workers replicated
    /// to `level` members each (the paper evaluates level 2).
    pub fn new(config: PctConfig, workers: usize, level: usize) -> Self {
        Self {
            config,
            workers: workers.max(1),
            level: level.max(1),
            granularity: GranularityPolicy::PerWorkerMultiple(2),
            detector: DetectorConfig {
                heartbeat_period_ms: 50,
                miss_threshold: 8,
            },
        }
    }

    /// Overrides the granularity policy.
    pub fn with_granularity(mut self, granularity: GranularityPolicy) -> Self {
        self.granularity = granularity;
        self
    }

    /// Overrides the failure-detector parameters (sweep interval and
    /// silence threshold).  The default matches the historical constant
    /// (50 ms heartbeats, declared failed after 8 misses); the simulator
    /// sweeps this to measure detection latency as a parameter instead of
    /// inheriting a constant.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// The failure-detector parameters this pipeline runs with.
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// Number of logical workers (replica groups).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Members per replica group.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Runs the pipeline with no attack.  The borrowed cube is copied once
    /// into shared storage at this ingestion boundary; `Arc` holders use
    /// [`ResilientPct::run_shared`] and copy nothing.
    pub fn run(&self, cube: &HyperCube) -> Result<FusionOutput> {
        self.run_with_attack(cube, AttackPlan::none())
            .map(|(out, _)| out)
    }

    /// Runs the pipeline over shared storage with no attack.
    pub fn run_shared(&self, cube: &Arc<HyperCube>) -> Result<FusionOutput> {
        self.run_with_attack_shared(cube, AttackPlan::none())
            .map(|(out, _)| out)
    }

    /// Runs the pipeline while an [`AttackPlan`] kills members mid-run.
    pub fn run_with_attack(
        &self,
        cube: &HyperCube,
        attack: AttackPlan,
    ) -> Result<(FusionOutput, ResilientRunReport)> {
        self.run_with_attack_shared(&Arc::new(cube.clone()), attack)
    }

    /// Runs the pipeline over shared storage while an [`AttackPlan`] kills
    /// members (and drops sends) mid-run.  Task payloads are zero-copy
    /// [`hsi::CubeView`]s; the report's `bytes_cloned` measures (via the
    /// clone ledger) that no sub-cube payload was deep-copied.
    pub fn run_with_attack_shared(
        &self,
        cube: &Arc<HyperCube>,
        attack: AttackPlan,
    ) -> Result<(FusionOutput, ResilientRunReport)> {
        self.config.validate()?;
        // Channel validation is off: regenerated members introduce new
        // routing names at runtime, which a static graph cannot anticipate.
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut manager_ctx = runtime.context(MANAGER)?;

        let groups: Vec<String> = (0..self.workers).map(|w| format!("worker{w}")).collect();
        let mut state =
            ResilientManagerState::build(&runtime, &groups, self.level, self.detector, attack)?;

        let ledger = hsi::CloneLedger::snapshot();
        let result = run_resilient_manager(
            &mut manager_ctx,
            &runtime,
            cube,
            &self.config,
            self.granularity,
            &mut state,
        );
        state.report.bytes_cloned = ledger.delta();

        let report = state.shutdown(&mut manager_ctx);
        result.map(|out| (out, report))
    }
}

/// Spawns one replica-group member thread and registers its kill switch.
/// Exposed so the service layer's pool can create members the same way the
/// regeneration path does.
pub fn spawn_member(
    runtime: &Runtime<PctMessage>,
    injector: &AttackInjector,
    member: &MemberId,
) -> Result<ThreadHandle<()>> {
    let kill = injector.register(member.routing_name());
    Ok(runtime.spawn(
        member.routing_name(),
        move |ctx: ThreadContext<PctMessage>| member_loop(ctx, kill),
    )?)
}

/// The reactive loop of one group member: service tasks, heartbeat while
/// idle, and stop silently when attacked.
fn member_loop(mut ctx: ThreadContext<PctMessage>, kill: KillSwitch) {
    loop {
        if kill.is_killed() {
            return;
        }
        match ctx.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => match envelope.payload {
                PctMessage::Shutdown => return,
                msg => {
                    if let Some(reply) = handle_task(msg) {
                        if kill.is_killed() {
                            return;
                        }
                        if ctx.send(MANAGER, reply).is_err() {
                            return;
                        }
                        let _ = ctx.send(MANAGER, PctMessage::Heartbeat);
                    }
                }
            },
            Err(ScpError::Timeout) => {
                if ctx.send(MANAGER, PctMessage::Heartbeat).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Work-queue distribution of a set of tasks over the replica groups, with
/// deduplication, failure detection, retransmission and regeneration driven
/// by `state`.
fn distribute_to_groups<T>(
    ctx: &mut ThreadContext<PctMessage>,
    runtime: &Runtime<PctMessage>,
    groups: &[String],
    state: &mut ResilientManagerState,
    start: Instant,
    tasks: Vec<(TaskId, PctMessage)>,
    mut extract: impl FnMut(PctMessage) -> Option<T>,
) -> Result<Vec<T>> {
    let total = tasks.len();
    let mut pending: VecDeque<(TaskId, PctMessage)> = tasks.into();
    let mut outstanding: HashMap<TaskId, OutstandingTask> = HashMap::new();
    let mut completed: HashSet<TaskId> = HashSet::new();
    let mut results: Vec<(TaskId, T)> = Vec::with_capacity(total);
    let deadline = start + Duration::from_secs(300);

    // Prime each group with one task.
    let mut dead_members: Vec<MemberId> = Vec::new();
    for group in groups {
        if let Some((task, msg)) = pending.pop_front() {
            dead_members.extend(state.group_send(ctx, group, &msg)?);
            outstanding.insert(task, OutstandingTask::new(group.clone(), msg));
        }
    }

    while completed.len() < total {
        if Instant::now() > deadline {
            return Err(PctError::WorkerLost(
                "resilient run exceeded its deadline waiting for results".to_string(),
            ));
        }
        let now_ms = start.elapsed().as_millis() as u64;
        match ctx.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => {
                let from = envelope.from.clone();
                match envelope.payload {
                    PctMessage::Heartbeat => {
                        state.report.heartbeats += 1;
                        state.heartbeat_from(&from, now_ms);
                    }
                    msg => {
                        state.heartbeat_from(&from, now_ms);
                        let Some(task) = msg.task() else { continue };
                        if completed.contains(&task) {
                            state.report.duplicates_ignored += 1;
                            continue;
                        }
                        let Some(value) = extract(msg) else { continue };
                        completed.insert(task);
                        results.push((task, value));
                        state.note_result();
                        // Hand the next pending task to the group that just
                        // finished this one.
                        let finished_group = outstanding
                            .remove(&task)
                            .map(|t| t.group)
                            .or_else(|| MemberId::parse(&from).map(|m| m.group));
                        if let (Some(group), Some((next_task, next_msg))) =
                            (finished_group, pending.pop_front())
                        {
                            dead_members.extend(state.group_send(ctx, &group, &next_msg)?);
                            outstanding.insert(next_task, OutstandingTask::new(group, next_msg));
                        }
                    }
                }
            }
            Err(ScpError::Timeout) => {}
            Err(e) => return Err(e.into()),
        }

        // Fire the staged attack once enough results have been seen.
        state.fire_attack_if_due();

        // Retransmit tasks that have gone unanswered too long: a send lost
        // in transit (or a member that died holding the only copy) leaves
        // survivors that never received the task, which regeneration-only
        // re-issue would never repair.
        dead_members.extend(state.retransmit_overdue(ctx, &mut outstanding)?);

        // Attack assessment: anything whose heartbeat stopped (and whose
        // mailbox probe confirms the silence), or whose mailbox vanished
        // under a send, is regenerated immediately.
        let now_ms = start.elapsed().as_millis() as u64;
        let mut failures = state.sweep_and_probe(ctx, now_ms);
        failures.append(&mut dead_members);
        for failed in failures {
            state.handle_member_failure(ctx, runtime, &mut outstanding, now_ms, &failed)?;
        }
    }
    // Sort back into task order so the merge and covariance steps are
    // deterministic regardless of which replica answered first.
    results.sort_by_key(|(task, _)| *task);
    Ok(results.into_iter().map(|(_, value)| value).collect())
}

/// The manager side of the resilient protocol: the same three phases as the
/// plain distributed manager, but with group addressing, deduplication,
/// failure detection and regeneration — all carried by `state`.
fn run_resilient_manager(
    ctx: &mut ThreadContext<PctMessage>,
    runtime: &Runtime<PctMessage>,
    cube: &Arc<HyperCube>,
    config: &PctConfig,
    granularity: GranularityPolicy,
    state: &mut ResilientManagerState,
) -> Result<FusionOutput> {
    let groups: Vec<String> = state.membership.group_names();
    let specs = partition_for_workers(cube.dims(), groups.len(), granularity)?;
    let start = Instant::now();

    // ---- Phase 1: screening --------------------------------------------------------
    let screen_tasks: Vec<(TaskId, PctMessage)> = specs
        .iter()
        .map(|spec| {
            Ok((
                spec.id,
                PctMessage::ScreenTask {
                    task: spec.id,
                    view: spec.view(cube)?,
                    threshold_rad: config.screening_angle_rad,
                },
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let unique_sets = distribute_to_groups(
        ctx,
        runtime,
        &groups,
        state,
        start,
        screen_tasks,
        |msg| match msg {
            PctMessage::UniqueSet { unique, .. } => Some(unique),
            _ => None,
        },
    )?;
    let unique = merge_unique_sets(unique_sets, config.screening_angle_rad);
    let unique_count = unique.len();
    if unique.is_empty() {
        return Err(PctError::InvalidConfig(
            "screening produced an empty unique set".into(),
        ));
    }

    // ---- Phase 2: statistics -------------------------------------------------------
    let mean = mean_vector(&unique)?;
    let bands = mean.len();
    let chunk = unique.len().div_ceil(groups.len()).max(1);
    let cov_tasks: Vec<(TaskId, PctMessage)> = unique
        .chunks(chunk)
        .enumerate()
        .map(|(i, pixels)| {
            (
                i,
                PctMessage::CovarianceTask {
                    task: i,
                    mean: mean.clone(),
                    pixels: pixels.to_vec(),
                },
            )
        })
        .collect();
    let partials =
        distribute_to_groups(
            ctx,
            runtime,
            &groups,
            state,
            start,
            cov_tasks,
            |msg| match msg {
                PctMessage::CovarianceSum {
                    packed,
                    bands,
                    count,
                    ..
                } => Some((packed, bands, count)),
                _ => None,
            },
        )?;
    let mut sum = SymMatrix::zeros(bands);
    let mut total_count = 0u64;
    for (packed, b, count) in partials {
        sum.add_assign_sym(&SymMatrix::from_packed(b, packed)?)?;
        total_count += count;
    }
    if total_count == 0 {
        return Err(PctError::InvalidConfig(
            "covariance phase accumulated no pixels".into(),
        ));
    }
    sum.scale_in_place(1.0 / total_count as f64);
    let spec = finalize_transform(mean, &sum, config)?;
    let scales: Vec<(f64, f64)> = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3)
        .into_iter()
        .map(|s| (s.min, s.max))
        .collect();

    // ---- Phase 3: transform + colour ------------------------------------------------
    let transform_tasks: Vec<(TaskId, PctMessage)> = specs
        .iter()
        .map(|sub_spec| {
            Ok((
                sub_spec.id,
                PctMessage::TransformTask {
                    task: sub_spec.id,
                    view: sub_spec.view(cube)?,
                    mean: spec.mean.clone(),
                    transform: spec.transform.clone(),
                    scales: scales.clone(),
                },
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let strips = distribute_to_groups(
        ctx,
        runtime,
        &groups,
        state,
        start,
        transform_tasks,
        |msg| match msg {
            PctMessage::RgbStrip {
                row_start,
                rows,
                width,
                rgb,
                ..
            } => Some((row_start, rows, width, rgb)),
            _ => None,
        },
    )?;
    let image = assemble_image(cube.width(), cube.height(), strips)?;

    Ok(FusionOutput {
        image,
        eigenvalues: spec.eigenvalues,
        unique_count,
        pixels: cube.pixels(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::DistributedPct;
    use hsi::{SceneConfig, SceneGenerator};

    fn small_scene() -> HyperCube {
        SceneGenerator::new(SceneConfig::small(13))
            .unwrap()
            .generate()
    }

    /// The non-resilient distributed run with the identical decomposition —
    /// the resilient pipeline must produce exactly the same statistics and
    /// image, since replication and regeneration are transparent to the
    /// application.
    fn reference(cube: &HyperCube) -> FusionOutput {
        DistributedPct::new(PctConfig::paper(), 2)
            .run(cube)
            .unwrap()
    }

    #[test]
    fn resilient_level_1_matches_sequential() {
        let cube = small_scene();
        let reference = reference(&cube);
        let res = ResilientPct::new(PctConfig::paper(), 2, 1)
            .run(&cube)
            .unwrap();
        assert_eq!(res.unique_count, reference.unique_count);
        let diff = reference.image.mean_abs_diff(&res.image).unwrap();
        assert!(diff < 0.5, "level-1 resilient output diverges: {diff}");
    }

    #[test]
    fn resilient_level_2_matches_sequential_and_dedups() {
        let cube = small_scene();
        let reference = reference(&cube);
        let (out, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
            .run_with_attack(&cube, AttackPlan::none())
            .unwrap();
        let diff = reference.image.mean_abs_diff(&out.image).unwrap();
        assert!(diff < 0.5, "level-2 resilient output diverges: {diff}");
        // With two members per group, every task produces a duplicate result.
        assert!(
            report.duplicates_ignored > 0,
            "no duplicates observed: {report:?}"
        );
        assert!(report.regenerations.is_empty());
        // The view-based message plane never deep-copies a sub-cube payload.
        assert_eq!(report.bytes_cloned, 0, "payload bytes were cloned");
    }

    #[test]
    fn lost_group_send_is_retransmitted_to_surviving_members() {
        // Drop the first delivery to BOTH members of worker0's group: the
        // primed screening task is lost in transit while every member stays
        // alive and heartbeating.  No failure is ever detected, so the old
        // regeneration-only re-issue path would stall until the run
        // deadline; retransmit-on-timeout re-sends the task to the
        // survivors that never acked it.
        let cube = small_scene();
        let reference = reference(&cube);
        let (out, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
            .run_with_attack(
                &cube,
                AttackPlan::drop_next_send_to(&["worker0#0", "worker0#1"]),
            )
            .unwrap();
        assert!(
            report.retransmits >= 1,
            "the dropped task was never retransmitted: {report:?}"
        );
        assert!(
            report.regenerations.is_empty(),
            "nobody died, nothing should regenerate: {report:?}"
        );
        // Retransmission is transparent: the fused image stays bit-for-bit
        // identical to the undisturbed distributed run with the same
        // decomposition.
        assert_eq!(out.image, reference.image, "post-loss output diverges");
    }

    #[test]
    fn attack_on_one_member_is_survived_and_regenerated() {
        // A somewhat larger scene so the run comfortably outlives the
        // failure-detection latency after the attack fires.
        let mut config = SceneConfig::small(13);
        config.dims = hsi::CubeDims::new(64, 64, 24);
        let cube = SceneGenerator::new(config).unwrap().generate();
        let reference = reference(&cube);
        let (out, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
            .run_with_attack(&cube, AttackPlan::kill_first_worker_member())
            .unwrap();
        // The fused image is still correct: identical to the undisturbed run.
        let diff = reference.image.mean_abs_diff(&out.image).unwrap();
        assert!(diff < 0.5, "post-attack output diverges: {diff}");
        // The attack actually happened and was repaired.
        assert_eq!(report.members_attacked, vec!["worker0#0".to_string()]);
        assert!(
            !report.regenerations.is_empty(),
            "the killed member was never regenerated: {report:?}"
        );
        let regen = &report.regenerations[0];
        assert_eq!(regen.failed.group, "worker0");
        assert!(regen.replacement.incarnation >= 2);
    }

    #[test]
    fn detector_config_is_swappable() {
        let custom = ResilientPct::new(PctConfig::paper(), 2, 2).with_detector(DetectorConfig {
            heartbeat_period_ms: 10,
            miss_threshold: 3,
        });
        assert_eq!(custom.detector().heartbeat_period_ms, 10);
        assert_eq!(custom.detector().miss_threshold, 3);
        // The default stays the historical constant.
        let d = ResilientPct::new(PctConfig::paper(), 2, 2).detector();
        assert_eq!((d.heartbeat_period_ms, d.miss_threshold), (50, 8));
    }

    #[test]
    fn attack_plan_constructors() {
        assert_eq!(AttackPlan::none().victims.len(), 0);
        let plan = AttackPlan::kill_first_worker_member();
        assert_eq!(plan.victims, vec!["worker0#0".to_string()]);
        assert_eq!(plan.after_results, 1);
    }

    #[test]
    fn manager_state_builds_watches_and_shuts_down_cleanly() {
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut ctx = runtime.context(MANAGER).unwrap();
        let groups = vec!["g0".to_string(), "g1".to_string()];
        let state = ResilientManagerState::build(
            &runtime,
            &groups,
            2,
            DetectorConfig {
                heartbeat_period_ms: 50,
                miss_threshold: 8,
            },
            AttackPlan::none(),
        )
        .unwrap();
        assert_eq!(state.membership.all_members().len(), 4);
        assert_eq!(state.detector.watched(), 4);
        assert_eq!(state.handles.len(), 4);
        let report = state.shutdown(&mut ctx);
        assert!(report.regenerations.is_empty());
        assert!(report.members_attacked.is_empty());
    }

    #[test]
    fn manager_state_regenerates_a_killed_member_on_probe() {
        let runtime: Runtime<PctMessage> = Runtime::new(RuntimeConfig::default());
        let mut ctx = runtime.context(MANAGER).unwrap();
        let groups = vec!["g0".to_string()];
        let mut state = ResilientManagerState::build(
            &runtime,
            &groups,
            2,
            DetectorConfig {
                heartbeat_period_ms: 5,
                miss_threshold: 2,
            },
            AttackPlan::none(),
        )
        .unwrap();
        // Kill one member and wait for its thread to exit (mailbox gone).
        assert!(state.injector.attack("g0#0"));
        let start = Instant::now();
        while !state.handles[0].is_finished() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        // A send now reports the death; hand it to the failure handler.
        let dead = state
            .group_send(&mut ctx, "g0", &PctMessage::Heartbeat)
            .unwrap();
        assert_eq!(dead.len(), 1);
        let mut outstanding = HashMap::new();
        state
            .handle_member_failure(&mut ctx, &runtime, &mut outstanding, 0, &dead[0])
            .unwrap();
        assert_eq!(state.regenerator.history().len(), 1);
        assert_eq!(state.membership.get("g0").unwrap().members.len(), 2);
        let report = state.shutdown(&mut ctx);
        assert_eq!(report.members_attacked, vec!["g0#0".to_string()]);
        assert_eq!(report.regenerations.len(), 1);
    }
}
