//! Ablation: how the resiliency cost scales with the replication level
//! (an extension of Figure 4 — the paper only evaluates level 2).

use pct::distributed_sim::{simulate_fusion, SimParams};
use resilience::OverheadModel;

fn main() {
    println!("Replication-level ablation, 320x320x105 cube, 8 processors\n");
    println!(
        "{:>8} {:>12} {:>10} {:>16}",
        "level", "time (s)", "ratio", "predicted ratio"
    );

    let mut baseline = None;
    for level in 1..=4usize {
        let mut params = SimParams::figure4(8, false);
        params.overhead = OverheadModel::with_level(level);
        let report = simulate_fusion(&params).expect("simulation runs");
        let base = *baseline.get_or_insert(report.elapsed_secs);
        println!(
            "{:>8} {:>12.1} {:>10.2} {:>16.2}",
            level,
            report.elapsed_secs,
            report.elapsed_secs / base,
            OverheadModel::with_level(level).predicted_slowdown(),
        );
    }
    println!("\nMeasured ratios should track the predicted `level x 1.10` slowdown.");
}
