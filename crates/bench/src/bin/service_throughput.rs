//! Service-layer throughput benchmark: drives a fixed mixed workload of 32
//! fusion jobs through `fusiond` and reports the run.
//!
//! The deterministic counters (jobs, tasks, unique-set sizes, route mix) are
//! stable across runs and machines; the throughput figure is wall-clock and
//! recorded for trend-watching only.  Lines starting with `CSV` are parsed
//! by `bench/record.sh` into `bench/BENCH_history.csv`.
//!
//! Routing mix: every fourth job is pinned to the resilient lane, every
//! fourth is `Route::Auto` (which the default size-threshold policy resolves
//! to the shared-memory lane for these 28×28×14 cubes — deterministically),
//! and the rest are pinned standard.  The per-route job counts in the CSV
//! make routing-mix drift bisectable.
//!
//! Tenancy mix: three of every four jobs belong to tenant `t1` (weight 3),
//! the fourth to tenant `t2` (weight 1), so the admission plane's weighted
//! fair-share dequeue is exercised and the per-tenant
//! `tenant_{admitted,downgraded,shed,rejected}` counters land in the CSV.
//!
//! Telemetry overhead: the mixed workload runs once disabled (the
//! configuration every pre-telemetry row in the history was recorded
//! under, so the existing CSV rows stay comparable) and once with the
//! span layer, metrics registry and flight recorder all live (feeding
//! the `service_latency_{p50,p95,p99}_ms` percentile rows).  The
//! `service_telemetry_overhead_pct` row itself comes from a dedicated
//! *serial* probe — submit → wait one job at a time over the inline lane,
//! measured min-of-`REPS` per configuration in alternation — because the
//! concurrent run's wall clock is dominated by scheduler jitter, not by
//! the cost being measured.
//!
//! Failover counters: two deterministic chaos probes (a standard-worker
//! kill on a two-worker lane, and on a one-worker lane backed by an
//! inline executor) feed the `service_worker_{lost,reassigned,failover}`
//! rows — exact counts, not load-dependent rates.

use hsi::{CloneLedger, CubeDims, SceneConfig, SceneGenerator};
use linalg::{Matrix, Vector};
use pct::messages::PctMessage;
use resilience::DetectorConfig;
use service::{
    BackendKind, ChaosPhase, ChaosPlan, CubeSource, FusionService, JobSpec, Route, ServiceConfig,
    ServiceReport, TenantId, TenantQuota,
};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Telemetry;
use wire::{decode_body, encode_message, FrameReader, WireMessage};

const JOBS: u64 = 32;

fn scene(i: u64) -> SceneConfig {
    let mut config = SceneConfig::small(500 + i);
    config.dims = CubeDims::new(28, 28, 14);
    config
}

/// Runs the fixed 32-job workload once and returns the service report, the
/// sum of per-job unique-pixel counts (a determinism witness) and the
/// submit-to-last-completion wall time.
fn run(telemetry: Telemetry) -> (ServiceReport, usize, Duration) {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(4)
            .replica_groups(2)
            .replication_level(2)
            .shared_memory_executors(2)
            .queue_capacity(JOBS as usize)
            .max_in_flight(12)
            .tenant_quota(TenantId(1), TenantQuota::weighted(3))
            .tenant_quota(TenantId(2), TenantQuota::weighted(1))
            .telemetry(telemetry)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");

    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..JOBS {
        let cube = Arc::new(
            SceneGenerator::new(scene(i))
                .expect("valid scene")
                .generate(),
        );
        let route = match i % 4 {
            0 => Route::Pinned(BackendKind::Resilient),
            1 => Route::Auto,
            _ => Route::Pinned(BackendKind::Standard),
        };
        let tenant = if i % 4 == 3 { TenantId(2) } else { TenantId(1) };
        let spec = JobSpec::builder(CubeSource::InMemory(cube))
            .priority(service::Priority::ALL[i as usize % 3])
            .tenant(tenant)
            .route(route)
            .shards(4)
            .build()
            .expect("valid spec");
        handles.push(service.submit(spec).expect("submission accepted"));
    }

    let mut unique_sum: usize = 0;
    for handle in &mut handles {
        let outcome = handle.wait().expect("job completes");
        unique_sum += outcome.output().expect("completed").unique_count;
    }
    let elapsed = started.elapsed();
    drop(handles);
    (service.shutdown(), unique_sum, elapsed)
}

/// Repetitions per configuration for the overhead probe; the minimum wall
/// of each set is the noise-robust estimate.
const REPS: usize = 5;

/// Jobs per overhead-probe pass, each submitted and waited to completion
/// before the next (fully serial, so scheduler jitter cannot dominate).
const PROBE_JOBS: u64 = 8;

/// One serial pass over the shared-memory inline lane with a cube large
/// enough that per-job compute (tens of milliseconds) dwarfs cross-thread
/// wakeup latency — on a shared container the wakeups, not the telemetry,
/// are what varies run to run.  The per-job telemetry cost (span tree +
/// counters + histograms + recorder pushes) is fixed, so this measures it
/// against a realistic amount of work per job.
fn overhead_probe(telemetry: Telemetry) -> Duration {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(0)
            .shared_memory_executors(1)
            .queue_capacity(4)
            .max_in_flight(1)
            .telemetry(telemetry)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    let mut probe_scene = scene(0);
    probe_scene.dims = CubeDims::new(64, 64, 32);
    let cube = Arc::new(
        SceneGenerator::new(probe_scene)
            .expect("valid scene")
            .generate(),
    );
    let started = Instant::now();
    for _ in 0..PROBE_JOBS {
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .pinned(BackendKind::SharedMemory)
            .build()
            .expect("valid spec");
        service
            .submit(spec)
            .expect("submission accepted")
            .wait()
            .expect("job completes");
    }
    let elapsed = started.elapsed();
    service.shutdown();
    elapsed
}

/// One deterministic failover probe: a chaos kill takes `svc0` down at the
/// first screening dispatch of the (single) job.  The screening chain is
/// serial, so the dead worker holds exactly one in-flight task — with a
/// surviving worker the run yields exactly one reassignment, and with no
/// survivor it yields exactly one lane failover (to the shared-memory
/// executor).  The counters are exact, so the CSV rows alarm on any change
/// to detection or re-dispatch behaviour rather than drifting with load.
fn failover_probe(standard_workers: usize, shm_executors: usize) -> ServiceReport {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(standard_workers)
            .replica_groups(0)
            .shared_memory_executors(shm_executors)
            .standard_detector(DetectorConfig {
                heartbeat_period_ms: 10,
                miss_threshold: 3,
            })
            .queue_capacity(4)
            .max_in_flight(2)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "svc0"))
            .build()
            .expect("config validates"),
    )
    .expect("service starts");
    let cube = Arc::new(
        SceneGenerator::new(scene(99))
            .expect("valid scene")
            .generate(),
    );
    let spec = JobSpec::builder(CubeSource::InMemory(cube))
        .pinned(BackendKind::Standard)
        .shards(3)
        .build()
        .expect("valid spec");
    let outcome = service
        .submit(spec)
        .expect("submission accepted")
        .wait()
        .expect("job reaches a terminal state");
    assert!(
        outcome.output().is_some(),
        "failover probe job must survive the kill"
    );
    service.shutdown()
}

/// Wire-codec probe: the fixed message set of a three-shard fusion
/// exchange (handshake, screening and transform tasks per shard, a
/// unique-set reply, heartbeat, shutdown), encoded and decoded min-of-`REPS`
/// times.  The frame and byte counts are deterministic layout witnesses —
/// any codec change moves them; the per-MB timings are trend rows.
///
/// The probe also *asserts* the wire invariant in release mode: the
/// clone-ledger delta across one encode pass equals exactly the payload
/// bytes of the views embedded in the set, because the codec materializes
/// views straight into frame bodies and copies pixel data nowhere else.
fn wire_probe() -> (usize, usize, f64, f64) {
    let cube = Arc::new(SceneGenerator::new(scene(0)).unwrap().generate());
    let views = hsi::partition::partition_views(&cube, 3).expect("three shards");
    let bands = cube.dims().bands;
    let mean = Vector::from_vec(vec![0.5; bands]);
    let transform =
        Matrix::from_row_major(3, bands, (0..3 * bands).map(|i| i as f64 * 0.01).collect())
            .expect("dims consistent");
    let unique: Vec<Vector> = (0..17)
        .map(|i| Vector::from_vec((0..bands).map(|k| (i * bands + k) as f64).collect()))
        .collect();

    let mut messages = vec![WireMessage::hello()];
    for (i, view) in views.iter().enumerate() {
        messages.push(WireMessage::Pct(PctMessage::ScreenTask {
            task: i,
            view: view.clone(),
            threshold_rad: 0.0874,
        }));
        messages.push(WireMessage::Pct(PctMessage::TransformTask {
            task: 100 + i,
            view: view.clone(),
            mean: mean.clone(),
            transform: transform.clone(),
            scales: vec![(0.0, 1.0); 3],
        }));
    }
    messages.push(WireMessage::Pct(PctMessage::UniqueSet { task: 7, unique }));
    messages.push(WireMessage::Pct(PctMessage::Heartbeat));
    messages.push(WireMessage::Pct(PctMessage::Shutdown));

    // One counted pass, reconciled against the clone ledger: each view is
    // embedded in two messages, and nothing else may copy payload.
    let ledger = CloneLedger::snapshot();
    let encoded: Vec<Vec<u8>> = messages.iter().map(encode_message).collect();
    let view_payload: u64 = views.iter().map(|v| 2 * v.payload_bytes() as u64).sum();
    assert_eq!(
        ledger.delta(),
        view_payload,
        "wire bytes do not reconcile with the clone ledger"
    );

    let frames = encoded.len();
    let bytes: usize = encoded.iter().map(Vec::len).sum();
    let mb = bytes as f64 / (1024.0 * 1024.0);

    let mut encode_wall = Duration::MAX;
    let mut decode_wall = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        let pass: Vec<Vec<u8>> = messages.iter().map(encode_message).collect();
        encode_wall = encode_wall.min(start.elapsed());
        assert_eq!(pass.iter().map(Vec::len).sum::<usize>(), bytes);

        let start = Instant::now();
        let mut reader = FrameReader::new();
        let mut decoded = 0usize;
        for frame in &encoded {
            reader.push(frame);
            while let Some(body) = reader.next_frame().expect("frames are well-formed") {
                decode_body(&body).expect("bodies decode");
                decoded += 1;
            }
        }
        decode_wall = decode_wall.min(start.elapsed());
        assert_eq!(decoded, frames, "frame count drifted during decode");
    }
    (
        frames,
        bytes,
        encode_wall.as_nanos() as f64 / mb,
        decode_wall.as_nanos() as f64 / mb,
    )
}

fn main() {
    // Untimed warm-up so neither measured pass below absorbs the
    // cold-start costs (thread spawning, allocator, page faults) alone.
    run(Telemetry::disabled());

    // The mixed workload, disabled: the configuration all pre-existing CSV
    // rows were recorded under.  Then the same workload enabled: its
    // outputs must match, and its histograms feed the percentile rows.
    let enabled = Telemetry::enabled();
    let (report, unique_sum, _) = run(Telemetry::disabled());
    let (enabled_report, enabled_unique_sum, _) = run(enabled.clone());
    assert_eq!(
        enabled_unique_sum, unique_sum,
        "telemetry must not change job outputs"
    );
    assert_eq!(
        enabled_report.jobs_completed, report.jobs_completed,
        "telemetry must not change job outcomes"
    );

    // The serial overhead probe: both configurations in alternation so
    // they sample the same process-age distribution, with the order within
    // each pair flipped every rep so slow per-process drift (frequency
    // scaling, cache state) biases neither configuration.  The probes get
    // their own enabled instance so the big probe jobs don't pollute the
    // mixed run's latency histogram reported below.
    let probe_enabled = Telemetry::enabled();
    let mut disabled_wall = Duration::MAX;
    let mut enabled_wall = Duration::MAX;
    for rep in 0..REPS {
        if rep % 2 == 0 {
            disabled_wall = disabled_wall.min(overhead_probe(Telemetry::disabled()));
            enabled_wall = enabled_wall.min(overhead_probe(probe_enabled.clone()));
        } else {
            enabled_wall = enabled_wall.min(overhead_probe(probe_enabled.clone()));
            disabled_wall = disabled_wall.min(overhead_probe(Telemetry::disabled()));
        }
    }

    println!("service throughput benchmark — {JOBS} mixed jobs, 28x28x14 cubes");
    println!();
    print!("{}", report.render());
    println!();
    // Stable, machine-independent numbers first; wall-clock throughput last.
    println!("CSV service_jobs_completed {}", report.jobs_completed);
    println!("CSV service_tasks_dispatched {}", report.tasks_dispatched);
    println!("CSV service_unique_sum {unique_sum}");
    // The routing mix, per lane: pinned resilient (8), auto -> shared-memory
    // under the default size-threshold policy (8), pinned standard (16).
    for kind in BackendKind::ALL {
        let stats = report.route(kind);
        let label = kind.label().replace('-', "_");
        println!("CSV service_route_{label}_jobs {}", stats.jobs_routed);
        println!("CSV service_route_{label}_auto {}", stats.auto_routed);
    }
    // The zero-copy message plane, measured per phase via the clone ledger:
    // `bytes_cloned` must be 0 for the screening and transform phases, and
    // `payload_bytes_shipped` is the volume the pre-view plane deep-copied
    // per task (the "before" the view redesign removed).
    println!(
        "CSV service_bytes_cloned_screen {}",
        report.bytes_cloned_screen
    );
    println!(
        "CSV service_bytes_cloned_transform {}",
        report.bytes_cloned_transform
    );
    println!(
        "CSV service_payload_bytes_shipped {}",
        report.payload_bytes_shipped
    );
    // The wire codec, from its own deterministic probe: frame and byte
    // counts pin the binary layout (any codec change moves them and is
    // bisectable here), the per-MB timings track codec cost.  The probe
    // asserts en route that the encoded view bytes reconcile exactly with
    // the clone-ledger delta — the wire invariant, checked in release mode.
    let (wire_frames, wire_bytes, encode_ns_per_mb, decode_ns_per_mb) = wire_probe();
    println!("CSV wire_frames {wire_frames}");
    println!("CSV wire_bytes {wire_bytes}");
    println!("CSV wire_encode_ns_per_mb {encode_ns_per_mb:.0}");
    println!("CSV wire_decode_ns_per_mb {decode_ns_per_mb:.0}");
    // Per-tenant admission-plane attribution: 24 jobs for t1, 8 for t2, all
    // admitted (the queue is sized for the burst, so shed/rejected stay 0 —
    // a drift here means the admission plane changed behaviour).
    for tenant in [TenantId(1), TenantId(2)] {
        let stats = report.tenant(tenant);
        let label = tenant.label();
        println!(
            "CSV service_tenant_{label}_admitted {}",
            stats.jobs_admitted
        );
        println!(
            "CSV service_tenant_{label}_downgraded {}",
            stats.jobs_downgraded
        );
        println!("CSV service_tenant_{label}_shed {}", stats.jobs_shed);
        println!(
            "CSV service_tenant_{label}_rejected {}",
            stats.jobs_rejected
        );
    }
    println!(
        "CSV service_jobs_per_sec {:.2}",
        report.throughput_jobs_per_sec()
    );

    let overhead_pct =
        (enabled_wall.as_secs_f64() / disabled_wall.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!("CSV service_telemetry_overhead_pct {overhead_pct:.2}");
    // The standard-lane failover counters, from two deterministic probes:
    // a two-worker lane (the kill costs one worker and exactly one task
    // reassignment) and a one-worker lane backed by an inline executor
    // (the kill drains the lane and fails the job over).  Expected rows:
    // lost 2, reassigned 1, failover 1.
    let reassign = failover_probe(2, 0);
    let drain = failover_probe(1, 1);
    println!(
        "CSV service_worker_lost {}",
        reassign.workers_lost + drain.workers_lost
    );
    println!(
        "CSV service_worker_reassigned {}",
        reassign.tasks_reassigned
    );
    println!("CSV service_worker_failover {}", drain.lane_failovers);
    // End-to-end submit-to-completion latency percentiles from the enabled
    // run's histogram (linear interpolation within fixed buckets, the same
    // estimate Prometheus' `histogram_quantile` makes).
    let latency = enabled.histogram("fusiond_job_latency_seconds", &[]);
    for (q, name) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let ms = latency.as_ref().and_then(|h| h.quantile(q)).unwrap_or(0.0) * 1e3;
        println!("CSV service_latency_{name}_ms {ms:.3}");
    }
}
