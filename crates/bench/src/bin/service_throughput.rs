//! Service-layer throughput benchmark: drives a fixed mixed workload of 32
//! fusion jobs through `fusiond` and reports the run.
//!
//! The deterministic counters (jobs, tasks, unique-set sizes) are stable
//! across runs and machines; the throughput figure is wall-clock and
//! recorded for trend-watching only.  Lines starting with `CSV` are parsed
//! by `bench/record.sh` into `bench/BENCH_history.csv`.

use hsi::{CubeDims, SceneConfig, SceneGenerator};
use service::{
    BackendKind, CubeSource, FusionService, JobSpec, PoolConfig, Priority, ServiceConfig,
};
use std::sync::Arc;

const JOBS: u64 = 32;

fn scene(i: u64) -> SceneConfig {
    let mut config = SceneConfig::small(500 + i);
    config.dims = CubeDims::new(28, 28, 14);
    config
}

fn main() {
    let service = FusionService::start(ServiceConfig {
        pool: PoolConfig {
            standard_workers: 4,
            replica_groups: 2,
            replication_level: 2,
            ..PoolConfig::default()
        },
        queue_capacity: JOBS as usize,
        max_in_flight: 12,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let mut jobs = Vec::new();
    for i in 0..JOBS {
        let cube = Arc::new(
            SceneGenerator::new(scene(i))
                .expect("valid scene")
                .generate(),
        );
        let spec = JobSpec::new(CubeSource::InMemory(cube))
            .with_priority(Priority::ALL[i as usize % 3])
            .with_backend(if i % 4 == 0 {
                BackendKind::Resilient
            } else {
                BackendKind::Standard
            })
            .with_shards(4);
        jobs.push(service.submit(spec).expect("submission accepted"));
    }

    let mut unique_sum: usize = 0;
    for id in jobs {
        let output = service.wait(id).expect("job completes");
        unique_sum += output.unique_count;
    }
    let report = service.shutdown();

    println!("service throughput benchmark — {JOBS} mixed jobs, 28x28x14 cubes");
    println!();
    print!("{}", report.render());
    println!();
    // Stable, machine-independent numbers first; wall-clock throughput last.
    println!("CSV service_jobs_completed {}", report.jobs_completed);
    println!("CSV service_tasks_dispatched {}", report.tasks_dispatched);
    println!("CSV service_unique_sum {unique_sum}");
    // The zero-copy message plane, measured per phase via the clone ledger:
    // `bytes_cloned` must be 0 for the screening and transform phases, and
    // `payload_bytes_shipped` is the volume the pre-view plane deep-copied
    // per task (the "before" this PR removes).
    println!(
        "CSV service_bytes_cloned_screen {}",
        report.bytes_cloned_screen
    );
    println!(
        "CSV service_bytes_cloned_transform {}",
        report.bytes_cloned_transform
    );
    println!(
        "CSV service_payload_bytes_shipped {}",
        report.payload_bytes_shipped
    );
    println!(
        "CSV service_jobs_per_sec {:.2}",
        report.throughput_jobs_per_sec()
    );
}
