//! Cluster-simulator throughput: how many seeded fault scenarios per
//! second the deterministic simulator sustains, and the virtual-time
//! detection-latency quantiles it measures across the sweep.
//!
//! Lines starting with `CSV` are parsed by `bench/record.sh`:
//! `sim_scenarios_per_sec` is wall-clock and trend-only;
//! `sim_detection_latency_p{50,99}_virtual_ms` are *virtual-time*
//! quantities — deterministic functions of the fixed sweep seed, so any
//! drift means detector or protocol behaviour changed.  The same is true
//! of `sim_sweep_passed` (out of 1000) and `sim_sweep_detections`.

use sim::Sweep;
use std::time::Instant;

fn main() {
    let sweep = Sweep::new(0xF05E, 1000);
    let started = Instant::now();
    let report = sweep.run().expect("every scenario converges");
    let wall = started.elapsed();

    println!(
        "cluster simulator: {} scenarios in {:.2} s wall",
        report.rows.len(),
        wall.as_secs_f64()
    );
    println!("{}", report.pass_table());

    let p50 = report
        .detection_latency_quantile_ns(0.5)
        .map_or(0.0, |ns| ns as f64 / 1e6);
    let p99 = report
        .detection_latency_quantile_ns(0.99)
        .map_or(0.0, |ns| ns as f64 / 1e6);
    println!(
        "CSV sim_scenarios_per_sec {:.0}",
        report.rows.len() as f64 / wall.as_secs_f64()
    );
    println!("CSV sim_detection_latency_p50_virtual_ms {p50:.3}");
    println!("CSV sim_detection_latency_p99_virtual_ms {p99:.3}");
    println!("CSV sim_sweep_passed {}", report.passed());
    println!(
        "CSV sim_sweep_detections {}",
        report.rows.iter().map(|r| r.detections).sum::<u32>()
    );
}
