//! Ingest-path throughput benchmark: writes a deterministic folder of
//! interleaved cube files (one big blocker, eight distinct small scenes,
//! three duplicates) and replays it through `IngestPump` → `CubeStore` →
//! `fusiond` with a tight in-flight-bytes watermark.
//!
//! Every `CSV` counter is deterministic: the file set, replay order, chunk
//! count, store hit/miss split and shed count are fixed by construction
//! (the blocker occupies the single in-flight slot for far longer than the
//! pump needs to replay the burst, so the watermark decisions never race).
//! Lines starting with `CSV` are parsed by `bench/record.sh` into
//! `bench/BENCH_history.csv`.
//!
//! Telemetry overhead: the same replay runs in both configurations —
//! disabled (the configuration every pre-telemetry row in the history was
//! recorded under, so the existing CSV rows stay comparable) and with the
//! span layer, metrics registry and flight recorder all live.  One probe
//! is several consecutive replay-plus-drain runs (pump run through
//! `service.shutdown()`): the drain is serial compute on the single
//! worker, so the summed wall is compute-dominated — hundreds of
//! milliseconds — rather than the few milliseconds of mostly scheduler
//! jitter the replay alone would measure.  Each configuration takes the
//! minimum over `REPS` probes, alternating and order-flipped per rep
//! after a warm-up.  `ingest_cubes_per_sec` keeps its original meaning
//! (replay wall only).  The delta lands in
//! `ingest_telemetry_overhead_pct`.

use hsi::io::{write_cube_as, Interleave};
use hsi::{CubeDims, SceneConfig, SceneGenerator};
use ingest::{DirectorySource, IngestConfig, IngestPump, IngestReport, SheddingPolicy};
use service::{BackendKind, FusionService, Route, ServiceConfig, ServiceReport, TenantId};
use std::path::Path;
use std::time::{Duration, Instant};
use telemetry::Telemetry;

/// The tenant all ingested cubes are attributed to (the pump submits every
/// job under one tenant, as `JobClass::Bulk`).
const TENANT: TenantId = TenantId(9);

fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
    let mut config = SceneConfig::small(900 + seed);
    config.dims = CubeDims::new(side, side, bands);
    config
}

/// Replays the prepared directory through one pump run and returns the
/// ingest report, the service report, the replay wall time, and the
/// replay-plus-drain wall time (through `service.shutdown()`).
fn run(
    dir: &Path,
    watermark_bytes: usize,
    telemetry: Telemetry,
) -> (IngestReport, ServiceReport, Duration, Duration) {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(0)
            .shared_memory_executors(0)
            .queue_capacity(16)
            .max_in_flight(1)
            .telemetry(telemetry)
            .build()
            .expect("config validates"),
    )
    .expect("service starts");

    let config = IngestConfig {
        shedding: SheddingPolicy::unbounded().with_max_in_flight_bytes(watermark_bytes),
        route: Route::Pinned(BackendKind::Standard),
        shards: 4,
        tenant: TENANT,
        ..IngestConfig::default()
    };
    let started = Instant::now();
    let run = IngestPump::new(&service, config)
        .run(vec![Box::new(DirectorySource::with_chunk_bytes(dir, 8192))])
        .expect("pump runs");
    let replay = started.elapsed();
    let service_report = service.shutdown();
    let total = started.elapsed();
    (run.report, service_report, replay, total)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ingest_throughput_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 00: the blocker; 01..08: distinct small scenes; 09..11: duplicates of
    // the first three small scenes, re-exported in a different interleave.
    let blocker = scene(0, 64, 32);
    let blocker_bytes = blocker.dims.byte_size();
    let small_bytes = CubeDims::new(24, 24, 12).byte_size();
    let mut configs = vec![(blocker, Interleave::Bip)];
    for i in 0..8u64 {
        configs.push((scene(1 + i, 24, 12), Interleave::ALL[(i % 3) as usize]));
    }
    for i in 0..3u64 {
        configs.push((
            scene(1 + i, 24, 12),
            Interleave::ALL[((i + 1) % 3) as usize],
        ));
    }
    for (i, (config, interleave)) in configs.iter().enumerate() {
        let cube = SceneGenerator::new(config.clone())
            .expect("valid scene")
            .generate();
        write_cube_as(&cube, *interleave, dir.join(format!("{i:02}_cube.hsif")))
            .expect("cube written");
    }

    // Watermark: the blocker plus exactly three small cubes in flight.
    let watermark = blocker_bytes + 3 * small_bytes;

    // Untimed warm-up so the overhead comparison below is not dominated by
    // cold-start costs (thread spawning, file-cache population) that the
    // first measured probe would otherwise absorb alone.  Each
    // configuration is then probed REPS times and the minimum wall of each
    // set is the noise-robust estimate.
    const REPS: usize = 5;
    run(&dir, watermark, Telemetry::disabled());

    // The disabled runs are the configuration all pre-existing CSV rows
    // were recorded under; their first report feeds the deterministic rows
    // and its replay wall feeds `ingest_cubes_per_sec`.  The overhead is
    // compared on the replay-plus-drain wall (see module docs).
    let enabled = Telemetry::enabled();
    let (report, service_report, replay_wall, _) = run(&dir, watermark, Telemetry::disabled());
    let (enabled_report, _, _, _) = run(&dir, watermark, enabled.clone());

    // One probe is `PROBE_PASSES` consecutive replay-plus-drain runs; the
    // sum is long enough (hundreds of milliseconds of serial compute) that
    // per-wakeup scheduler jitter partially cancels.  The order within
    // each rep's pair flips so slow per-process drift (frequency scaling,
    // cache state) biases neither configuration.
    const PROBE_PASSES: usize = 4;
    let probe = |telemetry: &Telemetry| -> Duration {
        (0..PROBE_PASSES)
            .map(|_| run(&dir, watermark, telemetry.clone()).3)
            .sum()
    };
    let disabled_tel = Telemetry::disabled();
    let mut disabled_wall = Duration::MAX;
    let mut enabled_wall = Duration::MAX;
    for rep in 0..REPS {
        if rep % 2 == 0 {
            disabled_wall = disabled_wall.min(probe(&disabled_tel));
            enabled_wall = enabled_wall.min(probe(&enabled));
        } else {
            enabled_wall = enabled_wall.min(probe(&enabled));
            disabled_wall = disabled_wall.min(probe(&disabled_tel));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    let enabled_totals = enabled_report.totals();
    let totals = report.totals();
    assert_eq!(
        enabled_totals.cubes_seen, totals.cubes_seen,
        "telemetry must not change arrivals"
    );
    assert_eq!(
        (enabled_totals.store_hits, enabled_totals.store_misses),
        (totals.store_hits, totals.store_misses),
        "telemetry must not change the store dedup split"
    );

    println!("ingest throughput benchmark — 12 cube files (1 blocker, 8 distinct, 3 duplicates)");
    println!();
    print!("{}", report.render());
    println!();
    // Stable, machine-independent numbers first; wall-clock trend last.
    println!("CSV ingest_cubes {}", totals.cubes_seen);
    println!("CSV ingest_chunks {}", totals.chunks);
    println!("CSV ingest_shed {}", totals.cubes_shed());
    println!("CSV ingest_store_hits {}", totals.store_hits);
    println!("CSV ingest_store_misses {}", totals.store_misses);
    println!("CSV ingest_bytes_assembled {}", totals.bytes_assembled);
    // Per-tenant attribution, as both sides of the admission plane saw it:
    // admitted/downgraded/rejected from the service's governor, shed from
    // the ingest report (the pump records every shed, watermark or service,
    // against the one tenant it submits under).
    let tenant_stats = service_report.tenant(TENANT);
    let label = TENANT.label();
    println!(
        "CSV ingest_tenant_{label}_admitted {}",
        tenant_stats.jobs_admitted
    );
    println!(
        "CSV ingest_tenant_{label}_downgraded {}",
        tenant_stats.jobs_downgraded
    );
    println!("CSV ingest_tenant_{label}_shed {}", totals.cubes_shed());
    println!(
        "CSV ingest_tenant_{label}_rejected {}",
        tenant_stats.jobs_rejected
    );
    println!(
        "CSV ingest_cubes_per_sec {:.2}",
        totals.cubes_seen as f64 / replay_wall.as_secs_f64().max(1e-9)
    );

    let overhead_pct =
        (enabled_wall.as_secs_f64() / disabled_wall.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!("CSV ingest_telemetry_overhead_pct {overhead_pct:.2}");
}
