//! Regenerates Figure 5: fusion time versus processors for
//! `#sub-cubes = #proc`, `#proc x 2` and `#proc x 3`, plus the fine-grain
//! tail-off the paper describes past ~32 sub-cubes.

use bench::{figure5_cells, FIGURE5_PROCESSORS};
use pct::distributed_sim::{simulate_fusion, SimParams};

fn main() {
    let cells = figure5_cells();
    println!("Figure 5 — granularity control, 320x320x105 cube\n");
    println!(
        "{:>10} {:>18} {:>18} {:>18}",
        "procs", "#sub = #proc (s)", "#sub = #proc x2 (s)", "#sub = #proc x3 (s)"
    );
    for &p in &FIGURE5_PROCESSORS {
        let t = |m: usize| {
            cells
                .iter()
                .find(|c| c.processors == p && c.multiplier == m)
                .unwrap()
                .report
                .elapsed_secs
        };
        println!("{:>10} {:>18.1} {:>18.1} {:>18.1}", p, t(1), t(2), t(3));
    }

    // The paper: "The performance tailed off when the problem was split into
    // more than n = 32 sub-cubes."  Sweep the total sub-cube count at 16
    // processors to show the same qualitative tail-off.
    println!("\nFine-granularity sweep at 16 processors (total sub-cubes vs time):");
    for per_worker in [1usize, 2, 3, 5, 10, 20] {
        let report = simulate_fusion(&SimParams::figure5(16, per_worker)).expect("simulation runs");
        println!(
            "  {:>4} sub-cubes: {:>8.1} s",
            report.sub_cubes, report.elapsed_secs
        );
    }
}
