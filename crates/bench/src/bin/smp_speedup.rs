//! Reproduces the paper's shared-memory claim (§4): "On a shared memory
//! system, the concurrent algorithm presented here operates within 5% of
//! linear speedup" because no communication is involved.
//!
//! Runs the rayon shared-memory implementation on a synthetic scene with
//! thread pools of increasing size and reports real wall-clock speed-up on
//! this machine.

use hsi::{SceneConfig, SceneGenerator};
use pct::{PctConfig, SharedMemoryPct};
use std::time::Instant;

fn main() {
    // A mid-size scene: big enough to parallelise, small enough to finish in
    // seconds per configuration.
    let mut config = SceneConfig::paper_eval(11);
    config.dims = hsi::CubeDims::new(160, 160, 48);
    let cube = SceneGenerator::new(config).expect("valid scene").generate();

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();

    println!(
        "Shared-memory PCT speed-up ({}x{}x{} cube, this machine)\n",
        160, 160, 48
    );
    println!(
        "{:>10} {:>12} {:>10} {:>12}",
        "threads", "time (s)", "speedup", "% of linear"
    );

    let mut reference = None;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("rayon pool");
        let pct = SharedMemoryPct::new(PctConfig::paper()).with_blocks(threads * 4);
        let start = Instant::now();
        let out = pool.install(|| pct.run(&cube)).expect("fusion succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        let reference_time = *reference.get_or_insert(elapsed);
        let speedup = reference_time / elapsed;
        println!(
            "{:>10} {:>12.2} {:>10.2} {:>11.1}%",
            threads,
            elapsed,
            speedup,
            100.0 * speedup / threads as f64
        );
        // Keep the compiler from optimising the run away.
        assert!(out.pixels > 0);
    }
    println!("\nThe paper reports within ~5% of linear on its SMP; exact numbers depend on this machine's core count and memory bandwidth.");
}
