//! Regenerates Figure 4: time and speed-up versus processors, with and
//! without level-2 resiliency, plus the overhead decomposition quoted in the
//! paper's conclusion ("approximately a 10% reduction in overall performance
//! above that expected by the cost of replication").

use bench::figure4_rows;

fn main() {
    let rows = figure4_rows();
    let reference = rows
        .iter()
        .find(|r| r.processors == 1)
        .map(|r| r.plain_secs)
        .expect("the single-processor row exists");

    println!("Figure 4 — concurrent spectral-screening PCT, 320x320x105 cube");
    println!("(simulated 300 MHz workstation cluster, 100BaseT-era LAN)\n");
    println!(
        "{:>10} {:>16} {:>16} {:>12} {:>12} {:>10}",
        "procs", "no-resil (s)", "resil-2 (s)", "speedup", "speedup-r2", "ratio"
    );
    for row in &rows {
        println!(
            "{:>10} {:>16.1} {:>16.1} {:>12.2} {:>12.2} {:>10.2}",
            row.processors,
            row.plain_secs,
            row.resilient_secs,
            row.plain_speedup(reference),
            row.resilient_speedup(reference),
            row.overhead_ratio(),
        );
    }

    // Decompose the resiliency overhead: replication alone would double the
    // time; anything beyond that is protocol overhead.
    println!("\nOverhead decomposition (resilient / plain):");
    for row in rows.iter().filter(|r| r.processors >= 2) {
        let ratio = row.overhead_ratio();
        let protocol_pct = (ratio / 2.0 - 1.0) * 100.0;
        println!(
            "  P={:>2}: total x{:.2} = replication x2.00 + protocol {:+.1}%",
            row.processors, ratio, protocol_pct
        );
    }
    let p16 = rows.iter().find(|r| r.processors == 16).unwrap();
    println!(
        "\nAt 16 processors the non-resilient run reaches {:.1}% of linear speed-up; the paper reports operating within 20% of linear.",
        100.0 * p16.plain_speedup(reference) / 16.0
    );
}
