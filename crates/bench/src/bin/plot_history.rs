//! Renders `bench/BENCH_history.csv` into a committed SVG trend chart.
//!
//! Up to four panels: wall-clock throughput (`service_jobs_per_sec`,
//! `ingest_cubes_per_sec`), shed/reject pressure (`ingest_shed` plus
//! every per-tenant `*_shed` / `*_rejected` counter), and — once the
//! history contains them — the telemetry latency percentiles (every
//! `*_p50_ms` / `*_p95_ms` / `*_p99_ms` row) and the cluster simulator's
//! virtual-time detection-latency quantiles (`sim_*_virtual_ms`,
//! deterministic functions of the sweep seed).  The x-axis is the
//! sequence of recorded snapshots (one per `bench/record.sh` run, labelled
//! by short rev); y-axes auto-scale from zero.  The SVG is hand-rolled —
//! no plotting dependency — and deterministic for a given CSV, so the
//! committed `bench/BENCH_trends.svg` only churns when the history does.
//!
//! Usage: `cargo run --release -p bench --bin plot_history`
//! (optionally: `-- <input.csv> <output.svg>`)

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Distinct series colours (repeats after eight).
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const WIDTH: f64 = 920.0;
const PANEL_HEIGHT: f64 = 250.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 190.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 40.0;

/// The parsed history: snapshot labels in recording order, and per metric
/// the `(snapshot index, value)` points.
struct History {
    snapshots: Vec<String>,
    series: BTreeMap<String, Vec<(usize, f64)>>,
}

/// Parses `recorded_at,rev,metric,value` rows, keeping snapshot order of
/// first appearance.  Malformed rows are skipped — the history file is
/// appended by shell and a torn line must not kill the plot.
fn parse_history(csv: &str) -> History {
    let mut snapshots: Vec<String> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    let mut series: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    for line in csv.lines().skip(1) {
        let mut fields = line.split(',');
        let (Some(stamp), Some(rev), Some(metric), Some(value)) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            continue;
        };
        let Ok(value) = value.trim().parse::<f64>() else {
            continue;
        };
        let key = format!("{stamp},{rev}");
        let index = match keys.iter().position(|k| k == &key) {
            Some(i) => i,
            None => {
                keys.push(key);
                snapshots.push(rev.to_string());
                snapshots.len() - 1
            }
        };
        series
            .entry(metric.to_string())
            .or_default()
            .push((index, value));
    }
    History { snapshots, series }
}

/// A rounded-up axis maximum so gridline labels come out clean.
fn nice_max(max: f64) -> f64 {
    if max <= 0.0 {
        return 1.0;
    }
    let magnitude = 10f64.powf(max.log10().floor());
    let normalized = max / magnitude;
    let nice = [1.0, 2.0, 2.5, 5.0, 10.0]
        .into_iter()
        .find(|n| normalized <= *n)
        .unwrap_or(10.0);
    nice * magnitude
}

/// Formats an axis label without trailing zero noise.
fn axis_label(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e9 {
        format!("{}", value as i64)
    } else {
        format!("{value:.2}")
    }
}

/// Draws one panel of series as gridlines + polylines + point markers +
/// legend, with `top` as the panel's y-offset into the document.
fn render_panel(
    svg: &mut String,
    title: &str,
    top: f64,
    snapshots: &[String],
    panel_series: &[(&str, &[(usize, f64)])],
) {
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = PANEL_HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let x_of = |i: usize| {
        let n = snapshots.len().max(2) - 1;
        MARGIN_LEFT + plot_w * i as f64 / n as f64
    };
    let max = panel_series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(_, v)| *v))
        .fold(0.0_f64, f64::max);
    let y_max = nice_max(max);
    let y_of = |v: f64| top + MARGIN_TOP + plot_h * (1.0 - v / y_max);

    let _ = writeln!(
        svg,
        r##"<text x="{MARGIN_LEFT}" y="{}" font-size="14" font-weight="bold" fill="#222">{title}</text>"##,
        top + 18.0
    );
    // Horizontal gridlines with y labels.
    for tick in 0..=4 {
        let v = y_max * tick as f64 / 4.0;
        let y = y_of(v);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd" stroke-width="1"/>"##,
            MARGIN_LEFT + plot_w
        );
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="#555">{}</text>"##,
            MARGIN_LEFT - 6.0,
            y + 3.5,
            axis_label(v)
        );
    }
    // X labels: one short rev per snapshot.
    for (i, rev) in snapshots.iter().enumerate() {
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="middle" fill="#555">{rev}</text>"##,
            x_of(i),
            top + PANEL_HEIGHT - MARGIN_BOTTOM + 14.0
        );
    }
    // Series polylines, markers and legend rows.
    for (s, (name, points)) in panel_series.iter().enumerate() {
        let colour = PALETTE[s % PALETTE.len()];
        let path: Vec<String> = points
            .iter()
            .map(|(i, v)| format!("{:.1},{:.1}", x_of(*i), y_of(*v)))
            .collect();
        if path.len() > 1 {
            let _ = writeln!(
                svg,
                r##"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="2"/>"##,
                path.join(" ")
            );
        }
        for (i, v) in *points {
            let _ = writeln!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{colour}"/>"##,
                x_of(*i),
                y_of(*v)
            );
        }
        let legend_y = top + MARGIN_TOP + 14.0 * s as f64;
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{colour}"/>"##,
            MARGIN_LEFT + plot_w + 14.0,
            legend_y
        );
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="10" fill="#222">{name}</text>"##,
            MARGIN_LEFT + plot_w + 28.0,
            legend_y + 9.0
        );
    }
}

/// Renders the whole document: throughput panel on top, shedding below,
/// then (when the history has the rows) the telemetry latency-percentile
/// panel and the simulator virtual-latency panel.
fn render_svg(history: &History) -> String {
    let throughput: Vec<(&str, &[(usize, f64)])> = ["service_jobs_per_sec", "ingest_cubes_per_sec"]
        .iter()
        .filter_map(|m| history.series.get(*m).map(|pts| (*m, pts.as_slice())))
        .collect();
    let shedding: Vec<(&str, &[(usize, f64)])> = history
        .series
        .iter()
        .filter(|(m, _)| {
            m.as_str() == "ingest_shed" || m.ends_with("_shed") || m.ends_with("_rejected")
        })
        .map(|(m, pts)| (m.as_str(), pts.as_slice()))
        .collect();
    let latency: Vec<(&str, &[(usize, f64)])> = history
        .series
        .iter()
        .filter(|(m, _)| m.ends_with("_p50_ms") || m.ends_with("_p95_ms") || m.ends_with("_p99_ms"))
        .map(|(m, pts)| (m.as_str(), pts.as_slice()))
        .collect();
    let simulator: Vec<(&str, &[(usize, f64)])> = history
        .series
        .iter()
        .filter(|(m, _)| m.starts_with("sim_") && m.ends_with("_virtual_ms"))
        .map(|(m, pts)| (m.as_str(), pts.as_slice()))
        .collect();

    let panels = 2.0
        + if latency.is_empty() { 0.0 } else { 1.0 }
        + if simulator.is_empty() { 0.0 } else { 1.0 };
    let height = panels * PANEL_HEIGHT + 10.0 * (panels - 1.0);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" viewBox="0 0 {WIDTH} {height}" font-family="monospace">"##
    );
    let _ = writeln!(
        svg,
        r##"<rect x="0" y="0" width="{WIDTH}" height="{height}" fill="white"/>"##
    );
    render_panel(
        &mut svg,
        "throughput (wall-clock, trend-only)",
        0.0,
        &history.snapshots,
        &throughput,
    );
    render_panel(
        &mut svg,
        "shed / rejected (deterministic counters)",
        PANEL_HEIGHT + 10.0,
        &history.snapshots,
        &shedding,
    );
    let mut next_panel = 2.0;
    if !latency.is_empty() {
        render_panel(
            &mut svg,
            "latency percentiles (telemetry, ms, trend-only)",
            next_panel * (PANEL_HEIGHT + 10.0),
            &history.snapshots,
            &latency,
        );
        next_panel += 1.0;
    }
    if !simulator.is_empty() {
        render_panel(
            &mut svg,
            "simulator detection latency (virtual ms, deterministic)",
            next_panel * (PANEL_HEIGHT + 10.0),
            &history.snapshots,
            &simulator,
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args
        .next()
        .unwrap_or_else(|| "bench/BENCH_history.csv".to_string());
    let output = args
        .next()
        .unwrap_or_else(|| "bench/BENCH_trends.svg".to_string());
    let csv = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| panic!("cannot read {input}: {e} (run bench/record.sh first)"));
    let history = parse_history(&csv);
    let svg = render_svg(&history);
    std::fs::write(&output, &svg).unwrap_or_else(|e| panic!("cannot write {output}: {e}"));
    println!(
        "plotted {} snapshots x {} metrics into {output}",
        history.snapshots.len(),
        history.series.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "recorded_at,rev,metric,value\n\
        2026-01-01T00:00:00Z,aaa1111,service_jobs_per_sec,10.5\n\
        2026-01-01T00:00:00Z,aaa1111,ingest_shed,8\n\
        2026-01-02T00:00:00Z,bbb2222,service_jobs_per_sec,12.0\n\
        2026-01-02T00:00:00Z,bbb2222,service_tenant_t1_shed,0\n\
        2026-01-02T00:00:00Z,bbb2222,service_latency_p95_ms,42.5\n\
        torn,line\n";

    #[test]
    fn parse_orders_snapshots_and_skips_torn_lines() {
        let h = parse_history(SAMPLE);
        assert_eq!(h.snapshots, vec!["aaa1111", "bbb2222"]);
        assert_eq!(h.series["service_jobs_per_sec"], vec![(0, 10.5), (1, 12.0)]);
        assert_eq!(h.series["ingest_shed"], vec![(0, 8.0)]);
        assert_eq!(h.series.len(), 4);
    }

    #[test]
    fn nice_max_rounds_up_to_clean_gridlines() {
        assert_eq!(nice_max(0.0), 1.0);
        assert_eq!(nice_max(7.3), 10.0);
        assert_eq!(nice_max(324.77), 500.0);
        assert_eq!(nice_max(1.9), 2.0);
    }

    #[test]
    fn rendered_svg_contains_both_panels_and_all_shed_series() {
        let svg = render_svg(&parse_history(SAMPLE));
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("throughput (wall-clock, trend-only)"));
        assert!(svg.contains("shed / rejected (deterministic counters)"));
        assert!(svg.contains("service_jobs_per_sec"));
        assert!(svg.contains("ingest_shed"));
        assert!(svg.contains("service_tenant_t1_shed"));
        assert!(svg.contains("latency percentiles (telemetry, ms, trend-only)"));
        assert!(svg.contains("service_latency_p95_ms"));
        // One polyline for the two-point throughput series, markers for all.
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn latency_panel_is_omitted_without_percentile_rows() {
        let csv = "recorded_at,rev,metric,value\n\
            2026-01-01T00:00:00Z,aaa1111,service_jobs_per_sec,10.5\n";
        let svg = render_svg(&parse_history(csv));
        assert!(!svg.contains("latency percentiles"));
    }
}
