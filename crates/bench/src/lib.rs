//! Benchmark harness utilities shared by the figure-regeneration binaries
//! and the criterion benches.
//!
//! Every table/figure of the paper's evaluation has a regenerating target:
//!
//! | Paper artefact | Binary | Criterion bench |
//! |---|---|---|
//! | Figure 4 (speed-up with/without resiliency) | `cargo run -p bench --bin fig4_speedup --release` | `benches/fig4_speedup.rs` |
//! | Figure 5 (granularity control) | `cargo run -p bench --bin fig5_granularity --release` | `benches/fig5_granularity.rs` |
//! | §4 shared-memory claim (within ~5 % of linear) | `cargo run -p bench --bin smp_speedup --release` | — |
//! | Replication-level ablation (extension of Figure 4) | `cargo run -p bench --bin replication_levels --release` | — |
//! | Kernel micro-benchmarks (supporting) | — | `benches/kernels.rs` |
//! | Screening-threshold ablation | — | `benches/screening_ablation.rs` |
//! | Failure-detector ablation | — | `benches/detector_ablation.rs` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pct::distributed_sim::{simulate_fusion, SimParams, SimReport};

/// The processor counts reported in Figure 4.
pub const FIGURE4_PROCESSORS: [usize; 5] = [1, 2, 4, 8, 16];

/// The processor counts reported in Figure 5.
pub const FIGURE5_PROCESSORS: [usize; 4] = [2, 4, 8, 16];

/// The granularity multipliers reported in Figure 5.
pub const FIGURE5_MULTIPLIERS: [usize; 3] = [1, 2, 3];

/// One row of the Figure 4 table: processor count, time without resiliency,
/// time with level-2 resiliency, and the derived speed-ups.
#[derive(Debug, Clone)]
pub struct Figure4Row {
    /// Number of worker processors.
    pub processors: usize,
    /// Simulated time without resiliency, seconds.
    pub plain_secs: f64,
    /// Simulated time with level-2 resiliency, seconds.
    pub resilient_secs: f64,
}

impl Figure4Row {
    /// Speed-up of the non-resilient run relative to a reference time.
    pub fn plain_speedup(&self, reference: f64) -> f64 {
        reference / self.plain_secs
    }

    /// Speed-up of the resilient run relative to a reference time.
    pub fn resilient_speedup(&self, reference: f64) -> f64 {
        reference / self.resilient_secs
    }

    /// Ratio of resilient to plain time — the paper expects roughly the
    /// replication factor (2) plus ~10 %.
    pub fn overhead_ratio(&self) -> f64 {
        self.resilient_secs / self.plain_secs
    }
}

/// Computes every row of Figure 4.
pub fn figure4_rows() -> Vec<Figure4Row> {
    FIGURE4_PROCESSORS
        .iter()
        .map(|&p| {
            let plain = simulate_fusion(&SimParams::figure4(p, false)).expect("simulation runs");
            let resilient = simulate_fusion(&SimParams::figure4(p, true)).expect("simulation runs");
            Figure4Row {
                processors: p,
                plain_secs: plain.elapsed_secs,
                resilient_secs: resilient.elapsed_secs,
            }
        })
        .collect()
}

/// One cell of the Figure 5 matrix.
#[derive(Debug, Clone)]
pub struct Figure5Cell {
    /// Number of worker processors.
    pub processors: usize,
    /// Sub-cubes per worker (1, 2 or 3 in the paper).
    pub multiplier: usize,
    /// Full simulation report.
    pub report: SimReport,
}

/// Computes every cell of Figure 5.
pub fn figure5_cells() -> Vec<Figure5Cell> {
    let mut cells = Vec::new();
    for &p in &FIGURE5_PROCESSORS {
        for &m in &FIGURE5_MULTIPLIERS {
            let report = simulate_fusion(&SimParams::figure5(p, m)).expect("simulation runs");
            cells.push(Figure5Cell {
                processors: p,
                multiplier: m,
                report,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_rows_cover_every_processor_count() {
        let rows = figure4_rows();
        assert_eq!(rows.len(), FIGURE4_PROCESSORS.len());
        for row in &rows {
            assert!(row.plain_secs > 0.0);
            assert!(row.resilient_secs > row.plain_secs);
        }
    }

    #[test]
    fn figure4_overhead_ratio_is_near_replication_cost() {
        let rows = figure4_rows();
        for row in rows.iter().filter(|r| r.processors >= 2) {
            let ratio = row.overhead_ratio();
            assert!(
                (1.8..=2.6).contains(&ratio),
                "ratio {ratio} at P={}",
                row.processors
            );
        }
    }

    #[test]
    fn figure5_cells_cover_the_matrix() {
        let cells = figure5_cells();
        assert_eq!(
            cells.len(),
            FIGURE5_PROCESSORS.len() * FIGURE5_MULTIPLIERS.len()
        );
        // Over-decomposition (x2) never loses to x1 at the same P.
        for &p in &FIGURE5_PROCESSORS {
            let t = |m: usize| {
                cells
                    .iter()
                    .find(|c| c.processors == p && c.multiplier == m)
                    .unwrap()
                    .report
                    .elapsed_secs
            };
            assert!(t(2) <= t(1) * 1.001, "x2 slower than x1 at P={p}");
        }
    }
}
