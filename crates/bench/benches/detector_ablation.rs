//! Ablation: heartbeat failure-detector configuration versus detection
//! latency and sweep cost (DESIGN.md design-choice ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::{DetectorConfig, FailureDetector, MemberId};

fn bench_detector_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_sweep");
    group.sample_size(20);
    for &members in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, &n| {
            let mut detector = FailureDetector::new(DetectorConfig::default_lan());
            for i in 0..n {
                detector.watch(MemberId::new(format!("w{i}"), 0), 0);
            }
            let mut t = 0u64;
            b.iter(|| {
                t += 250;
                // Heartbeat half the members; sweep finds the silent half once.
                for i in 0..n / 2 {
                    detector.heartbeat(&MemberId::new(format!("w{i}"), 0), t);
                }
                detector.sweep(t)
            })
        });
    }
    group.finish();
}

fn print_detection_latencies(_c: &mut Criterion) {
    println!("Worst-case detection latency (sweep every 100 ms):");
    for (period, misses) in [(100u64, 2u32), (250, 4), (500, 4), (1000, 3)] {
        let d = FailureDetector::new(DetectorConfig {
            heartbeat_period_ms: period,
            miss_threshold: misses,
        });
        println!(
            "  period {period:>5} ms, {misses} misses -> {:>6} ms",
            d.worst_case_detection_ms(100)
        );
    }
}

criterion_group!(
    detector_ablation,
    bench_detector_sweep,
    print_detection_latencies
);
criterion_main!(detector_ablation);
