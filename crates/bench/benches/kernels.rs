//! Criterion micro-benchmarks of the eight algorithm steps' kernels:
//! spectral-angle screening, covariance accumulation, the Jacobi eigensolver,
//! the per-pixel PCT transform and the human-centred colour mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsi::{CubeDims, SceneConfig, SceneGenerator};
use linalg::covariance::covariance_matrix;
use linalg::eigen::{sorted_eigenpairs, JacobiOptions};
use linalg::sym::SymMatrix;
use pct::colormap::{map_cube, ComponentScale};
use pct::pipeline::{derive_transform, transform_cube};
use pct::screening::screen_pixels;
use pct::PctConfig;

fn scene(width: usize, height: usize, bands: usize) -> hsi::HyperCube {
    let mut config = SceneConfig::small(99);
    config.dims = CubeDims::new(width, height, bands);
    SceneGenerator::new(config).unwrap().generate()
}

fn bench_screening(c: &mut Criterion) {
    let mut group = c.benchmark_group("step1_spectral_screening");
    group.sample_size(10);
    for &size in &[16usize, 32] {
        let cube = scene(size, size, 24);
        let pixels = cube.pixel_vectors();
        group.bench_with_input(
            BenchmarkId::from_parameter(size * size),
            &pixels,
            |b, px| b.iter(|| screen_pixels(px, PctConfig::paper().screening_angle_rad)),
        );
    }
    group.finish();
}

fn bench_covariance(c: &mut Criterion) {
    let mut group = c.benchmark_group("step4_covariance");
    group.sample_size(10);
    for &bands in &[24usize, 48] {
        let cube = scene(24, 24, bands);
        let pixels = cube.pixel_vectors();
        group.bench_with_input(BenchmarkId::from_parameter(bands), &pixels, |b, px| {
            b.iter(|| covariance_matrix(px).unwrap())
        });
    }
    group.finish();
}

/// The step-4 inner kernel on its own: the blocked (tiled) rank-one update
/// against the naive triangular reference at the paper's 210 bands, over a
/// batch of pixel vectors.  The two are bit-identical (asserted by the
/// linalg comparison suite); this row tracks the speed difference.
fn bench_rank_one_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("step4_rank_one_update_210");
    group.sample_size(10);
    let cube = scene(16, 16, 210);
    let pixels = cube.pixel_vectors();
    group.bench_function("blocked", |b| {
        b.iter(|| {
            let mut m = SymMatrix::zeros(210);
            for x in &pixels {
                m.rank_one_update(x).unwrap();
            }
            m
        })
    });
    group.bench_function("naive_reference", |b| {
        b.iter(|| {
            let mut m = SymMatrix::zeros(210);
            for x in &pixels {
                m.rank_one_update_reference(x).unwrap();
            }
            m
        })
    });
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("step6_jacobi_eigen");
    group.sample_size(10);
    for &bands in &[24usize, 48, 105] {
        let cube = scene(16, 16, bands);
        let cov = covariance_matrix(&cube.pixel_vectors()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bands), &cov, |b, cov| {
            b.iter(|| sorted_eigenpairs(cov, JacobiOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_transform_and_colormap(c: &mut Criterion) {
    let mut group = c.benchmark_group("steps7_8_transform_colormap");
    group.sample_size(10);
    let cube = scene(32, 32, 24);
    let unique = screen_pixels(
        &cube.pixel_vectors(),
        PctConfig::paper().screening_angle_rad,
    );
    let spec = derive_transform(&unique, &PctConfig::paper()).unwrap();
    group.bench_function("transform_32x32x24", |b| {
        b.iter(|| transform_cube(&spec, &cube).unwrap())
    });
    let transformed = transform_cube(&spec, &cube).unwrap();
    let scales = ComponentScale::from_eigenvalues(&spec.eigenvalues, 3);
    group.bench_function("colormap_32x32", |b| {
        b.iter(|| map_cube(&transformed, &scales))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_screening,
    bench_covariance,
    bench_rank_one_update,
    bench_eigen,
    bench_transform_and_colormap
);
criterion_main!(kernels);
