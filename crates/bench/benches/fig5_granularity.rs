//! Criterion wrapper around the Figure 5 points (granularity control).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pct::distributed_sim::{simulate_fusion, SimParams};

fn bench_figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_simulation");
    group.sample_size(10);
    for &procs in &[2usize, 16] {
        for &mult in &[1usize, 2, 3] {
            let label = format!("P{procs}_x{mult}");
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(procs, mult),
                |b, &(p, m)| b.iter(|| simulate_fusion(&SimParams::figure5(p, m)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(fig5, bench_figure5);
criterion_main!(fig5);
