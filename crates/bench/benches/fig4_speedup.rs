//! Criterion wrapper around the Figure 4 points: each benchmark sample runs
//! the full discrete-event simulation of one (processors, resiliency)
//! configuration.  The interesting output is the printed table from
//! `cargo run -p bench --bin fig4_speedup`; this bench tracks the simulator
//! cost itself so regressions in the substrate are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pct::distributed_sim::{simulate_fusion, SimParams};

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_simulation");
    group.sample_size(10);
    for &procs in &[1usize, 4, 16] {
        for &resilient in &[false, true] {
            let label = format!(
                "P{}_{}",
                procs,
                if resilient { "resilient" } else { "plain" }
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(procs, resilient),
                |b, &(p, r)| b.iter(|| simulate_fusion(&SimParams::figure4(p, r)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(fig4, bench_figure4);
criterion_main!(fig4);
