//! Ablation: spectral-screening threshold versus unique-set size and cost.
//! Smaller thresholds keep more unique vectors (better statistics, more
//! work); this bench measures the screening kernel across thresholds and
//! prints the retention so DESIGN.md's ablation question is answerable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsi::{CubeDims, SceneConfig, SceneGenerator};
use pct::screening::screen_pixels;

fn bench_thresholds(c: &mut Criterion) {
    let mut config = SceneConfig::small(7);
    config.dims = CubeDims::new(32, 32, 24);
    let cube = SceneGenerator::new(config).unwrap().generate();
    let pixels = cube.pixel_vectors();

    let mut group = c.benchmark_group("screening_threshold_ablation");
    group.sample_size(10);
    for &degrees in &[1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let threshold = degrees.to_radians();
        let unique = screen_pixels(&pixels, threshold);
        println!(
            "threshold {degrees:>5.1} deg -> {:>5} unique of {} pixels ({:.1}%)",
            unique.len(),
            pixels.len(),
            100.0 * unique.len() as f64 / pixels.len() as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(degrees), &threshold, |b, &t| {
            b.iter(|| screen_pixels(&pixels, t))
        });
    }
    group.finish();
}

criterion_group!(screening_ablation, bench_thresholds);
criterion_main!(screening_ablation);
