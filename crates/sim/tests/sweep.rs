//! The acceptance-scale sweep: ≥ 1000 seeded fault scenarios — kills at
//! every [`service::ChaosPhase`], double kills, kills during
//! regeneration, machine kills, partitions, transit loss, reorder jitter
//! and stragglers — every one of which must converge to output
//! byte-identical to [`pct::SequentialPct`] within its virtual makespan
//! bound, in well under a minute of wall time.

use sim::{SimHarness, Sweep};
use std::time::Instant;

const SWEEP_SEED: u64 = 0xF05E;

#[test]
fn thousand_scenario_sweep_holds_the_byte_identity_and_makespan_contract() {
    let started = Instant::now();
    let sweep = Sweep::new(SWEEP_SEED, 1000);
    let report = sweep.run().expect("every scenario converges");
    let wall = started.elapsed();

    assert_eq!(report.rows.len(), 1000);
    let failures: Vec<String> = report
        .rows
        .iter()
        .filter(|r| !r.passed)
        .map(|r| {
            format!(
                "{} ident={} makespan={:?} bound={:?}",
                r.name, r.byte_identical, r.makespan, r.bound
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "failing rows:\n{}\n{}",
        failures.join("\n"),
        report.pass_table()
    );

    // Coverage: every scenario family ran, and the sweep actually
    // exercised the failure machinery.
    for kind in [
        "screen-kill",
        "derive-kill",
        "transform-kill",
        "double-kill",
        "regen-kill",
        "machine-kill",
        "mischief",
    ] {
        assert!(
            report.rows.iter().any(|r| r.kind == kind),
            "family {kind} never ran"
        );
    }
    assert!(report.rows.iter().map(|r| r.kills).sum::<u32>() > 500);
    assert!(report.rows.iter().map(|r| r.detections).sum::<u32>() > 500);
    assert!(report.rows.iter().map(|r| r.regenerations).sum::<u32>() > 500);
    assert!(
        report.rows.iter().map(|r| r.false_positives).sum::<u32>() > 0,
        "partitions should provoke at least one false-positive detection"
    );
    assert!(report.detection_latency_quantile_ns(0.99).is_some());
    assert!(report.worst.is_some());

    // The whole point: thousands of scenarios per minute, not per day.
    assert!(
        wall.as_secs() < 60,
        "sweep took {wall:?}, over the 60 s budget"
    );
}

#[test]
fn failing_scenario_is_reproducible_from_the_sweep_seed_alone() {
    // The replay recipe from the README: re-enumerate the sweep with its
    // seed, pick the row's index, run it alone — byte-for-byte equal.
    let scenarios = Sweep::new(SWEEP_SEED, 40).scenarios();
    for index in [3, 17, 38] {
        let sc = scenarios[index].clone();
        let cube = std::sync::Arc::new(sc.cube.generate());
        let first = SimHarness::new(sc.clone())
            .run_on(std::sync::Arc::clone(&cube))
            .expect("converges");
        let second = SimHarness::new(sc).run_on(cube).expect("converges");
        assert_eq!(first.replay_blob(), second.replay_blob());
        assert!(!first.trace.is_empty());
        assert!(first.trace.contains("seed"));
    }
}
