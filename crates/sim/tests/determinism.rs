//! Seeded-determinism property suite for the cluster simulator.
//!
//! * **replay** — the same scenario (same seed) produces a byte-identical
//!   replay blob: fused image, virtual makespan, event counts, trace,
//!   span tree and metrics snapshot all reproduce exactly;
//! * **tie order** — simulator events scheduled for the same virtual
//!   instant pop in insertion-sequence order, for both messages and
//!   timers (the `(SimTime, sequence)` heap key);
//! * **enumeration** — sweep scenario generation is a pure function of
//!   the sweep seed.

use netsim::{Actor, ActorContext, ActorId, ClusterSim, Duration, SimConfig};
use proptest::prelude::*;
use sim::{SimHarness, Sweep};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------- replay

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_reproduces_the_run_byte_for_byte(
        sweep_seed in 0u64..1_000_000,
        index in 0usize..21,
    ) {
        let scenario = Sweep::new(sweep_seed, index + 1)
            .scenarios()
            .pop()
            .expect("sweep enumerates requested count");
        let cube = std::sync::Arc::new(scenario.cube.generate());
        let a = SimHarness::new(scenario.clone())
            .run_on(std::sync::Arc::clone(&cube))
            .expect("scenario converges");
        let b = SimHarness::new(scenario)
            .run_on(cube)
            .expect("scenario converges");
        prop_assert_eq!(a.image.raw(), b.image.raw());
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.messages_sent, b.messages_sent);
        prop_assert_eq!(a.messages_dropped, b.messages_dropped);
        prop_assert_eq!(&a.detection_latency_ns, &b.detection_latency_ns);
        prop_assert_eq!(a.replay_blob(), b.replay_blob());
    }

    #[test]
    fn sweep_enumeration_is_a_pure_function_of_the_seed(
        sweep_seed in 0u64..u64::MAX,
        count in 1usize..40,
    ) {
        let a = Sweep::new(sweep_seed, count).scenarios();
        let b = Sweep::new(sweep_seed, count).scenarios();
        prop_assert_eq!(a.len(), count);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(x.members, y.members);
            prop_assert_eq!(x.makespan_bound, y.makespan_bound);
        }
    }
}

// --------------------------------------------------------------- tie order

/// Sends `n` self-addressed messages in one callback (all arrive at the
/// same virtual instant via the fixed intra-node hand-off) and records the
/// arrival order.
struct Burst {
    n: u32,
    log: Rc<RefCell<Vec<u32>>>,
}

impl Actor<u32> for Burst {
    fn on_start(&mut self, ctx: &mut ActorContext<'_, u32>) {
        for i in 0..self.n {
            ctx.send(ctx.self_id(), i, 64);
        }
    }
    fn on_message(&mut self, ctx: &mut ActorContext<'_, u32>, _from: ActorId, msg: u32) {
        self.log.borrow_mut().push(msg);
        if self.log.borrow().len() as u32 == self.n {
            ctx.halt();
        }
    }
}

/// Arms `n` timers with the same delay in one callback and records the
/// firing order of their tags.
struct TimerBurst {
    n: u32,
    log: Rc<RefCell<Vec<u64>>>,
}

impl Actor<u32> for TimerBurst {
    fn on_start(&mut self, ctx: &mut ActorContext<'_, u32>) {
        for i in 0..self.n {
            ctx.set_timer(i as u64, Duration::from_millis(5));
        }
    }
    fn on_timer(&mut self, ctx: &mut ActorContext<'_, u32>, tag: u64) {
        self.log.borrow_mut().push(tag);
        if self.log.borrow().len() as u32 == self.n {
            ctx.halt();
        }
    }
    fn on_message(&mut self, _ctx: &mut ActorContext<'_, u32>, _from: ActorId, _msg: u32) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simultaneous_messages_pop_in_insertion_sequence_order(n in 2u32..40) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cluster =
            ClusterSim::<u32>::new(SimConfig::lan_of_workstations(1)).expect("build");
        cluster
            .add_actor(
                netsim::NodeId(0),
                Box::new(Burst {
                    n,
                    log: Rc::clone(&log),
                }),
            )
            .expect("add actor");
        cluster.run().expect("run");
        let got = log.borrow().clone();
        let want: Vec<u32> = (0..n).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn simultaneous_timers_fire_in_insertion_sequence_order(n in 2u32..40) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cluster =
            ClusterSim::<u32>::new(SimConfig::lan_of_workstations(1)).expect("build");
        cluster
            .add_actor(
                netsim::NodeId(0),
                Box::new(TimerBurst {
                    n,
                    log: Rc::clone(&log),
                }),
            )
            .expect("add actor");
        cluster.run().expect("run");
        let got = log.borrow().clone();
        let want: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(got, want);
    }
}
