//! The virtual-time clock bridge between `netsim` and `telemetry`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`telemetry::Clock`] that reads the simulator's virtual clock.
///
/// The harness binds the inner cell to [`netsim::ClusterSim::bind_clock`];
/// the simulator stores the current virtual time into it whenever the
/// clock advances, so every span and histogram observation made by the
/// driver measures *exact virtual nanoseconds* — detection latency
/// becomes a simulated, swept quantity instead of a wall-clock artefact.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    cell: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared cell to hand to [`netsim::ClusterSim::bind_clock`].
    pub fn cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.cell)
    }
}

impl telemetry::Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Clock;

    #[test]
    fn reads_the_bound_cell() {
        let clock = SimClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.cell().store(42, Ordering::Relaxed);
        assert_eq!(clock.now_nanos(), 42);
    }

    #[test]
    fn telemetry_spans_run_on_virtual_time() {
        let clock = SimClock::new();
        let cell = clock.cell();
        let tel = telemetry::Telemetry::with_clock(std::sync::Arc::new(clock), 64);
        let span = tel.span_start("virtual", None, None, "");
        cell.store(1_500_000_000, Ordering::Relaxed);
        let d = tel.span_end(span).unwrap();
        assert_eq!(d, std::time::Duration::from_millis(1500));
    }
}
