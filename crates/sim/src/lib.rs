//! Deterministic cluster simulator: thousands of seeded fault scenarios
//! per second on virtual time.
//!
//! The e2e chaos matrix proves the resilient pipeline survives a handful
//! of kill schedules in wall-clock time.  This crate proves it for
//! *families* of schedules: a seeded discrete-event [`SimHarness`] drives
//! the real fusion protocol — real [`pct::messages::PctMessage`]s carrying
//! real pixel data through [`pct::distributed::handle_task`] — as actors
//! on the [`netsim`] cluster model, so every scenario's fused output can
//! be compared byte-for-byte against [`pct::SequentialPct`] while the
//! clock is purely virtual.
//!
//! The pieces:
//!
//! * [`SimClock`] — a `telemetry::Clock` bound to the simulator's virtual
//!   clock, so spans, histograms and detection-latency measurements are
//!   exact virtual time instead of jittery wall clock.
//! * [`Scenario`] — one seeded experiment: topology (members + spares +
//!   stragglers), workload shape, failure-detector parameters
//!   ([`resilience::DetectorConfig`], a swept parameter rather than a
//!   constant), and the composed fault schedule — [`netsim::FaultPlan`]
//!   machine kills, [`service::ChaosPlan`] phase-anchored member kills
//!   (including kills *during* regeneration), [`pct::resilient::AttackPlan`]
//!   after-N-results kills and transit loss, plus message
//!   delay/reorder/partition injectors over the link model.
//! * [`SimHarness`] — builds the cluster, runs the scenario to completion
//!   on virtual time, and returns a [`ScenarioReport`]: the fused image,
//!   the virtual makespan, detection/regeneration counts and latencies,
//!   a deterministic event trace, the telemetry span tree and the
//!   histogram snapshot — an assertable record instead of printf
//!   forensics.
//! * [`Sweep`] — a property-style sweep runner ("any 2 kills at any phase
//!   × any topology up to 8 nodes ⇒ byte-identical output, bounded
//!   virtual makespan"): seeded scenario enumeration, per-cube reference
//!   caching, and a pass table.
//!
//! **Seed/replay contract.** Everything is a pure function of the
//! scenario (and sweep) seed: the same seed reproduces the same event
//! order — including ties, which pop in insertion-sequence order — the
//! same trace byte-for-byte, and the same fused image.  A failing sweep
//! row is reproduced by constructing the sweep with the same seed and
//! running the named scenario alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actors;
mod clock;
mod harness;
mod scenario;
mod sweep;
mod trace;

pub use clock::SimClock;
pub use harness::{ScenarioReport, SimFailure, SimHarness};
pub use scenario::{
    member_name, CubeSpec, LinkDelay, Partition, ReorderJitter, Scenario, Straggler,
};
pub use sweep::{Sweep, SweepReport, SweepRow};
pub use trace::{render_span_tree, TraceLog};

/// A tiny deterministic RNG (splitmix64) used for scenario generation and
/// reorder jitter.  Not cryptographic; chosen because its sequence is a
/// pure function of the seed on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for bound 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A coin flip with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}
