//! The harness: builds the simulated cluster for a [`Scenario`], runs it
//! to completion on virtual time, and returns an assertable
//! [`ScenarioReport`].

use crate::actors::{ManagerActor, ManagerParams, MemberActor, SharedOutput};
use crate::clock::SimClock;
use crate::scenario::{member_index, Scenario};
use crate::trace::{render_span_tree, TraceLog};
use crate::SplitMix64;
use hsi::partition::partition_rows;
use hsi::{HyperCube, RgbImage};
use netsim::{
    ActorId, ClusterSim, CostModel, Duration, FaultPlan, LinkFault, LinkVerdict, NodeId, NodeSpec,
    SimConfig, SimTime,
};
use pct::messages::PctMessage;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use telemetry::Telemetry;

/// A scenario that could not be built or did not converge to an output.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Name of the failing scenario.
    pub scenario: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {:?}: {}", self.scenario, self.message)
    }
}

impl std::error::Error for SimFailure {}

/// Everything observable about one completed scenario run — a pure
/// function of the scenario, assertable byte-for-byte.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// The fused image — compared byte-for-byte against
    /// [`pct::SequentialPct`].
    pub image: RgbImage,
    /// Virtual time from start to job completion.
    pub makespan: Duration,
    /// The bound the scenario demanded.
    pub makespan_bound: Duration,
    /// Whether `makespan <= makespan_bound`.
    pub within_bound: bool,
    /// Simulator events processed.
    pub events: u64,
    /// Messages actors attempted to send.
    pub messages_sent: u64,
    /// Messages lost to dead nodes, partitions or transit drops.
    pub messages_dropped: u64,
    /// Kills actually injected (chaos + attack + machine + regeneration
    /// riders).
    pub kills_injected: u32,
    /// True-positive death detections.
    pub detections: u32,
    /// False-positive detections (e.g. partition-induced).
    pub false_positives: u32,
    /// Completed spare regenerations.
    pub regenerations: u32,
    /// Duplicate results discarded by the dedup barrier.
    pub duplicates: u32,
    /// Task retransmissions (orphan re-dispatch + timeout resends).
    pub retransmits: u32,
    /// Detection latencies in virtual nanoseconds, in detection order.
    pub detection_latency_ns: Vec<u64>,
    /// The deterministic event trace.
    pub trace: String,
    /// The telemetry span tree rendered on virtual time.
    pub span_tree: String,
    /// Prometheus-format histogram/counter snapshot.
    pub metrics_snapshot: String,
}

impl ScenarioReport {
    /// A single string capturing every observable of the run; two runs of
    /// the same scenario must produce byte-identical blobs.  The image is
    /// folded in as an FNV-1a digest to keep the blob small.
    pub fn replay_blob(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.image.raw() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!(
            "scenario={} seed={:#x}\nimage_fnv={hash:#018x} makespan_ns={} events={} \
             sent={} dropped={} kills={} detections={} false_positives={} \
             regenerations={} duplicates={} retransmits={}\nlatencies={:?}\n\
             --- trace ---\n{}\n--- spans ---\n{}--- metrics ---\n{}",
            self.name,
            self.seed,
            self.makespan.as_nanos(),
            self.events,
            self.messages_sent,
            self.messages_dropped,
            self.kills_injected,
            self.detections,
            self.false_positives,
            self.regenerations,
            self.duplicates,
            self.retransmits,
            self.detection_latency_ns,
            self.trace,
            self.span_tree,
            self.metrics_snapshot,
        )
    }
}

/// The composed link-fault hook: partitions, transit drop budgets,
/// constant per-member delays and seeded reorder jitter, judged in that
/// order.
struct ScenarioLinkFault {
    manager: NodeId,
    /// `(member node, window start, window end)`.
    partitions: Vec<(NodeId, SimTime, SimTime)>,
    /// Remaining manager→member task drops, keyed by member node index.
    drop_budget: BTreeMap<usize, usize>,
    /// Constant extra delay keyed by member node index.
    delays: BTreeMap<usize, Duration>,
    jitter: Option<(SplitMix64, Duration)>,
}

impl LinkFault<PctMessage> for ScenarioLinkFault {
    fn judge(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: &PctMessage) -> LinkVerdict {
        for &(node, start, until) in &self.partitions {
            let cut = (from == self.manager && to == node) || (from == node && to == self.manager);
            if cut && now >= start && now < until {
                return LinkVerdict::Drop;
            }
        }
        if from == self.manager && msg.task().is_some() {
            if let Some(left) = self.drop_budget.get_mut(&to.0) {
                if *left > 0 {
                    *left -= 1;
                    return LinkVerdict::Drop;
                }
            }
        }
        let mut extra = Duration::ZERO;
        for node in [from.0, to.0] {
            if let Some(d) = self.delays.get(&node) {
                extra += *d;
            }
        }
        if let Some((rng, max)) = &mut self.jitter {
            extra += Duration::from_nanos(rng.below(max.as_nanos()));
        }
        if extra > Duration::ZERO {
            LinkVerdict::Delay(extra)
        } else {
            LinkVerdict::Deliver
        }
    }
}

/// Builds and runs one [`Scenario`] on virtual time.
#[derive(Debug, Clone)]
pub struct SimHarness {
    scenario: Scenario,
}

impl SimHarness {
    /// Wraps a scenario.
    pub fn new(scenario: Scenario) -> Self {
        Self { scenario }
    }

    /// The wrapped scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Generates the scenario's cube and runs it.
    pub fn run(&self) -> Result<ScenarioReport, SimFailure> {
        self.run_on(Arc::new(self.scenario.cube.generate()))
    }

    fn fail(&self, message: impl Into<String>) -> SimFailure {
        SimFailure {
            scenario: self.scenario.name.clone(),
            message: message.into(),
        }
    }

    /// Runs the scenario on an already-generated cube (the sweep runner
    /// caches cubes across scenarios sharing a [`crate::CubeSpec`]).
    pub fn run_on(&self, cube: Arc<HyperCube>) -> Result<ScenarioReport, SimFailure> {
        let sc = &self.scenario;
        sc.validate().map_err(|e| self.fail(e))?;
        let screen_shards = partition_rows(cube.dims(), sc.screen_tasks)
            .map_err(|e| self.fail(format!("screen partition: {e}")))?;
        let transform_shards = partition_rows(cube.dims(), sc.transform_tasks)
            .map_err(|e| self.fail(format!("transform partition: {e}")))?;

        let total = sc.total_members();
        let mut nodes = NodeSpec::uniform(1 + total);
        for s in &sc.stragglers {
            nodes[1 + s.member].speed = s.speed;
        }
        // Member i lives on node 1+i; the manager owns node 0.
        let mut faults = FaultPlan::none();
        let mut machine_kill_times = Vec::new();
        for &(time, node) in sc.machine_kills.failures() {
            faults = faults.and_kill(NodeId(node.0 + 1), time);
            machine_kill_times.push((node.0, time));
        }
        let mut sim = ClusterSim::<PctMessage>::new(SimConfig {
            nodes,
            network: sc.network,
            faults,
            max_events: sc.max_events,
        })
        .map_err(|e| self.fail(format!("cluster build: {e}")))?;

        let manager_node = NodeId(0);
        let member_nodes: Vec<NodeId> = (0..total).map(|i| NodeId(1 + i)).collect();
        let mut drop_budget = BTreeMap::new();
        for (target, count) in &sc.attack.drop_sends {
            if let Some(m) = member_index(target) {
                *drop_budget.entry(member_nodes[m].0).or_insert(0) += count;
            }
        }
        let mut delays = BTreeMap::new();
        for d in &sc.link_delays {
            let slot = delays
                .entry(member_nodes[d.member].0)
                .or_insert(Duration::ZERO);
            *slot += d.extra;
        }
        sim.set_link_fault(Box::new(ScenarioLinkFault {
            manager: manager_node,
            partitions: sc
                .partitions
                .iter()
                .map(|p| {
                    (
                        member_nodes[p.member],
                        SimTime::ZERO + p.from,
                        SimTime::ZERO + p.until,
                    )
                })
                .collect(),
            drop_budget,
            delays,
            jitter: sc
                .reorder
                .as_ref()
                .map(|j| (SplitMix64::new(sc.seed ^ j.salt), j.max)),
        }));

        let clock = SimClock::new();
        sim.bind_clock(clock.cell());
        let telemetry = Telemetry::with_clock(Arc::new(clock), 4096);
        let trace = TraceLog::new();
        trace.push(
            SimTime::ZERO,
            format!("scenario {} seed {:#x}", sc.name, sc.seed),
        );
        let output = Rc::new(RefCell::new(SharedOutput::default()));

        let attack_victims: Vec<usize> = sc
            .attack
            .victims
            .iter()
            .filter_map(|v| member_index(v))
            .collect();
        let member_actors: Vec<ActorId> = (0..total).map(|i| ActorId(1 + i)).collect();
        let manager = sim
            .add_actor(
                manager_node,
                Box::new(ManagerActor::new(ManagerParams {
                    scenario_name: sc.name.clone(),
                    cube: Arc::clone(&cube),
                    config: sc.config,
                    members: sc.members,
                    spares: sc.spares,
                    screen_shards,
                    transform_shards,
                    detector: sc.detector,
                    chaos: sc.chaos.clone(),
                    attack_after_results: sc.attack.after_results,
                    attack_victims,
                    machine_kill_times,
                    kill_during_regeneration: sc.kill_during_regeneration,
                    member_actors: member_actors.clone(),
                    member_nodes: member_nodes.clone(),
                    telemetry: telemetry.clone(),
                    trace: trace.clone(),
                    output: Rc::clone(&output),
                })),
            )
            .map_err(|e| self.fail(format!("add manager: {e}")))?;
        let heartbeat = Duration::from_millis(sc.detector.heartbeat_period_ms.max(1));
        for i in 0..total {
            let id = sim
                .add_actor(
                    member_nodes[i],
                    Box::new(MemberActor::new(
                        manager,
                        cube.bands(),
                        heartbeat,
                        CostModel::paper(),
                        trace.clone(),
                        crate::member_name(i),
                    )),
                )
                .map_err(|e| self.fail(format!("add member {i}: {e}")))?;
            debug_assert_eq!(id, member_actors[i]);
        }

        let outcome = sim
            .run()
            .map_err(|e| self.fail(format!("simulation: {e}")))?;

        // The simulator still owns the manager actor (and its Rc clone), so
        // take the contents rather than unwrapping the cell.
        let out = std::mem::take(&mut *output.borrow_mut());
        if let Some(err) = out.error {
            return Err(self.fail(format!("protocol failed: {err}")));
        }
        let Some(image) = out.image else {
            return Err(self.fail(format!(
                "no fused image after {} events (halted={})",
                outcome.events_processed, outcome.halted
            )));
        };
        let makespan = outcome.finished_at.since(SimTime::ZERO);
        Ok(ScenarioReport {
            name: sc.name.clone(),
            seed: sc.seed,
            image,
            makespan,
            makespan_bound: sc.makespan_bound,
            within_bound: makespan <= sc.makespan_bound,
            events: outcome.events_processed,
            messages_sent: outcome.metrics.messages_sent,
            messages_dropped: outcome.metrics.messages_dropped,
            // The simulator's counter covers manager-directed kills AND
            // scheduled machine kills that actually fired.
            kills_injected: outcome.metrics.node_failures as u32,
            detections: out.detections,
            false_positives: out.false_positives,
            regenerations: out.regenerations,
            duplicates: out.duplicates,
            retransmits: out.retransmits,
            detection_latency_ns: out.detection_latency_ns,
            trace: trace.render(),
            span_tree: render_span_tree(&telemetry.spans()),
            metrics_snapshot: telemetry.snapshot_prometheus().unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pct::SequentialPct;
    use service::ChaosPhase;

    #[test]
    fn fault_free_run_matches_sequential_byte_for_byte() {
        let sc = Scenario::baseline("calm", 7);
        let cube = Arc::new(sc.cube.generate());
        let report = SimHarness::new(sc.clone())
            .run_on(Arc::clone(&cube))
            .unwrap();
        let reference = SequentialPct::new(sc.config).run(&cube).unwrap();
        assert_eq!(report.image.raw(), reference.image.raw());
        assert!(report.within_bound, "makespan {:?}", report.makespan);
        assert_eq!(report.kills_injected, 0);
        assert_eq!(report.detections, 0);
    }

    #[test]
    fn chaos_kill_still_converges_to_identical_output() {
        let sc = Scenario::baseline("kill-screen", 7).with_chaos_kill(ChaosPhase::Screen, 0);
        let cube = Arc::new(sc.cube.generate());
        let report = SimHarness::new(sc.clone())
            .run_on(Arc::clone(&cube))
            .unwrap();
        let reference = SequentialPct::new(sc.config).run(&cube).unwrap();
        assert_eq!(report.image.raw(), reference.image.raw());
        assert_eq!(report.kills_injected, 1);
        assert_eq!(report.detections, 1);
        assert!(!report.detection_latency_ns.is_empty());
        assert!(report.span_tree.contains("detect"));
    }

    #[test]
    fn same_scenario_replays_byte_identically() {
        let sc = Scenario::baseline("replay", 42).with_chaos_kill(ChaosPhase::Derive, 1);
        let cube = Arc::new(sc.cube.generate());
        let a = SimHarness::new(sc.clone())
            .run_on(Arc::clone(&cube))
            .unwrap();
        let b = SimHarness::new(sc).run_on(cube).unwrap();
        assert_eq!(a.replay_blob(), b.replay_blob());
    }
}
