//! The property-style sweep runner: seeded enumeration of fault scenarios
//! and the pass/fail evidence table.

use crate::harness::{ScenarioReport, SimFailure, SimHarness};
use crate::scenario::{
    member_name, CubeSpec, LinkDelay, Partition, ReorderJitter, Scenario, Straggler,
};
use crate::SplitMix64;
use hsi::HyperCube;
use netsim::{Duration, FaultPlan, NodeId, SimTime};
use pct::SequentialPct;
use service::ChaosPhase;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Cube cache keyed by [`crate::CubeSpec::key`]: the generated cube plus
/// the raw bytes of its sequential reference image.
type CubeCache = BTreeMap<(usize, usize, usize, u64), (Arc<HyperCube>, Vec<u8>)>;

/// The scenario families a sweep cycles through, in order, so any sweep of
/// at least this many scenarios covers every family (and every
/// [`ChaosPhase`]).
const KINDS: [&str; 7] = [
    "screen-kill",
    "derive-kill",
    "transform-kill",
    "double-kill",
    "regen-kill",
    "machine-kill",
    "mischief",
];

const PHASES: [ChaosPhase; 3] = [
    ChaosPhase::Screen,
    ChaosPhase::Derive,
    ChaosPhase::Transform,
];

/// One row of sweep evidence.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scenario name (`s0042-double-kill-m3s1`).
    pub name: String,
    /// Scenario seed (derived from the sweep seed).
    pub seed: u64,
    /// Scenario family.
    pub kind: String,
    /// Byte-identity AND makespan bound held.
    pub passed: bool,
    /// Fused image identical to the sequential reference.
    pub byte_identical: bool,
    /// Virtual makespan under the scenario's bound.
    pub within_bound: bool,
    /// Virtual makespan.
    pub makespan: Duration,
    /// The scenario's bound.
    pub bound: Duration,
    /// Kills injected.
    pub kills: u32,
    /// True-positive detections.
    pub detections: u32,
    /// False-positive detections.
    pub false_positives: u32,
    /// Completed regenerations.
    pub regenerations: u32,
    /// Retransmissions.
    pub retransmits: u32,
    /// Duplicate results discarded.
    pub duplicates: u32,
    /// Detection latencies in virtual nanoseconds.
    pub detection_latency_ns: Vec<u64>,
}

/// The outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per scenario, in sweep order.
    pub rows: Vec<SweepRow>,
    /// Full report of the scenario with the worst virtual makespan.
    pub worst: Option<ScenarioReport>,
}

impl SweepReport {
    /// Number of passing rows.
    pub fn passed(&self) -> usize {
        self.rows.iter().filter(|r| r.passed).count()
    }

    /// Whether every row passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.rows.len()
    }

    /// The worst virtual makespan across the sweep.
    pub fn worst_makespan(&self) -> Duration {
        self.rows
            .iter()
            .map(|r| r.makespan)
            .fold(Duration::ZERO, |a, b| if b > a { b } else { a })
    }

    /// All detection latencies across the sweep, sorted ascending.
    pub fn detection_latencies_ns(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .rows
            .iter()
            .flat_map(|r| r.detection_latency_ns.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// The `q`-quantile (0..=1) of detection latency in virtual
    /// nanoseconds, or `None` when no detections happened.
    pub fn detection_latency_quantile_ns(&self, q: f64) -> Option<u64> {
        let all = self.detection_latencies_ns();
        if all.is_empty() {
            return None;
        }
        let idx = ((all.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(all[idx])
    }

    /// A per-family pass table.
    pub fn pass_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>6} {:>6} {:>9} {:>9} {:>11} {:>17}",
            "kind",
            "runs",
            "pass",
            "ident",
            "bound",
            "kills",
            "detects",
            "regens",
            "worst_ms(virtual)"
        );
        for kind in KINDS {
            let rows: Vec<&SweepRow> = self.rows.iter().filter(|r| r.kind == kind).collect();
            if rows.is_empty() {
                continue;
            }
            let worst = rows
                .iter()
                .map(|r| r.makespan)
                .fold(Duration::ZERO, |a, b| if b > a { b } else { a });
            let _ = writeln!(
                out,
                "{:<16} {:>5} {:>5} {:>6} {:>6} {:>9} {:>9} {:>11} {:>17.1}",
                kind,
                rows.len(),
                rows.iter().filter(|r| r.passed).count(),
                rows.iter().filter(|r| r.byte_identical).count(),
                rows.iter().filter(|r| r.within_bound).count(),
                rows.iter().map(|r| r.kills).sum::<u32>(),
                rows.iter().map(|r| r.detections).sum::<u32>(),
                rows.iter().map(|r| r.regenerations).sum::<u32>(),
                worst.as_secs_f64() * 1e3,
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>6} {:>6} {:>9} {:>9} {:>11} {:>17.1}",
            "TOTAL",
            self.rows.len(),
            self.passed(),
            self.rows.iter().filter(|r| r.byte_identical).count(),
            self.rows.iter().filter(|r| r.within_bound).count(),
            self.rows.iter().map(|r| r.kills).sum::<u32>(),
            self.rows.iter().map(|r| r.detections).sum::<u32>(),
            self.rows.iter().map(|r| r.regenerations).sum::<u32>(),
            self.worst_makespan().as_secs_f64() * 1e3,
        );
        out
    }
}

/// A seeded sweep: `count` scenarios enumerated from `seed`, cycling
/// through every scenario family.  The whole sweep — which scenarios are
/// generated and everything each one does — is a pure function of the
/// seed, so "reproduce row `s0042-…`" is: construct the same sweep,
/// [`Sweep::scenarios`], pick index 42, run it alone under a
/// [`SimHarness`].
#[derive(Debug, Clone)]
pub struct Sweep {
    seed: u64,
    count: usize,
}

impl Sweep {
    /// A sweep of `count` scenarios from `seed`.
    pub fn new(seed: u64, count: usize) -> Self {
        Self { seed, count }
    }

    /// The sweep seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scenarios.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Enumerates the sweep's scenarios deterministically.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.count).map(|i| generate(&mut rng, i)).collect()
    }

    /// Runs every scenario against its cached sequential reference.
    /// Returns `Err` if any scenario fails to *converge* (protocol stall /
    /// event-budget exhaustion); scenarios that converge to a wrong image
    /// or blow their makespan bound are reported as failing rows instead.
    pub fn run(&self) -> Result<SweepReport, SimFailure> {
        let mut cache: CubeCache = BTreeMap::new();
        let mut rows = Vec::with_capacity(self.count);
        let mut worst: Option<ScenarioReport> = None;
        for sc in self.scenarios() {
            let (cube, reference) = cache.entry(sc.cube.key()).or_insert_with(|| {
                let cube = Arc::new(sc.cube.generate());
                let reference = SequentialPct::new(sc.config)
                    .run(&cube)
                    .expect("sequential reference on a valid cube")
                    .image
                    .raw()
                    .to_vec();
                (cube, reference)
            });
            let report = SimHarness::new(sc.clone()).run_on(Arc::clone(cube))?;
            let byte_identical = report.image.raw() == &reference[..];
            rows.push(SweepRow {
                name: sc.name.clone(),
                seed: sc.seed,
                kind: kind_of(&sc.name),
                passed: byte_identical && report.within_bound,
                byte_identical,
                within_bound: report.within_bound,
                makespan: report.makespan,
                bound: report.makespan_bound,
                kills: report.kills_injected,
                detections: report.detections,
                false_positives: report.false_positives,
                regenerations: report.regenerations,
                retransmits: report.retransmits,
                duplicates: report.duplicates,
                detection_latency_ns: report.detection_latency_ns.clone(),
            });
            if worst.as_ref().is_none_or(|w| report.makespan > w.makespan) {
                worst = Some(report);
            }
        }
        Ok(SweepReport { rows, worst })
    }
}

fn kind_of(name: &str) -> String {
    KINDS
        .iter()
        .find(|k| name.contains(*k))
        .map(|k| k.to_string())
        .unwrap_or_else(|| "other".to_string())
}

/// Generates scenario `index` of a sweep.  Topology stays within the
/// contract's 8-node ceiling (1 manager + members + spares ≤ 8).
fn generate(rng: &mut SplitMix64, index: usize) -> Scenario {
    let kind = KINDS[index % KINDS.len()];
    let members = rng.range(2, 5);
    let spares = rng.range(1, 2);
    let dims_palette = [(12, 10, 4), (10, 12, 4), (14, 8, 3), (8, 14, 5)];
    let (width, height, bands) = dims_palette[rng.range(0, dims_palette.len() - 1)];
    let cube = CubeSpec {
        width,
        height,
        bands,
        seed: 1 + rng.below(2),
    };
    let periods = [5u64, 10, 20, 50];
    let misses = [2u32, 3, 4, 8];
    let mut sc = Scenario::baseline(String::new(), 0);
    sc.seed = rng.next_u64();
    sc.cube = cube;
    sc.members = members;
    sc.spares = spares;
    sc.screen_tasks = rng.range(2, 4);
    sc.transform_tasks = rng.range(2, 5);
    sc.detector.heartbeat_period_ms = periods[rng.range(0, periods.len() - 1)];
    sc.detector.miss_threshold = misses[rng.range(0, misses.len() - 1)];

    match kind {
        "screen-kill" => {
            sc = sc.with_chaos_kill(ChaosPhase::Screen, rng.range(0, members - 1));
        }
        "derive-kill" => {
            sc = sc.with_chaos_kill(ChaosPhase::Derive, rng.range(0, members - 1));
        }
        "transform-kill" => {
            sc = sc.with_chaos_kill(ChaosPhase::Transform, rng.range(0, members - 1));
        }
        "double-kill" => {
            let first = rng.range(0, members - 1);
            let second = (first + 1 + rng.range(0, members - 2)) % members;
            sc = sc
                .with_chaos_kill(PHASES[rng.range(0, 2)], first)
                .with_chaos_kill(PHASES[rng.range(0, 2)], second);
        }
        "regen-kill" => {
            sc = sc.with_chaos_kill(PHASES[rng.range(0, 2)], rng.range(0, members - 1));
            sc.kill_during_regeneration = true;
        }
        "machine-kill" => {
            let at = SimTime::from_nanos(Duration::from_millis(20 + rng.below(100)).as_nanos());
            sc.machine_kills = FaultPlan::kill_at(NodeId(rng.range(0, members - 1)), at);
            if rng.chance(1, 2) {
                let from = Duration::from_millis(10 + rng.below(30));
                sc.partitions.push(Partition {
                    member: rng.range(0, members - 1),
                    from,
                    until: from + Duration::from_millis(30 + rng.below(50)),
                });
            }
        }
        _ => {
            // "mischief": no kills — partitions, transit loss, jitter,
            // slow links and stragglers must all converge byte-identically.
            let from = Duration::from_millis(5 + rng.below(30));
            sc.partitions.push(Partition {
                member: rng.range(0, members - 1),
                from,
                until: from + Duration::from_millis(30 + rng.below(60)),
            });
            sc.attack
                .drop_sends
                .push((member_name(rng.range(0, members - 1)), 1 + rng.range(0, 1)));
            sc.reorder = Some(ReorderJitter {
                max: Duration::from_micros(200 + rng.below(1_800)),
                salt: rng.next_u64(),
            });
            sc.link_delays.push(LinkDelay {
                member: rng.range(0, members - 1),
                extra: Duration::from_micros(50 + rng.below(450)),
            });
            sc.stragglers.push(Straggler {
                member: rng.range(0, members - 1),
                speed: [0.5, 0.25][rng.range(0, 1)],
            });
        }
    }
    // Independent riders on the kill families: slow nodes and jittery
    // links compose with every kill schedule.
    if kind != "mischief" {
        if rng.chance(1, 4) {
            sc.stragglers.push(Straggler {
                member: rng.range(0, members - 1),
                speed: [0.5, 0.25][rng.range(0, 1)],
            });
        }
        if rng.chance(1, 4) {
            sc.reorder = Some(ReorderJitter {
                max: Duration::from_micros(100 + rng.below(900)),
                salt: rng.next_u64(),
            });
        }
        if rng.chance(1, 4) {
            sc.link_delays.push(LinkDelay {
                member: rng.range(0, members - 1),
                extra: Duration::from_micros(50 + rng.below(250)),
            });
        }
    }
    sc.name = format!("s{index:04}-{kind}-m{members}s{spares}");
    sc.makespan_bound = sc.derived_makespan_bound();
    sc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_enumeration_is_deterministic_and_covers_every_kind() {
        let a = Sweep::new(99, 21).scenarios();
        let b = Sweep::new(99, 21).scenarios();
        assert_eq!(a.len(), 21);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
        }
        for kind in KINDS {
            assert!(
                a.iter().any(|s| s.name.contains(kind)),
                "kind {kind} missing"
            );
        }
        for sc in &a {
            sc.validate().expect("generated scenarios validate");
        }
    }

    #[test]
    fn small_sweep_passes_end_to_end() {
        let report = Sweep::new(7, 14).run().expect("sweep converges");
        assert!(report.all_passed(), "\n{}", report.pass_table());
        assert!(report.rows.iter().any(|r| r.detections > 0));
        let table = report.pass_table();
        assert!(table.contains("TOTAL"));
        assert!(report.worst.is_some());
    }
}
