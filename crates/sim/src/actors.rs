//! The manager and member actors that run the real fusion protocol on the
//! simulated cluster.
//!
//! The manager mirrors the service scheduler's phase machine exactly —
//! seeded screening chain → single derive task → transform fan-out — so
//! the fused output is byte-identical to [`pct::SequentialPct`] by
//! construction, whatever the fault schedule does.  Members execute tasks
//! with [`pct::distributed::handle_task`] (real pixels, real results)
//! while the virtual clock is charged by the calibrated
//! [`netsim::CostModel`] and messages are costed in real wire bytes by
//! [`netsim::wirecost`].
//!
//! All bookkeeping lives in `Vec`s and `BTreeMap`s: no iteration order in
//! this module depends on a hash function, which is one of the three legs
//! the determinism contract stands on (the others are the integer-nanos
//! virtual clock and the `(SimTime, sequence)` event tie-break).

use crate::scenario::member_index;
use crate::trace::TraceLog;
use hsi::partition::SubCubeSpec;
use hsi::{HyperCube, RgbImage};
use netsim::{wirecost, Actor, ActorContext, ActorId, CostModel, Duration, NodeId, SimTime};
use pct::colormap::ComponentScale;
use pct::distributed::{assemble_image, handle_task};
use pct::messages::{PctMessage, TaskId};
use pct::PctConfig;
use resilience::DetectorConfig;
use service::{ChaosPhase, ChaosPlan};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;
use telemetry::{SpanId, Telemetry};

/// The manager's timer tag for the periodic detector sweep.
const SWEEP_TIMER: u64 = 0;
/// Base of regeneration-completion timer tags (`REGEN_TIMER_BASE + spare`).
const REGEN_TIMER_BASE: u64 = 1_000;
/// A member's heartbeat timer tag.
const HEARTBEAT_TIMER: u64 = 0;

/// Counters and artefacts the manager publishes to the harness.
#[derive(Debug, Default)]
pub(crate) struct SharedOutput {
    pub image: Option<RgbImage>,
    pub error: Option<String>,
    pub kills_injected: u32,
    pub detections: u32,
    pub false_positives: u32,
    pub regenerations: u32,
    pub duplicates: u32,
    pub retransmits: u32,
    pub detection_latency_ns: Vec<u64>,
}

pub(crate) type SharedOutputCell = Rc<RefCell<SharedOutput>>;

/// Exact wire bytes of a protocol message, per the `wirecost` formulas
/// pinned to the real codec.  `bands` disambiguates empty vector sets.
pub(crate) fn wire_bytes(msg: &PctMessage, bands: usize) -> u64 {
    let b = bands as u64;
    match msg {
        PctMessage::ScreenTask { view, .. } => wirecost::screen_task_frame(view.pixels() as u64, b),
        PctMessage::ScreenSeededTask { view, seed, .. } => {
            wirecost::screen_seeded_task_frame(view.pixels() as u64, b, seed.len() as u64)
        }
        PctMessage::UniqueSet { unique, .. } => wirecost::unique_set_frame(unique.len() as u64, b),
        PctMessage::SeededUnique { accepted, .. } => {
            wirecost::unique_set_frame(accepted.len() as u64, b)
        }
        PctMessage::CovarianceTask { pixels, .. } => {
            wirecost::covariance_task_frame(pixels.len() as u64, b)
        }
        PctMessage::CovarianceSum { bands, .. } => wirecost::covariance_sum_frame(*bands as u64),
        PctMessage::DeriveTask { unique, .. } => wirecost::framed(
            wirecost::TAG_BYTES
                + wirecost::TASK_ID_BYTES
                + wirecost::vector_set_bytes(unique.len() as u64, b)
                + 2 * wirecost::SAMPLE_BYTES,
        ),
        PctMessage::DerivedTransform {
            mean,
            transform,
            eigenvalues,
            ..
        } => wirecost::framed(
            wirecost::TAG_BYTES
                + wirecost::TASK_ID_BYTES
                + wirecost::vector_bytes(mean.len() as u64)
                + wirecost::matrix_bytes(transform.rows() as u64, transform.cols() as u64)
                + wirecost::vector_bytes(eigenvalues.len() as u64),
        ),
        PctMessage::TransformTask {
            view, transform, ..
        } => wirecost::transform_task_frame(view.pixels() as u64, b, transform.rows() as u64),
        PctMessage::RgbStrip { rows, width, .. } => {
            wirecost::rgb_strip_frame((*rows * *width) as u64)
        }
        PctMessage::TaskFailed { error, .. } => {
            wirecost::framed(wirecost::TAG_BYTES + wirecost::TASK_ID_BYTES + error.len() as u64)
        }
        PctMessage::Heartbeat | PctMessage::Shutdown => wirecost::control_frame(),
    }
}

/// Virtual CPU cost of executing a task, per the calibrated cost model.
pub(crate) fn compute_cost(model: &CostModel, msg: &PctMessage, bands: usize) -> Duration {
    match msg {
        PctMessage::ScreenTask { view, .. } | PctMessage::ScreenSeededTask { view, .. } => {
            model.screening_work(view.pixels(), bands) + model.per_task_overhead()
        }
        PctMessage::DeriveTask { unique, .. } => {
            model.mean_work(unique.len(), bands)
                + model.covariance_work(unique.len(), bands)
                + model.eigen_work(bands)
                + model.per_task_overhead()
        }
        PctMessage::TransformTask { view, .. } => {
            model.transform_work(view.pixels(), bands)
                + model.colormap_work(view.pixels())
                + model.per_task_overhead()
        }
        _ => Duration::ZERO,
    }
}

// ---------------------------------------------------------------- members

/// A replica-group member: heartbeats on a virtual timer and executes
/// every task it receives with the real `handle_task`, charging the
/// virtual CPU before replying.
pub(crate) struct MemberActor {
    pub manager: ActorId,
    pub bands: usize,
    pub heartbeat: Duration,
    pub cost: CostModel,
    pub trace: TraceLog,
    pub name: String,
    pending: BTreeMap<u64, PctMessage>,
    next_tag: u64,
}

impl MemberActor {
    pub fn new(
        manager: ActorId,
        bands: usize,
        heartbeat: Duration,
        cost: CostModel,
        trace: TraceLog,
        name: String,
    ) -> Self {
        Self {
            manager,
            bands,
            heartbeat,
            cost,
            trace,
            name,
            pending: BTreeMap::new(),
            next_tag: 1,
        }
    }
}

impl Actor<PctMessage> for MemberActor {
    fn on_start(&mut self, ctx: &mut ActorContext<'_, PctMessage>) {
        ctx.set_timer(HEARTBEAT_TIMER, self.heartbeat);
    }

    fn on_timer(&mut self, ctx: &mut ActorContext<'_, PctMessage>, tag: u64) {
        if tag == HEARTBEAT_TIMER {
            ctx.send(
                self.manager,
                PctMessage::Heartbeat,
                wirecost::control_frame(),
            );
            ctx.set_timer(HEARTBEAT_TIMER, self.heartbeat);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ActorContext<'_, PctMessage>,
        _from: ActorId,
        msg: PctMessage,
    ) {
        if msg.task().is_none() {
            return;
        }
        let work = compute_cost(&self.cost, &msg, self.bands);
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, msg);
        ctx.compute(tag, work);
    }

    fn on_compute_done(&mut self, ctx: &mut ActorContext<'_, PctMessage>, tag: u64) {
        let Some(task_msg) = self.pending.remove(&tag) else {
            return;
        };
        if let Some(result) = handle_task(task_msg) {
            self.trace.push(
                ctx.now(),
                format!(
                    "{} -> manager {} task {}",
                    self.name,
                    result.kind(),
                    result.task().map_or(-1, |t| t as i64)
                ),
            );
            let bytes = wire_bytes(&result, self.bands);
            ctx.send(self.manager, result, bytes);
        }
    }
}

// ---------------------------------------------------------------- manager

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Screen,
    Derive,
    Transform,
    Done,
}

struct Outstanding {
    msg: PctMessage,
    member: Option<usize>,
    sent_at: SimTime,
    attempts: u32,
}

/// Everything the manager needs at construction.
pub(crate) struct ManagerParams {
    pub scenario_name: String,
    pub cube: Arc<HyperCube>,
    pub config: PctConfig,
    pub members: usize,
    pub spares: usize,
    pub screen_shards: Vec<SubCubeSpec>,
    pub transform_shards: Vec<SubCubeSpec>,
    pub detector: DetectorConfig,
    pub chaos: ChaosPlan,
    pub attack_after_results: usize,
    pub attack_victims: Vec<usize>,
    /// Ground-truth kill times of scheduled machine kills, for detection
    /// latency measurement.
    pub machine_kill_times: Vec<(usize, SimTime)>,
    pub kill_during_regeneration: bool,
    pub member_actors: Vec<ActorId>,
    pub member_nodes: Vec<NodeId>,
    pub telemetry: Telemetry,
    pub trace: TraceLog,
    pub output: SharedOutputCell,
}

/// The manager: phase machine, failure detector, retransmitter,
/// regenerator and chaos injector, all on virtual timers.
pub(crate) struct ManagerActor {
    p: ManagerParams,
    bands: usize,
    phase: Phase,
    unique: Vec<linalg::Vector>,
    screen_next: usize,
    screen_outstanding: bool,
    derive_outstanding: bool,
    transform_next: usize,
    mean: Option<linalg::Vector>,
    transform: Option<linalg::Matrix>,
    scales: Vec<(f64, f64)>,
    strips: Vec<(usize, usize, usize, Vec<u8>)>,
    outstanding: BTreeMap<TaskId, Outstanding>,
    completed: BTreeSet<TaskId>,
    next_task: TaskId,
    /// Round-robin rotation of members currently eligible for work.
    active: Vec<usize>,
    spare_pool: Vec<usize>,
    rr: usize,
    last_hb: Vec<SimTime>,
    declared_dead: Vec<bool>,
    /// Ground truth: when each member's node actually died (scheduled
    /// machine kills are pre-seeded; chaos/attack kills recorded as they
    /// fire).  Detections without an entry are false positives.
    kill_times: BTreeMap<usize, SimTime>,
    chaos_fired: Vec<bool>,
    attack_fired: bool,
    results_seen: usize,
    kdr_fired: bool,
    regen_spans: BTreeMap<usize, (Option<SpanId>, SimTime)>,
    job_span: Option<SpanId>,
    phase_span: Option<SpanId>,
}

impl ManagerActor {
    pub fn new(p: ManagerParams) -> Self {
        let total = p.members + p.spares;
        let bands = p.cube.bands();
        let mut kill_times = BTreeMap::new();
        for (member, at) in &p.machine_kill_times {
            kill_times.insert(*member, *at);
        }
        let chaos_fired = vec![false; p.chaos.kills.len()];
        Self {
            bands,
            phase: Phase::Screen,
            unique: Vec::new(),
            screen_next: 0,
            screen_outstanding: false,
            derive_outstanding: false,
            transform_next: 0,
            mean: None,
            transform: None,
            scales: Vec::new(),
            strips: Vec::new(),
            outstanding: BTreeMap::new(),
            completed: BTreeSet::new(),
            next_task: 1,
            active: (0..p.members).collect(),
            spare_pool: (p.members..total).collect(),
            rr: 0,
            last_hb: vec![SimTime::ZERO; total],
            declared_dead: vec![false; total],
            kill_times,
            chaos_fired,
            attack_fired: false,
            results_seen: 0,
            kdr_fired: false,
            regen_spans: BTreeMap::new(),
            job_span: None,
            phase_span: None,
            p,
        }
    }

    fn hb_period(&self) -> Duration {
        Duration::from_millis(self.p.detector.heartbeat_period_ms.max(1))
    }

    fn silence_threshold(&self) -> Duration {
        self.hb_period()
            .saturating_mul(self.p.detector.miss_threshold.max(1) as u64)
    }

    /// Base retransmit timeout.  Dead members are recovered faster by the
    /// detector (their tasks are orphaned and re-dispatched immediately),
    /// so retransmits only chase frames lost in transit — the base sits
    /// well above task service time (≥ `per_task_overhead` even on a
    /// straggler) to avoid duplicate storms.
    fn retransmit_base(&self) -> Duration {
        let window = self
            .hb_period()
            .saturating_mul(self.p.detector.miss_threshold.max(1) as u64 + 1);
        let floor = Duration::from_millis(1_000);
        if window.saturating_mul(4) > floor {
            window.saturating_mul(4)
        } else {
            floor
        }
    }

    fn regen_delay(&self) -> Duration {
        self.hb_period()
    }

    fn kill_member(&mut self, ctx: &mut ActorContext<'_, PctMessage>, member: usize, why: &str) {
        if self.kill_times.contains_key(&member) {
            return;
        }
        self.kill_times.insert(member, ctx.now());
        self.p.output.borrow_mut().kills_injected += 1;
        self.p.telemetry.note_kill(&crate::member_name(member));
        ctx.kill_node(self.p.member_nodes[member]);
        self.p
            .trace
            .push(ctx.now(), format!("kill m{member} ({why})"));
    }

    /// Fires unfired chaos kills anchored on `phase`, exactly like the
    /// service scheduler: immediately before the first dispatch of that
    /// phase's task.
    fn fire_chaos(&mut self, ctx: &mut ActorContext<'_, PctMessage>, phase: ChaosPhase) {
        for k in 0..self.p.chaos.kills.len() {
            if self.chaos_fired[k] || self.p.chaos.kills[k].phase != phase {
                continue;
            }
            self.chaos_fired[k] = true;
            if let Some(m) = member_index(&self.p.chaos.kills[k].member) {
                self.kill_member(ctx, m, "chaos");
            }
        }
    }

    fn fire_attack_if_due(&mut self, ctx: &mut ActorContext<'_, PctMessage>) {
        if self.attack_fired
            || self.p.attack_victims.is_empty()
            || self.results_seen < self.p.attack_after_results
        {
            return;
        }
        self.attack_fired = true;
        let victims = self.p.attack_victims.clone();
        for m in victims {
            self.kill_member(ctx, m, "attack");
        }
    }

    fn next_task_message(&mut self) -> Option<PctMessage> {
        let task = self.next_task;
        let msg = match self.phase {
            Phase::Screen => {
                if self.screen_outstanding || self.screen_next >= self.p.screen_shards.len() {
                    return None;
                }
                let view = self.p.screen_shards[self.screen_next]
                    .view(&self.p.cube)
                    .ok()?;
                self.screen_outstanding = true;
                PctMessage::ScreenSeededTask {
                    task,
                    view,
                    seed: self.unique.clone(),
                    threshold_rad: self.p.config.screening_angle_rad,
                }
            }
            Phase::Derive => {
                if self.derive_outstanding {
                    return None;
                }
                self.derive_outstanding = true;
                PctMessage::DeriveTask {
                    task,
                    unique: std::mem::take(&mut self.unique),
                    config: self.p.config,
                }
            }
            Phase::Transform => {
                if self.transform_next >= self.p.transform_shards.len() {
                    return None;
                }
                let view = self.p.transform_shards[self.transform_next]
                    .view(&self.p.cube)
                    .ok()?;
                self.transform_next += 1;
                PctMessage::TransformTask {
                    task,
                    view,
                    mean: self.mean.clone()?,
                    transform: self.transform.clone()?,
                    scales: self.scales.clone(),
                }
            }
            Phase::Done => return None,
        };
        self.next_task += 1;
        Some(msg)
    }

    fn pick_member(&mut self) -> Option<usize> {
        if self.active.is_empty() {
            return None;
        }
        let m = self.active[self.rr % self.active.len()];
        self.rr += 1;
        Some(m)
    }

    fn send_task(
        &mut self,
        ctx: &mut ActorContext<'_, PctMessage>,
        task: TaskId,
        msg: PctMessage,
        member: usize,
        attempts: u32,
    ) {
        if let Some(phase) = ChaosPhase::of_message(&msg) {
            self.fire_chaos(ctx, phase);
        }
        self.p.trace.push(
            ctx.now(),
            format!("manager -> m{member} {} task {task}", msg.kind()),
        );
        let bytes = wire_bytes(&msg, self.bands);
        ctx.send(self.p.member_actors[member], msg.clone(), bytes);
        self.outstanding.insert(
            task,
            Outstanding {
                msg,
                member: Some(member),
                sent_at: ctx.now(),
                attempts,
            },
        );
    }

    /// Re-sends unassigned outstanding tasks and pulls new phase tasks
    /// while members are available.
    fn try_dispatch(&mut self, ctx: &mut ActorContext<'_, PctMessage>) {
        let orphans: Vec<TaskId> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.member.is_none())
            .map(|(t, _)| *t)
            .collect();
        for task in orphans {
            let Some(member) = self.pick_member() else {
                return;
            };
            let o = self.outstanding.remove(&task).expect("orphan exists");
            self.p.output.borrow_mut().retransmits += 1;
            self.send_task(ctx, task, o.msg, member, o.attempts + 1);
        }
        loop {
            if self.active.is_empty() {
                return;
            }
            let task = self.next_task;
            let Some(msg) = self.next_task_message() else {
                return;
            };
            let member = self.pick_member().expect("active checked non-empty");
            self.send_task(ctx, task, msg, member, 0);
        }
    }

    fn roll_phase(
        &mut self,
        ctx: &mut ActorContext<'_, PctMessage>,
        next: Phase,
        name: &'static str,
    ) {
        self.p.telemetry.span_end(self.phase_span.take());
        self.phase = next;
        if next != Phase::Done {
            self.phase_span = self
                .p
                .telemetry
                .span_start(name, self.job_span, Some(1), "");
        }
        self.p.trace.push(ctx.now(), format!("phase -> {name}"));
    }

    fn declare_dead(&mut self, ctx: &mut ActorContext<'_, PctMessage>, member: usize) {
        if self.declared_dead[member] {
            return;
        }
        self.declared_dead[member] = true;
        self.active.retain(|&m| m != member);
        self.spare_pool.retain(|&m| m != member);
        let now = ctx.now();
        let name = crate::member_name(member);
        match self
            .kill_times
            .get(&member)
            .copied()
            .filter(|kt| *kt <= now)
        {
            Some(kt) => {
                let latency = now.since(kt);
                let mut out = self.p.output.borrow_mut();
                out.detections += 1;
                out.detection_latency_ns.push(latency.as_nanos());
                drop(out);
                let _ = self.p.telemetry.take_kill(&name);
                self.p.telemetry.span_closed(
                    "detect",
                    self.phase_span,
                    Some(1),
                    kt.as_nanos(),
                    &name,
                );
                self.p.telemetry.observe(
                    "sim_detection_latency_seconds",
                    &[],
                    std::time::Duration::from_nanos(latency.as_nanos()),
                );
                self.p.trace.push(
                    now,
                    format!(
                        "detected death of m{member} after {} ns",
                        latency.as_nanos()
                    ),
                );
            }
            None => {
                self.p.output.borrow_mut().false_positives += 1;
                self.p.telemetry.span_closed(
                    "detect",
                    self.phase_span,
                    Some(1),
                    now.as_nanos()
                        .saturating_sub(self.silence_threshold().as_nanos()),
                    "false-positive",
                );
                self.p
                    .trace
                    .push(now, format!("false-positive detection of m{member}"));
            }
        }
        // Orphan the dead member's outstanding tasks for re-dispatch.
        for o in self.outstanding.values_mut() {
            if o.member == Some(member) {
                o.member = None;
            }
        }
        self.start_regeneration(ctx);
        self.try_dispatch(ctx);
        if self.active.is_empty() && self.regen_spans.is_empty() && self.spare_pool.is_empty() {
            self.fail(ctx, "all members dead and no spares left");
        }
    }

    fn start_regeneration(&mut self, ctx: &mut ActorContext<'_, PctMessage>) {
        if self.spare_pool.is_empty() {
            return;
        }
        let spare = self.spare_pool.remove(0);
        let span = self
            .p
            .telemetry
            .span_start("regenerate", self.job_span, Some(1), "");
        self.regen_spans.insert(spare, (span, ctx.now()));
        ctx.set_timer(REGEN_TIMER_BASE + spare as u64, self.regen_delay());
        self.p
            .trace
            .push(ctx.now(), format!("regenerating via spare m{spare}"));
        if self.p.kill_during_regeneration && !self.kdr_fired {
            self.kdr_fired = true;
            self.kill_member(ctx, spare, "kill-during-regeneration");
        }
    }

    fn fail(&mut self, ctx: &mut ActorContext<'_, PctMessage>, why: &str) {
        let mut out = self.p.output.borrow_mut();
        if out.error.is_none() {
            out.error = Some(why.to_string());
        }
        drop(out);
        self.p.trace.push(ctx.now(), format!("FAILED: {why}"));
        self.p.telemetry.span_end(self.phase_span.take());
        self.p.telemetry.span_end(self.job_span.take());
        ctx.halt();
    }

    /// Dedup-checked bookkeeping for an arriving task result.  Returns
    /// false for duplicates (late results from partitioned or
    /// falsely-declared members).
    fn accept_result(&mut self, ctx: &mut ActorContext<'_, PctMessage>, task: TaskId) -> bool {
        if self.completed.contains(&task) {
            self.p.output.borrow_mut().duplicates += 1;
            return false;
        }
        self.completed.insert(task);
        self.outstanding.remove(&task);
        self.results_seen += 1;
        self.fire_attack_if_due(ctx);
        true
    }
}

impl Actor<PctMessage> for ManagerActor {
    fn on_start(&mut self, ctx: &mut ActorContext<'_, PctMessage>) {
        self.job_span = self
            .p
            .telemetry
            .span_start("job", None, Some(1), &self.p.scenario_name);
        self.phase_span = self
            .p
            .telemetry
            .span_start("screen", self.job_span, Some(1), "");
        let now = ctx.now();
        for hb in &mut self.last_hb {
            *hb = now;
        }
        ctx.set_timer(SWEEP_TIMER, self.hb_period());
        if self.p.attack_after_results == 0 {
            self.fire_attack_if_due(ctx);
        }
        self.try_dispatch(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ActorContext<'_, PctMessage>, tag: u64) {
        if tag >= REGEN_TIMER_BASE {
            let spare = (tag - REGEN_TIMER_BASE) as usize;
            if let Some((span, started)) = self.regen_spans.remove(&spare) {
                self.p.telemetry.span_end(span);
                if self.declared_dead[spare] {
                    self.p.trace.push(
                        ctx.now(),
                        format!("regeneration via m{spare} failed (spare died)"),
                    );
                } else {
                    self.active.push(spare);
                    self.p.output.borrow_mut().regenerations += 1;
                    self.p.telemetry.observe(
                        "sim_regeneration_seconds",
                        &[],
                        std::time::Duration::from_nanos(ctx.now().since(started).as_nanos()),
                    );
                    self.p
                        .trace
                        .push(ctx.now(), format!("m{spare} joined as replacement"));
                    self.try_dispatch(ctx);
                }
            }
            return;
        }
        // Detector sweep + retransmit pass.
        let now = ctx.now();
        let threshold = self.silence_threshold();
        let total = self.p.members + self.p.spares;
        for member in 0..total {
            if !self.declared_dead[member] && now.since(self.last_hb[member]) > threshold {
                self.declare_dead(ctx, member);
            }
        }
        let base = self.retransmit_base();
        let overdue: Vec<TaskId> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                o.member.is_some()
                    && now.since(o.sent_at) > base.saturating_mul(1u64 << o.attempts.min(5))
            })
            .map(|(t, _)| *t)
            .collect();
        for task in overdue {
            let Some(member) = self.pick_member() else {
                break;
            };
            let o = self.outstanding.remove(&task).expect("overdue task exists");
            self.p.output.borrow_mut().retransmits += 1;
            self.p.trace.push(
                now,
                format!("retransmit task {task} (attempt {})", o.attempts + 1),
            );
            self.send_task(ctx, task, o.msg, member, o.attempts + 1);
        }
        self.try_dispatch(ctx);
        if self.phase != Phase::Done {
            ctx.set_timer(SWEEP_TIMER, self.hb_period());
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ActorContext<'_, PctMessage>,
        from: ActorId,
        msg: PctMessage,
    ) {
        let member = self.p.member_actors.iter().position(|&a| a == from);
        match msg {
            PctMessage::Heartbeat => {
                if let Some(m) = member {
                    self.last_hb[m] = ctx.now();
                }
            }
            PctMessage::SeededUnique { task, accepted } => {
                if !self.accept_result(ctx, task) {
                    return;
                }
                self.unique.extend(accepted);
                self.screen_outstanding = false;
                self.screen_next += 1;
                if self.screen_next >= self.p.screen_shards.len() {
                    self.roll_phase(ctx, Phase::Derive, "derive");
                }
                self.try_dispatch(ctx);
            }
            PctMessage::DerivedTransform {
                task,
                mean,
                transform,
                eigenvalues,
            } => {
                if !self.accept_result(ctx, task) {
                    return;
                }
                self.scales = ComponentScale::from_eigenvalues(&eigenvalues, 3)
                    .into_iter()
                    .map(|s| (s.min, s.max))
                    .collect();
                self.mean = Some(mean);
                self.transform = Some(transform);
                self.roll_phase(ctx, Phase::Transform, "transform");
                self.try_dispatch(ctx);
            }
            PctMessage::RgbStrip {
                task,
                row_start,
                rows,
                width,
                rgb,
            } => {
                if !self.accept_result(ctx, task) {
                    return;
                }
                self.strips.push((row_start, rows, width, rgb));
                if self.strips.len() >= self.p.transform_shards.len() {
                    let strips = std::mem::take(&mut self.strips);
                    match assemble_image(self.p.cube.width(), self.p.cube.height(), strips) {
                        Ok(image) => {
                            self.p.output.borrow_mut().image = Some(image);
                            self.roll_phase(ctx, Phase::Done, "done");
                            self.p.telemetry.span_end(self.job_span.take());
                            self.p.trace.push(ctx.now(), "job complete");
                            ctx.halt();
                        }
                        Err(e) => self.fail(ctx, &format!("assembly failed: {e}")),
                    }
                }
            }
            PctMessage::TaskFailed { task, error } => {
                self.fail(ctx, &format!("task {task} failed: {error}"));
            }
            _ => {}
        }
    }
}
