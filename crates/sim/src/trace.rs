//! Deterministic run traces and span-tree rendering.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use telemetry::Span;

/// A shared, append-only event log the scenario's actors write into.
///
/// Every line is stamped with exact virtual time, so two runs of the same
/// scenario produce byte-identical logs — the substrate of the seed/replay
/// contract.  The log lives on an `Rc` because the whole simulation is
/// single-threaded by construction (no threads are spawned, and none can
/// leak).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    lines: Rc<RefCell<Vec<String>>>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event line stamped with virtual time.
    pub fn push(&self, now: netsim::SimTime, line: impl AsRef<str>) {
        self.lines
            .borrow_mut()
            .push(format!("{:>15} {}", now.as_nanos(), line.as_ref()));
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.borrow().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.borrow().is_empty()
    }

    /// Renders the log as one newline-joined string.
    pub fn render(&self) -> String {
        self.lines.borrow().join("\n")
    }
}

/// Renders closed telemetry spans as an indented tree, children ordered
/// by start time (ties by span id — both exact virtual quantities).
pub fn render_span_tree(spans: &[Span]) -> String {
    let mut out = String::new();
    let mut children: Vec<usize> = (0..spans.len()).collect();
    children.sort_by_key(|&i| (spans[i].start_nanos, spans[i].id.0));
    fn emit(out: &mut String, spans: &[Span], order: &[usize], parent: Option<u64>, depth: usize) {
        for &i in order {
            let s = &spans[i];
            if s.parent.map(|p| p.0) != parent {
                continue;
            }
            let _ = writeln!(
                out,
                "{}{} [{} ns .. {} ns]{}{}",
                "  ".repeat(depth),
                s.name,
                s.start_nanos,
                s.end_nanos,
                if s.detail.is_empty() { "" } else { " " },
                s.detail,
            );
            emit(out, spans, order, Some(s.id.0), depth + 1);
        }
    }
    emit(&mut out, spans, &children, None, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    #[test]
    fn trace_lines_are_stamped_and_ordered() {
        let log = TraceLog::new();
        log.push(SimTime::from_nanos(5), "first");
        log.push(SimTime::from_nanos(10), "second");
        let rendered = log.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("first"));
        assert!(lines[1].ends_with("second"));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn span_tree_nests_children_under_parents() {
        let clock = crate::SimClock::new();
        let cell = clock.cell();
        let tel = telemetry::Telemetry::with_clock(std::sync::Arc::new(clock), 64);
        let job = tel.span_start("job", None, Some(1), "");
        cell.store(10, std::sync::atomic::Ordering::Relaxed);
        let screen = tel.span_start("screen", job, Some(1), "");
        cell.store(30, std::sync::atomic::Ordering::Relaxed);
        tel.span_end(screen);
        tel.span_end(job);
        let tree = render_span_tree(&tel.spans());
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("job ["));
        assert!(lines[1].starts_with("  screen ["));
    }
}
