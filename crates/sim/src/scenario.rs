//! The scenario DSL: one seeded experiment over the simulated cluster.

use hsi::{CubeDims, HyperCube, SceneConfig, SceneGenerator};
use netsim::{Duration, FaultPlan, NetworkModel};
use pct::resilient::AttackPlan;
use pct::PctConfig;
use resilience::DetectorConfig;
use service::{ChaosPhase, ChaosPlan};

/// Routing name of simulated member `i` (`m0`, `m1`, …).  Used by
/// [`ChaosPlan`] and [`AttackPlan`] entries inside a [`Scenario`].
pub fn member_name(i: usize) -> String {
    format!("m{i}")
}

/// Parses a [`member_name`] back to its index.
pub(crate) fn member_index(name: &str) -> Option<usize> {
    name.strip_prefix('m')?.parse().ok()
}

/// The synthetic cube a scenario fuses.  Kept tiny so thousands of
/// scenarios run per second; the byte-identity oracle does not care about
/// size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSpec {
    /// Cube width in pixels.
    pub width: usize,
    /// Cube height in pixels.
    pub height: usize,
    /// Spectral bands.
    pub bands: usize,
    /// Scene generator seed.
    pub seed: u64,
}

impl CubeSpec {
    /// A small default cube.
    pub fn tiny(seed: u64) -> Self {
        Self {
            width: 12,
            height: 10,
            bands: 4,
            seed,
        }
    }

    /// A cache key identifying the generated cube (and therefore the
    /// sequential reference output).
    pub fn key(&self) -> (usize, usize, usize, u64) {
        (self.width, self.height, self.bands, self.seed)
    }

    /// Generates the cube deterministically.
    pub fn generate(&self) -> HyperCube {
        SceneGenerator::new(SceneConfig {
            dims: CubeDims::new(self.width, self.height, self.bands),
            seed: self.seed,
            noise_sigma: 0.01,
            full_scale: 4095.0,
            targets: Vec::new(),
            open_field_fraction: 0.4,
        })
        .expect("tiny scene config is valid")
        .generate()
    }
}

/// A node-pair partition window: messages between the manager and
/// `member` are dropped in both directions while `from <= now < until`.
/// Heartbeats lost to a partition produce *false-positive* detections —
/// the protocol must still converge to the byte-identical output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The member cut off from the manager.
    pub member: usize,
    /// Window start (virtual time since simulation start).
    pub from: Duration,
    /// Window end (exclusive).
    pub until: Duration,
}

/// A constant extra transit delay on every message to or from `member`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkDelay {
    /// The member whose link is slow.
    pub member: usize,
    /// Extra one-way delay added on top of the modelled latency.
    pub extra: Duration,
}

/// Deterministic reorder jitter: every inter-node send gets an extra
/// delay drawn from `[0, max)` by a seeded splitmix64 stream, which
/// genuinely reorders deliveries while staying a pure function of the
/// scenario seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderJitter {
    /// Upper bound (exclusive) of the per-message jitter.
    pub max: Duration,
    /// Stream seed (folded with the scenario seed by the harness).
    pub salt: u64,
}

/// A slow node: `member` computes at `speed` times the reference rate
/// (0.25 = a 4× straggler).
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// The slow member.
    pub member: usize,
    /// Relative CPU speed in `(0, 1]`.
    pub speed: f64,
}

/// One seeded experiment: topology, workload, detector parameters and the
/// composed fault schedule.  Everything observable about a run is a pure
/// function of this value.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, shown in pass tables.
    pub name: String,
    /// Scenario seed: folds into jitter streams and the trace header.
    pub seed: u64,
    /// The cube to fuse.
    pub cube: CubeSpec,
    /// Pipeline configuration (screening angle, output components).
    pub config: PctConfig,
    /// Active worker members at start (`m0` … `m{members-1}`).
    pub members: usize,
    /// Spare members (`m{members}` …) held for regeneration.
    pub spares: usize,
    /// Sub-cubes in the seeded screening chain.
    pub screen_tasks: usize,
    /// Sub-cubes in the transform fan-out.
    pub transform_tasks: usize,
    /// Failure-detector parameters — the swept quantity: heartbeat period
    /// and silence threshold, both on *virtual* time.
    pub detector: DetectorConfig,
    /// The LAN model messages travel over, costed in real wire bytes.
    pub network: NetworkModel,
    /// Machine kills at fixed virtual times.  `NodeId(i)` in this plan
    /// addresses *member* `i`; the harness maps it onto the member's
    /// cluster node.
    pub machine_kills: FaultPlan,
    /// Phase-anchored member kills (fired immediately before the first
    /// task of the anchor phase is dispatched).  Member routing names use
    /// [`member_name`]; the job id is ignored (the simulator runs one
    /// job).
    pub chaos: ChaosPlan,
    /// After-N-results kills and transit loss, with [`member_name`]
    /// victims.
    pub attack: AttackPlan,
    /// Manager↔member partition windows.
    pub partitions: Vec<Partition>,
    /// Constant per-member link delays.
    pub link_delays: Vec<LinkDelay>,
    /// Seeded reorder jitter, if any.
    pub reorder: Option<ReorderJitter>,
    /// Slow nodes.
    pub stragglers: Vec<Straggler>,
    /// If set, the first member regeneration is itself attacked: the spare
    /// being brought up is killed while its activation is in flight.
    pub kill_during_regeneration: bool,
    /// Virtual makespan bound the run must finish under.
    pub makespan_bound: Duration,
    /// Event budget safety valve.
    pub max_events: u64,
}

impl Scenario {
    /// A baseline scenario with no faults: 3 members, 1 spare, the tiny
    /// cube, paper detector parameters scaled to virtual time.
    pub fn baseline(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            cube: CubeSpec::tiny(1),
            config: PctConfig::paper(),
            members: 3,
            spares: 1,
            screen_tasks: 3,
            transform_tasks: 3,
            detector: DetectorConfig {
                heartbeat_period_ms: 20,
                miss_threshold: 4,
            },
            network: NetworkModel::fast_ethernet_100baset(),
            machine_kills: FaultPlan::none(),
            chaos: ChaosPlan::none(),
            attack: AttackPlan::none(),
            partitions: Vec::new(),
            link_delays: Vec::new(),
            reorder: None,
            stragglers: Vec::new(),
            kill_during_regeneration: false,
            makespan_bound: Duration::from_secs(30),
            max_events: 2_000_000,
        }
    }

    /// Adds a phase-anchored member kill (builder style).
    pub fn with_chaos_kill(mut self, phase: ChaosPhase, member: usize) -> Self {
        self.chaos.kills.push(service::PhaseKill {
            job: 1,
            phase,
            member: member_name(member),
        });
        self
    }

    /// Total members including spares.
    pub fn total_members(&self) -> usize {
        self.members + self.spares
    }

    /// Number of kills the schedule can inject (chaos + attack victims +
    /// machine kills + the kill-during-regeneration rider).
    pub fn scheduled_kills(&self) -> usize {
        self.chaos.kills.len()
            + self.attack.victims.len()
            + self.machine_kills.len()
            + usize::from(self.kill_during_regeneration)
    }

    /// A generous-but-finite virtual makespan bound derived from the
    /// scenario's own disruption schedule: the fault-free run takes well
    /// under a second of virtual time on the tiny cubes, and each
    /// disruption can cost at most a few detection windows plus
    /// retransmit backoff.
    pub fn derived_makespan_bound(&self) -> Duration {
        let detect_window_ms = self
            .detector
            .heartbeat_period_ms
            .saturating_mul(self.detector.miss_threshold as u64 + 1);
        // Mirrors the manager's retransmit base: max(4 windows, 1 s).
        let retransmit_ms = (detect_window_ms * 4).max(1_000);
        let disruptions =
            (self.scheduled_kills() + self.partitions.len() + self.attack.drop_sends.len() + 2)
                as u64;
        let mut bound = Duration::from_millis(
            2_000 + disruptions * (detect_window_ms * 12 + retransmit_ms * 4),
        );
        for p in &self.partitions {
            bound = bound + p.until + p.until;
        }
        for (t, _) in self.machine_kills.failures() {
            bound += t.since(netsim::SimTime::ZERO);
        }
        for d in &self.link_delays {
            bound += d.extra.saturating_mul(64);
        }
        if let Some(j) = &self.reorder {
            bound += j.max.saturating_mul(64);
        }
        let min_speed = self
            .stragglers
            .iter()
            .map(|s| s.speed)
            .fold(1.0_f64, f64::min)
            .max(0.01);
        bound.mul_f64(1.0 / min_speed)
    }

    /// Validates internal consistency: member references in range and at
    /// least one member guaranteed to survive the schedule.
    pub fn validate(&self) -> Result<(), String> {
        if self.members == 0 {
            return Err("scenario needs at least one active member".into());
        }
        if self.scheduled_kills() >= self.total_members() {
            return Err(format!(
                "schedule kills {} of {} members — nobody left to finish the job",
                self.scheduled_kills(),
                self.total_members()
            ));
        }
        let check = |idx: usize, what: &str| {
            if idx >= self.total_members() {
                Err(format!("{what} references member {idx} out of range"))
            } else {
                Ok(())
            }
        };
        for kill in &self.chaos.kills {
            let idx = member_index(&kill.member)
                .ok_or_else(|| format!("chaos kill member {:?} is not m<i>", kill.member))?;
            check(idx, "chaos kill")?;
        }
        for victim in &self.attack.victims {
            let idx = member_index(victim)
                .ok_or_else(|| format!("attack victim {victim:?} is not m<i>"))?;
            check(idx, "attack victim")?;
        }
        for (target, _) in &self.attack.drop_sends {
            let idx = member_index(target)
                .ok_or_else(|| format!("drop_sends target {target:?} is not m<i>"))?;
            check(idx, "drop_sends")?;
        }
        for (_, node) in self.machine_kills.failures() {
            check(node.0, "machine kill")?;
        }
        for p in &self.partitions {
            check(p.member, "partition")?;
        }
        for d in &self.link_delays {
            check(d.member, "link delay")?;
        }
        for s in &self.stragglers {
            check(s.member, "straggler")?;
            if !(s.speed > 0.0 && s.speed <= 1.0) {
                return Err(format!("straggler speed {} outside (0, 1]", s.speed));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{NodeId, SimTime};

    #[test]
    fn member_names_round_trip() {
        assert_eq!(member_name(3), "m3");
        assert_eq!(member_index("m3"), Some(3));
        assert_eq!(member_index("worker0#0"), None);
    }

    #[test]
    fn cube_spec_generates_deterministically() {
        let a = CubeSpec::tiny(7).generate();
        let b = CubeSpec::tiny(7).generate();
        assert_eq!(a.samples(), b.samples());
        assert_eq!(CubeSpec::tiny(7).key(), (12, 10, 4, 7));
    }

    #[test]
    fn validation_rejects_total_annihilation() {
        let mut sc = Scenario::baseline("all-dead", 1);
        sc.members = 2;
        sc.spares = 0;
        sc = sc
            .with_chaos_kill(ChaosPhase::Screen, 0)
            .with_chaos_kill(ChaosPhase::Transform, 1);
        assert!(sc.validate().is_err());
        let ok = Scenario::baseline("one-kill", 1).with_chaos_kill(ChaosPhase::Screen, 0);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_references() {
        let mut sc = Scenario::baseline("bad", 1);
        sc.machine_kills = FaultPlan::kill_at(NodeId(99), SimTime::from_secs_f64(0.1));
        assert!(sc.validate().is_err());
    }

    #[test]
    fn derived_bound_grows_with_disruptions() {
        let calm = Scenario::baseline("calm", 1);
        let stormy = Scenario::baseline("stormy", 1)
            .with_chaos_kill(ChaosPhase::Screen, 0)
            .with_chaos_kill(ChaosPhase::Transform, 1);
        assert!(stormy.derived_makespan_bound() > calm.derived_makespan_bound());
    }
}
