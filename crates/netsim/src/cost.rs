//! Calibrated cost model for the spectral-screening PCT workload.
//!
//! Figure 4 and Figure 5 of the paper are wall-clock measurements on 300 MHz
//! Sun workstations.  To regenerate their *shape* on a simulator we need a
//! translation from workload parameters (pixels, bands, sub-cube sizes,
//! unique-set sizes) to compute seconds and message bytes.  The flop counts
//! below follow directly from the eight algorithm steps; the sustained
//! floating-point rate is calibrated so the single-processor time of the
//! 320×320×105 cube lands in the few-hundred-second range shown on the
//! paper's log-scale time axis.  Absolute seconds are not the claim — the
//! speed-up ratios and the granularity crossovers are.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Machine classes with era-appropriate sustained floating-point rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkstationClass {
    /// The paper's testbed: 300 MHz UltraSPARC workstations.  Sustained
    /// rate on cache-unfriendly image code of that era is far below peak;
    /// 12 MFLOP/s reproduces the magnitude of the reported runtimes.
    Sun300MHz,
    /// A contemporary x86 core, for what-if extensions.
    ModernCore,
}

impl WorkstationClass {
    /// Sustained floating-point rate in operations per second.
    pub fn sustained_flops(&self) -> f64 {
        match self {
            WorkstationClass::Sun300MHz => 12.0e6,
            WorkstationClass::ModernCore => 2.0e9,
        }
    }
}

/// The cost model used by the DES-driven PCT implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Sustained floating-point rate of one worker CPU (ops/second).
    pub flops: f64,
    /// Bytes per raw sensor sample on the wire (HYDICE delivers 16-bit
    /// samples, so 2).
    pub bytes_per_sample: u64,
    /// Average number of unique-set candidates each pixel is compared
    /// against during spectral screening (step 1).
    pub screen_comparisons: f64,
    /// Average number of merged-set candidates each unique vector is
    /// compared against during the manager's merge (step 2).
    pub merge_comparisons: f64,
    /// Fraction of pixels that survive screening into the unique set.
    pub unique_fraction: f64,
    /// Number of principal components produced per pixel in step 7.  The
    /// colour mapping needs three; producing only the leading components is
    /// the standard optimisation and what the flop budget assumes.
    pub output_components: usize,
    /// Fixed per-task software overhead at a worker (unmarshalling the
    /// sub-problem, setting up buffers, marshalling the result), in seconds.
    /// This is what makes very fine granularity counter-productive in
    /// Figure 5.
    pub per_task_overhead_secs: f64,
}

impl CostModel {
    /// The calibration used for reproducing the paper's figures.
    pub fn paper() -> Self {
        Self {
            flops: WorkstationClass::Sun300MHz.sustained_flops(),
            bytes_per_sample: 2,
            screen_comparisons: 60.0,
            merge_comparisons: 6.0,
            unique_fraction: 0.02,
            output_components: 3,
            per_task_overhead_secs: 0.15,
        }
    }

    /// A model for a modern machine (used in extension benches only).
    pub fn modern() -> Self {
        Self {
            flops: WorkstationClass::ModernCore.sustained_flops(),
            ..Self::paper()
        }
    }

    /// Converts a floating-point operation count into reference CPU time.
    pub fn work(&self, flop_count: f64) -> Duration {
        if self.flops <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(flop_count.max(0.0) / self.flops)
    }

    // ----- per-step compute costs -------------------------------------------------

    /// Step 1: spectral-angle screening of `pixels` pixel vectors with
    /// `bands` bands.  Each comparison is a dot product plus two norms
    /// (≈ 6·bands flops including the arccos).
    pub fn screening_work(&self, pixels: usize, bands: usize) -> Duration {
        self.work(pixels as f64 * self.screen_comparisons * 6.0 * bands as f64)
    }

    /// Step 2: merging `parts` unique sets of roughly `unique_pixels` total
    /// vectors at the manager (pairwise angle checks against the merged set).
    pub fn merge_work(&self, unique_pixels: usize, bands: usize) -> Duration {
        self.work(unique_pixels as f64 * self.merge_comparisons * 6.0 * bands as f64)
    }

    /// Fixed per-task software overhead (marshalling, scheduling) charged at
    /// the worker for every sub-problem it handles.
    pub fn per_task_overhead(&self) -> Duration {
        Duration::from_secs_f64(self.per_task_overhead_secs)
    }

    /// Step 3: mean vector over the unique set.
    pub fn mean_work(&self, unique_pixels: usize, bands: usize) -> Duration {
        self.work(unique_pixels as f64 * bands as f64 * 2.0)
    }

    /// Step 4: centred outer-product accumulation over one worker's share of
    /// the unique set (`unique_pixels` vectors): `bands·(bands+1)` flops per
    /// vector for the packed upper triangle.
    pub fn covariance_work(&self, unique_pixels: usize, bands: usize) -> Duration {
        self.work(unique_pixels as f64 * (bands as f64) * (bands as f64 + 1.0))
    }

    /// Step 5: averaging `parts` partial covariance matrices at the manager.
    pub fn covariance_reduce_work(&self, parts: usize, bands: usize) -> Duration {
        self.work(parts as f64 * (bands as f64) * (bands as f64))
    }

    /// Step 6: Jacobi eigen-decomposition of the `bands × bands` covariance
    /// matrix (≈ 12 n³ for a handful of sweeps), executed sequentially by the
    /// manager as in the paper.
    pub fn eigen_work(&self, bands: usize) -> Duration {
        self.work(12.0 * (bands as f64).powi(3))
    }

    /// Step 7: transforming `pixels` pixel vectors into
    /// `output_components` principal components (2·bands flops per output
    /// component per pixel, plus the centring subtraction).
    pub fn transform_work(&self, pixels: usize, bands: usize) -> Duration {
        self.work(
            pixels as f64 * (self.output_components as f64 * 2.0 * bands as f64 + bands as f64),
        )
    }

    /// Step 8: human-centred colour mapping of `pixels` pixels (a 3×3 matrix
    /// multiply plus clamping per pixel).
    pub fn colormap_work(&self, pixels: usize) -> Duration {
        self.work(pixels as f64 * 30.0)
    }

    /// Expected number of unique-set vectors produced by screening `pixels`
    /// pixels.
    pub fn unique_pixels(&self, pixels: usize) -> usize {
        ((pixels as f64 * self.unique_fraction).round() as usize).max(1)
    }

    // ----- message sizes ----------------------------------------------------------

    /// Bytes of a raw sub-cube payload sent from the manager to a worker.
    pub fn subcube_bytes(&self, pixels: usize, bands: usize) -> u64 {
        pixels as u64 * bands as u64 * self.bytes_per_sample
    }

    /// Bytes of a unique set of `unique_pixels` vectors returned to the
    /// manager after step 1.
    pub fn unique_set_bytes(&self, unique_pixels: usize, bands: usize) -> u64 {
        unique_pixels as u64 * bands as u64 * self.bytes_per_sample
    }

    /// Bytes of the broadcast carrying the mean vector and transformation
    /// matrix to each worker before step 7 (stored as f64).
    pub fn transform_broadcast_bytes(&self, bands: usize) -> u64 {
        ((bands * bands + bands) * std::mem::size_of::<f64>()) as u64
    }

    /// Bytes of one packed partial covariance sum returned after step 4.
    pub fn covariance_bytes(&self, bands: usize) -> u64 {
        (bands * (bands + 1) / 2 * std::mem::size_of::<f64>()) as u64
    }

    /// Bytes of the fused colour result for `pixels` pixels returned after
    /// step 8 (3 bytes per pixel).
    pub fn result_bytes(&self, pixels: usize) -> u64 {
        pixels as u64 * 3
    }

    /// Bytes of a small control message (work request, acknowledgement,
    /// heartbeat).
    pub fn control_bytes(&self) -> u64 {
        64
    }

    /// Total single-processor compute time for a full image of
    /// `pixels × bands` — the denominator of every speed-up number.
    pub fn sequential_total(&self, pixels: usize, bands: usize) -> Duration {
        let unique = self.unique_pixels(pixels);
        self.screening_work(pixels, bands)
            + self.merge_work(unique, bands)
            + self.mean_work(unique, bands)
            + self.covariance_work(unique, bands)
            + self.covariance_reduce_work(1, bands)
            + self.eigen_work(bands)
            + self.transform_work(pixels, bands)
            + self.colormap_work(pixels)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIXELS: usize = 320 * 320;
    const BANDS: usize = 105;

    #[test]
    fn work_is_linear_in_flops() {
        let m = CostModel::paper();
        let a = m.work(1e6).as_secs_f64();
        let b = m.work(2e6).as_secs_f64();
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn negative_or_zero_flops_cost_nothing() {
        let m = CostModel::paper();
        assert_eq!(m.work(-5.0), Duration::ZERO);
        let broken = CostModel {
            flops: 0.0,
            ..CostModel::paper()
        };
        assert_eq!(broken.work(1e9), Duration::ZERO);
    }

    #[test]
    fn sequential_total_is_in_the_papers_ballpark() {
        // Figure 4 shows the single-processor run of the 320x320x105 cube
        // taking on the order of hundreds of seconds (log-scale axis up to
        // 1000+).  The calibrated model must land in that range.
        let t = CostModel::paper()
            .sequential_total(PIXELS, BANDS)
            .as_secs_f64();
        assert!(t > 100.0, "sequential time {t} unrealistically small");
        assert!(t < 2000.0, "sequential time {t} unrealistically large");
    }

    #[test]
    fn transform_dominates_eigen_at_paper_scale() {
        // The paper notes that although step 6 is O(n^3), at 210 frames it
        // does not dominate the overall time.
        let m = CostModel::paper();
        assert!(m.transform_work(PIXELS, 210) > m.eigen_work(210));
    }

    #[test]
    fn per_step_costs_scale_with_problem_size() {
        let m = CostModel::paper();
        assert!(m.screening_work(PIXELS, BANDS) > m.screening_work(PIXELS / 2, BANDS));
        assert!(m.covariance_work(1000, BANDS) > m.covariance_work(1000, BANDS / 2));
        assert!(m.eigen_work(210) > m.eigen_work(105));
    }

    #[test]
    fn unique_pixels_respects_fraction_and_floor() {
        let m = CostModel::paper();
        assert_eq!(m.unique_pixels(1000), 20);
        assert_eq!(m.unique_pixels(0), 1);
    }

    #[test]
    fn message_sizes_match_layouts() {
        let m = CostModel::paper();
        assert_eq!(m.subcube_bytes(100, 105), 100 * 105 * 2);
        assert_eq!(m.covariance_bytes(105), 105 * 106 / 2 * 8);
        assert_eq!(m.transform_broadcast_bytes(105), (105 * 105 + 105) * 8);
        assert_eq!(m.result_bytes(100), 300);
        assert!(m.control_bytes() < 1000);
        assert!(m.per_task_overhead().as_secs_f64() > 0.0);
    }

    #[test]
    fn full_cube_transfer_is_tens_of_megabytes() {
        // 320x320x105 at 2 bytes/sample is about 21.5 MB, which over the
        // paper's effective LAN throughput is a few seconds — noticeable but
        // small compared with compute, which is why the paper sees
        // near-linear speed-up while granularity (Figure 5) still matters.
        let m = CostModel::paper();
        let bytes = m.subcube_bytes(PIXELS, BANDS);
        assert!(bytes > 20_000_000 && bytes < 25_000_000);
    }

    #[test]
    fn modern_core_is_much_faster() {
        let paper = CostModel::paper().sequential_total(PIXELS, BANDS);
        let modern = CostModel::modern().sequential_total(PIXELS, BANDS);
        assert!(modern.as_secs_f64() * 50.0 < paper.as_secs_f64());
    }
}
