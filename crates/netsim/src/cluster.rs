//! The discrete-event cluster simulator and its actor programming model.
//!
//! Applications are written as *actors*: reactive processes pinned to a node
//! that change state when a message arrives or a requested compute block
//! finishes — the same reactive model SCPlib uses ("the important transitions
//! between data states occur at the receipt of messages").  The `pct` crate
//! implements the paper's manager and worker threads as actors and runs them
//! on a simulated 16-node 100BaseT cluster to regenerate Figures 4 and 5.

use crate::fault::FaultPlan;
use crate::link::NetworkModel;
use crate::node::{NodeId, NodeSpec, NodeState};
use crate::time::{Duration, SimTime};
use crate::trace::SimMetrics;
use crate::{Result, SimError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of an actor registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// A reactive simulated process.
///
/// All callbacks receive an [`ActorContext`] through which the actor can send
/// messages, request compute blocks, and halt the simulation.  Callbacks run
/// instantaneously in virtual time; only explicit `compute` requests and
/// message transfers advance the clock.
pub trait Actor<M> {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut ActorContext<'_, M>) {}

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut ActorContext<'_, M>, from: ActorId, msg: M);

    /// Called when a compute block previously requested with
    /// [`ActorContext::compute`] finishes.  `tag` is the caller-chosen tag.
    fn on_compute_done(&mut self, _ctx: &mut ActorContext<'_, M>, _tag: u64) {}

    /// Called when a timer previously armed with
    /// [`ActorContext::set_timer`] fires.  Timers on dead nodes never fire.
    fn on_timer(&mut self, _ctx: &mut ActorContext<'_, M>, _tag: u64) {}
}

/// Operations an actor can request during a callback.  They are buffered and
/// applied by the simulator in call order once the callback returns, which
/// keeps the borrow structure simple without changing observable behaviour.
enum Op<M> {
    Send { to: ActorId, msg: M, bytes: u64 },
    Compute { tag: u64, work: Duration },
    Timer { tag: u64, delay: Duration },
    KillNode { node: NodeId },
    Halt,
}

/// The interface an actor uses to interact with the simulated world.
pub struct ActorContext<'a, M> {
    now: SimTime,
    self_id: ActorId,
    self_node: NodeId,
    actor_nodes: &'a [NodeId],
    node_alive: &'a [bool],
    ops: Vec<Op<M>>,
}

impl<'a, M> ActorContext<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's identifier.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The node this actor runs on.
    pub fn self_node(&self) -> NodeId {
        self.self_node
    }

    /// The node a given actor runs on, if the actor exists.
    pub fn node_of(&self, actor: ActorId) -> Option<NodeId> {
        self.actor_nodes.get(actor.0).copied()
    }

    /// Whether a node is currently alive.
    pub fn is_node_alive(&self, node: NodeId) -> bool {
        self.node_alive.get(node.0).copied().unwrap_or(false)
    }

    /// Number of actors registered with the simulation.
    pub fn actor_count(&self) -> usize {
        self.actor_nodes.len()
    }

    /// Sends `msg` to another actor.  `bytes` is the payload size used by the
    /// network model; the in-memory message `M` itself is delivered intact,
    /// so drivers pass real data while the clock is charged for the bytes the
    /// real system would ship.
    pub fn send(&mut self, to: ActorId, msg: M, bytes: u64) {
        self.ops.push(Op::Send { to, msg, bytes });
    }

    /// Requests a block of CPU work measured in reference-workstation
    /// seconds.  When it completes, [`Actor::on_compute_done`] fires with
    /// `tag`.
    pub fn compute(&mut self, tag: u64, work: Duration) {
        self.ops.push(Op::Compute { tag, work });
    }

    /// Arms a one-shot timer: [`Actor::on_timer`] fires with `tag` after
    /// `delay` of virtual time, unless this actor's node has died by then.
    /// Unlike [`ActorContext::compute`], timers do not occupy the CPU —
    /// they model wall-clock waits (heartbeat periods, sweep intervals,
    /// retransmit deadlines).
    pub fn set_timer(&mut self, tag: u64, delay: Duration) {
        self.ops.push(Op::Timer { tag, delay });
    }

    /// Kills a node immediately (chaos directed *by an actor* rather than
    /// scheduled ahead of time in a [`FaultPlan`]) — the hook a driver's
    /// fault-injection logic uses to anchor kills on protocol events
    /// ("the first transform task was just dispatched") instead of virtual
    /// times.  The node stops computing, sending and receiving; messages
    /// already in flight toward it are dropped at delivery.
    pub fn kill_node(&mut self, node: NodeId) {
        self.ops.push(Op::KillNode { node });
    }

    /// Stops the simulation after the current callback.
    pub fn halt(&mut self) {
        self.ops.push(Op::Halt);
    }
}

/// Queued simulation events.
enum Event<M> {
    Deliver { from: ActorId, to: ActorId, msg: M },
    ComputeDone { actor: ActorId, tag: u64 },
    Timer { actor: ActorId, tag: u64 },
    NodeFailure { node: NodeId },
}

/// What a link-fault hook decides about one inter-node send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver normally under the network model.
    Deliver,
    /// Drop the message in transit (it is charged to the sender's NIC but
    /// never arrives — counted in `messages_dropped`).
    Drop,
    /// Deliver, but add `extra` to the arrival time on top of the modelled
    /// latency — the substrate for delay storms and deterministic reorder
    /// jitter.
    Delay(Duration),
}

/// A pluggable per-send fault hook: called for every inter-node send with
/// the current virtual time and the endpoints, before the network model
/// schedules delivery.  Implementations must be deterministic functions of
/// their inputs and their own (seeded) state for runs to be reproducible.
pub trait LinkFault<M> {
    /// Judges one send.
    fn judge(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: &M) -> LinkVerdict;
}

struct QueuedEvent<M> {
    time: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Node descriptions; index is the [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// LAN model.
    pub network: NetworkModel,
    /// Scheduled node failures / attacks.
    pub faults: FaultPlan,
    /// Safety valve: maximum number of events to process before reporting a
    /// livelock.  The Figure 4/5 runs need well under a million events.
    pub max_events: u64,
}

impl SimConfig {
    /// A uniform cluster of `n` reference workstations on 100BaseT — the
    /// paper's testbed shape.
    pub fn lan_of_workstations(n: usize) -> Self {
        Self {
            nodes: NodeSpec::uniform(n),
            network: NetworkModel::fast_ethernet_100baset(),
            faults: FaultPlan::none(),
            max_events: 10_000_000,
        }
    }
}

/// Result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Virtual time at which the run ended (last event processed or halt).
    pub finished_at: SimTime,
    /// Number of events processed.
    pub events_processed: u64,
    /// Whether an actor called [`ActorContext::halt`].
    pub halted: bool,
    /// Aggregated traffic and utilisation metrics.
    pub metrics: SimMetrics,
}

/// The discrete-event cluster simulator.
pub struct ClusterSim<M> {
    nodes: Vec<NodeState>,
    network: NetworkModel,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    actor_nodes: Vec<NodeId>,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    seq: u64,
    now: SimTime,
    metrics: SimMetrics,
    faults: FaultPlan,
    max_events: u64,
    halted: bool,
    link_fault: Option<Box<dyn LinkFault<M>>>,
    clock: Option<Arc<AtomicU64>>,
}

impl<M> ClusterSim<M> {
    /// Creates a simulator from a configuration.
    pub fn new(config: SimConfig) -> Result<Self> {
        if config.nodes.is_empty() {
            return Err(SimError::InvalidConfig(
                "cluster needs at least one node".into(),
            ));
        }
        let metrics = SimMetrics::new(config.nodes.len());
        Ok(Self {
            nodes: config.nodes.into_iter().map(NodeState::new).collect(),
            network: config.network,
            actors: Vec::new(),
            actor_nodes: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            metrics,
            faults: config.faults,
            max_events: config.max_events,
            halted: false,
            link_fault: None,
            clock: None,
        })
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Installs a per-send [`LinkFault`] hook (drops, delays, partitions,
    /// reorder jitter).  At most one hook is active; drivers compose
    /// multiple fault kinds inside it.
    pub fn set_link_fault(&mut self, fault: Box<dyn LinkFault<M>>) {
        self.link_fault = Some(fault);
    }

    /// Binds an external clock cell: the simulator stores the current
    /// virtual time (nanoseconds since start) into it whenever the clock
    /// advances.  A driver can wrap the same cell in a `telemetry::Clock`
    /// so spans and histograms measure exact virtual time.
    pub fn bind_clock(&mut self, cell: Arc<AtomicU64>) {
        cell.store(self.now.as_nanos(), Ordering::Relaxed);
        self.clock = Some(cell);
    }

    /// Registers an actor on a node and returns its id.
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> Result<ActorId> {
        if node.0 >= self.nodes.len() {
            return Err(SimError::UnknownEntity {
                kind: "node",
                id: node.0,
            });
        }
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        self.actor_nodes.push(node);
        Ok(id)
    }

    fn push_event(&mut self, time: SimTime, event: Event<M>) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            event,
        }));
    }

    fn node_alive_flags(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.alive).collect()
    }

    /// Runs one actor callback and applies the operations it requested.
    fn dispatch<F>(&mut self, actor_id: ActorId, callback: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut ActorContext<'_, M>),
    {
        let Some(slot) = self.actors.get_mut(actor_id.0) else {
            return;
        };
        let Some(mut actor) = slot.take() else { return };
        let node = self.actor_nodes[actor_id.0];
        let alive_flags = self.node_alive_flags();
        let mut ctx = ActorContext {
            now: self.now,
            self_id: actor_id,
            self_node: node,
            actor_nodes: &self.actor_nodes,
            node_alive: &alive_flags,
            ops: Vec::new(),
        };
        callback(actor.as_mut(), &mut ctx);
        let ops = std::mem::take(&mut ctx.ops);
        drop(ctx);
        self.actors[actor_id.0] = Some(actor);
        self.apply_ops(actor_id, node, ops);
    }

    fn apply_ops(&mut self, from: ActorId, from_node: NodeId, ops: Vec<Op<M>>) {
        for op in ops {
            match op {
                Op::Send { to, msg, bytes } => self.apply_send(from, from_node, to, msg, bytes),
                Op::Compute { tag, work } => {
                    if !self.nodes[from_node.0].alive {
                        continue;
                    }
                    let done = self.nodes[from_node.0].reserve_cpu(self.now, work);
                    self.push_event(done, Event::ComputeDone { actor: from, tag });
                }
                Op::Timer { tag, delay } => {
                    if !self.nodes[from_node.0].alive {
                        continue;
                    }
                    self.push_event(self.now + delay, Event::Timer { actor: from, tag });
                }
                Op::KillNode { node } => {
                    if node.0 < self.nodes.len() && self.nodes[node.0].alive {
                        self.nodes[node.0].alive = false;
                        self.metrics.node_failures += 1;
                    }
                }
                Op::Halt => self.halted = true,
            }
        }
    }

    fn apply_send(&mut self, from: ActorId, from_node: NodeId, to: ActorId, msg: M, bytes: u64) {
        if to.0 >= self.actors.len() {
            self.metrics.messages_dropped += 1;
            return;
        }
        let to_node = self.actor_nodes[to.0];
        if !self.nodes[from_node.0].alive {
            self.metrics.messages_dropped += 1;
            return;
        }
        self.metrics.messages_sent += 1;
        self.metrics.bytes_sent += bytes;

        if from_node == to_node {
            // Intra-node delivery: memory copy, no network involvement.  A
            // small fixed overhead models the queue hand-off.
            let deliver_at = self.now + Duration::from_micros(5);
            self.push_event(deliver_at, Event::Deliver { from, to, msg });
            return;
        }

        // Consult the link-fault hook before the network model runs.  A
        // dropped message still occupies the sender's NIC (the bytes were
        // transmitted — they just never arrive).
        let verdict = match &mut self.link_fault {
            Some(hook) => hook.judge(self.now, from_node, to_node, &msg),
            None => LinkVerdict::Deliver,
        };

        let occupancy = self.network.sender_occupancy(bytes);
        let tx_done = self.nodes[from_node.0].reserve_tx(self.now, occupancy, bytes);
        if let LinkVerdict::Drop = verdict {
            self.metrics.messages_dropped += 1;
            self.metrics.network_bytes += bytes;
            return;
        }
        let arrival = tx_done + self.network.latency;
        let rx_occupancy = self.network.serialization_time(bytes);
        let delivered = if let LinkVerdict::Delay(extra) = verdict {
            // The network holds the frame: it bypasses the receive-NIC
            // FIFO reservation (which would otherwise preserve send order)
            // and lands when the network releases it — this is what lets a
            // delay verdict genuinely reorder deliveries.
            arrival + extra + rx_occupancy
        } else {
            self.nodes[to_node.0].reserve_rx(arrival, rx_occupancy, bytes)
        };
        self.metrics.network_bytes += bytes;
        self.push_event(delivered, Event::Deliver { from, to, msg });
    }

    /// Runs the simulation until the event queue drains, an actor halts it,
    /// or the event budget is exhausted.
    pub fn run(&mut self) -> Result<SimOutcome> {
        // Schedule configured node failures.
        let failures: Vec<(SimTime, NodeId)> = self.faults.failures().to_vec();
        for (time, node) in failures {
            self.push_event(time, Event::NodeFailure { node });
        }

        // Start every actor.
        for i in 0..self.actors.len() {
            self.dispatch(ActorId(i), |actor, ctx| actor.on_start(ctx));
            if self.halted {
                break;
            }
        }

        let mut processed = 0u64;
        while !self.halted {
            let Some(Reverse(next)) = self.queue.pop() else {
                break;
            };
            processed += 1;
            if processed > self.max_events {
                return Err(SimError::EventBudgetExhausted { processed });
            }
            self.now = self.now.max(next.time);
            if let Some(cell) = &self.clock {
                cell.store(self.now.as_nanos(), Ordering::Relaxed);
            }
            match next.event {
                Event::Deliver { from, to, msg } => {
                    let to_node = self.actor_nodes[to.0];
                    if !self.nodes[to_node.0].alive || self.actors[to.0].is_none() {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                    self.metrics.messages_delivered += 1;
                    self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
                Event::ComputeDone { actor, tag } => {
                    let node = self.actor_nodes[actor.0];
                    if !self.nodes[node.0].alive {
                        continue;
                    }
                    self.dispatch(actor, |a, ctx| a.on_compute_done(ctx, tag));
                }
                Event::Timer { actor, tag } => {
                    let node = self.actor_nodes[actor.0];
                    if !self.nodes[node.0].alive {
                        continue;
                    }
                    self.dispatch(actor, |a, ctx| a.on_timer(ctx, tag));
                }
                Event::NodeFailure { node } => {
                    if node.0 < self.nodes.len() {
                        self.nodes[node.0].alive = false;
                        self.metrics.node_failures += 1;
                    }
                }
            }
        }

        for (i, node) in self.nodes.iter().enumerate() {
            self.metrics.per_node_busy[i] = node.cpu_busy;
            self.metrics.per_node_bytes_sent[i] = node.bytes_sent;
        }

        Ok(SimOutcome {
            finished_at: self.now,
            events_processed: processed,
            halted: self.halted,
            metrics: self.metrics.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair of actors playing ping-pong a fixed number of times.
    struct PingPong {
        peer: Option<ActorId>,
        remaining: u32,
        initiator: bool,
        finished_at: std::rc::Rc<std::cell::Cell<f64>>,
    }

    impl Actor<u32> for PingPong {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u32>) {
            if self.initiator {
                let peer = self.peer.expect("initiator knows its peer");
                ctx.send(peer, self.remaining, 1000);
            }
        }
        fn on_message(&mut self, ctx: &mut ActorContext<'_, u32>, from: ActorId, msg: u32) {
            if msg == 0 {
                self.finished_at.set(ctx.now().as_secs_f64());
                ctx.halt();
            } else {
                ctx.send(from, msg - 1, 1000);
            }
        }
    }

    fn pingpong_sim(network: NetworkModel, rounds: u32) -> (f64, SimOutcome) {
        let config = SimConfig {
            nodes: NodeSpec::uniform(2),
            network,
            faults: FaultPlan::none(),
            max_events: 100_000,
        };
        let mut sim: ClusterSim<u32> = ClusterSim::new(config).unwrap();
        let finished = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let a = sim
            .add_actor(
                NodeId(0),
                Box::new(PingPong {
                    peer: None,
                    remaining: rounds,
                    initiator: false,
                    finished_at: finished.clone(),
                }),
            )
            .unwrap();
        let _b = sim
            .add_actor(
                NodeId(1),
                Box::new(PingPong {
                    peer: Some(a),
                    remaining: rounds,
                    initiator: true,
                    finished_at: finished.clone(),
                }),
            )
            .unwrap();
        let outcome = sim.run().unwrap();
        (finished.get(), outcome)
    }

    #[test]
    fn ping_pong_time_scales_with_rounds() {
        let (t10, o10) = pingpong_sim(NetworkModel::fast_ethernet_100baset(), 10);
        let (t20, o20) = pingpong_sim(NetworkModel::fast_ethernet_100baset(), 20);
        assert!(o10.halted && o20.halted);
        assert!(t10 > 0.0);
        // Twice the rounds, roughly twice the time.
        assert!((t20 / t10 - 2.0).abs() < 0.15, "ratio {}", t20 / t10);
    }

    #[test]
    fn ideal_network_ping_pong_is_instant() {
        let (t, outcome) = pingpong_sim(NetworkModel::ideal(), 50);
        assert!(outcome.halted);
        assert!(t < 1e-6);
    }

    #[test]
    fn message_accounting_matches_protocol() {
        let (_, outcome) = pingpong_sim(NetworkModel::fast_ethernet_100baset(), 10);
        // 11 messages cross the network (rounds 10..=0).
        assert_eq!(outcome.metrics.messages_sent, 11);
        assert_eq!(outcome.metrics.messages_delivered, 11);
        assert_eq!(outcome.metrics.messages_dropped, 0);
        assert_eq!(outcome.metrics.bytes_sent, 11 * 1000);
    }

    /// An actor that performs a fixed compute block then halts.
    struct Computer {
        work_secs: f64,
        done_at: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor<()> for Computer {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, ()>) {
            ctx.compute(1, Duration::from_secs_f64(self.work_secs));
        }
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, ()>, _from: ActorId, _msg: ()) {}
        fn on_compute_done(&mut self, ctx: &mut ActorContext<'_, ()>, tag: u64) {
            assert_eq!(tag, 1);
            self.done_at.set(ctx.now().as_secs_f64());
        }
    }

    #[test]
    fn compute_blocks_on_one_node_serialise() {
        let config = SimConfig::lan_of_workstations(1);
        let mut sim: ClusterSim<()> = ClusterSim::new(config).unwrap();
        let d1 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let d2 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        sim.add_actor(
            NodeId(0),
            Box::new(Computer {
                work_secs: 2.0,
                done_at: d1.clone(),
            }),
        )
        .unwrap();
        sim.add_actor(
            NodeId(0),
            Box::new(Computer {
                work_secs: 3.0,
                done_at: d2.clone(),
            }),
        )
        .unwrap();
        sim.run().unwrap();
        // Same CPU: second actor finishes only after both blocks ran.
        assert!((d1.get() - 2.0).abs() < 1e-9);
        assert!((d2.get() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn compute_blocks_on_different_nodes_run_concurrently() {
        let config = SimConfig::lan_of_workstations(2);
        let mut sim: ClusterSim<()> = ClusterSim::new(config).unwrap();
        let d1 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let d2 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        sim.add_actor(
            NodeId(0),
            Box::new(Computer {
                work_secs: 2.0,
                done_at: d1.clone(),
            }),
        )
        .unwrap();
        sim.add_actor(
            NodeId(1),
            Box::new(Computer {
                work_secs: 3.0,
                done_at: d2.clone(),
            }),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert!((d1.get() - 2.0).abs() < 1e-9);
        assert!((d2.get() - 3.0).abs() < 1e-9);
        assert_eq!(outcome.finished_at, SimTime::from_secs_f64(3.0));
    }

    /// An actor that sends to a peer on a node that gets killed.
    struct Talker {
        peer: ActorId,
    }
    impl Actor<u8> for Talker {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u8>) {
            ctx.compute(0, Duration::from_secs(2));
        }
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, u8>, _from: ActorId, _msg: u8) {}
        fn on_compute_done(&mut self, ctx: &mut ActorContext<'_, u8>, _tag: u64) {
            ctx.send(self.peer, 7, 100);
        }
    }
    struct Sink;
    impl Actor<u8> for Sink {
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, u8>, _from: ActorId, _msg: u8) {
            panic!("dead node must not receive messages");
        }
    }

    #[test]
    fn messages_to_killed_nodes_are_dropped() {
        let mut config = SimConfig::lan_of_workstations(2);
        config.faults = FaultPlan::kill_at(NodeId(1), SimTime::from_secs_f64(1.0));
        let mut sim: ClusterSim<u8> = ClusterSim::new(config).unwrap();
        // Register the sink first so the talker knows its id.
        let sink = sim.add_actor(NodeId(1), Box::new(Sink)).unwrap();
        sim.add_actor(NodeId(0), Box::new(Talker { peer: sink }))
            .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.metrics.node_failures, 1);
        assert_eq!(outcome.metrics.messages_dropped, 1);
        assert_eq!(outcome.metrics.messages_delivered, 0);
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let config = SimConfig {
            nodes: vec![],
            network: NetworkModel::ideal(),
            faults: FaultPlan::none(),
            max_events: 100,
        };
        assert!(ClusterSim::<u8>::new(config).is_err());
    }

    #[test]
    fn adding_actor_to_missing_node_fails() {
        let mut sim: ClusterSim<u8> = ClusterSim::new(SimConfig::lan_of_workstations(2)).unwrap();
        assert!(sim.add_actor(NodeId(5), Box::new(Sink)).is_err());
    }

    /// An actor that floods itself with messages forever, to exercise the
    /// event budget safety valve.
    struct Flood;
    impl Actor<u8> for Flood {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u8>) {
            let me = ctx.self_id();
            ctx.send(me, 0, 1);
        }
        fn on_message(&mut self, ctx: &mut ActorContext<'_, u8>, _from: ActorId, _msg: u8) {
            let me = ctx.self_id();
            ctx.send(me, 0, 1);
        }
    }

    /// An actor that re-arms a periodic timer and counts the ticks.
    struct Ticker {
        period: Duration,
        ticks: std::rc::Rc<std::cell::Cell<u32>>,
        stop_after: u32,
    }
    impl Actor<u8> for Ticker {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u8>) {
            ctx.set_timer(1, self.period);
        }
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, u8>, _from: ActorId, _msg: u8) {}
        fn on_timer(&mut self, ctx: &mut ActorContext<'_, u8>, tag: u64) {
            assert_eq!(tag, 1);
            self.ticks.set(self.ticks.get() + 1);
            if self.ticks.get() < self.stop_after {
                ctx.set_timer(1, self.period);
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn timers_fire_periodically_on_virtual_time() {
        let mut sim: ClusterSim<u8> = ClusterSim::new(SimConfig::lan_of_workstations(1)).unwrap();
        let ticks = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.add_actor(
            NodeId(0),
            Box::new(Ticker {
                period: Duration::from_millis(50),
                ticks: ticks.clone(),
                stop_after: 4,
            }),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(ticks.get(), 4);
        assert_eq!(outcome.finished_at, SimTime::from_nanos(200_000_000));
    }

    #[test]
    fn timers_on_killed_nodes_never_fire() {
        let mut config = SimConfig::lan_of_workstations(1);
        config.faults = FaultPlan::kill_at(NodeId(0), SimTime::from_nanos(75_000_000));
        let mut sim: ClusterSim<u8> = ClusterSim::new(config).unwrap();
        let ticks = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.add_actor(
            NodeId(0),
            Box::new(Ticker {
                period: Duration::from_millis(50),
                ticks: ticks.clone(),
                stop_after: 10,
            }),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        // Only the 50 ms tick precedes the 75 ms kill.
        assert_eq!(ticks.get(), 1);
        assert!(!outcome.halted);
    }

    /// An actor that kills a target node on start, then messages it.
    struct Assassin {
        victim_node: NodeId,
        victim_actor: ActorId,
    }
    impl Actor<u8> for Assassin {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u8>) {
            ctx.kill_node(self.victim_node);
            ctx.send(self.victim_actor, 1, 100);
        }
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, u8>, _from: ActorId, _msg: u8) {}
    }

    #[test]
    fn actor_directed_kills_take_effect_immediately() {
        let mut sim: ClusterSim<u8> = ClusterSim::new(SimConfig::lan_of_workstations(2)).unwrap();
        let sink = sim.add_actor(NodeId(1), Box::new(Sink)).unwrap();
        sim.add_actor(
            NodeId(0),
            Box::new(Assassin {
                victim_node: NodeId(1),
                victim_actor: sink,
            }),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.metrics.node_failures, 1);
        assert_eq!(outcome.metrics.messages_delivered, 0);
        assert_eq!(outcome.metrics.messages_dropped, 1);
    }

    /// Drops the first send, delays the second by a fixed amount, then
    /// delivers everything else untouched.
    struct DropThenDelay {
        seen: u32,
    }
    impl LinkFault<u32> for DropThenDelay {
        fn judge(&mut self, _now: SimTime, _from: NodeId, _to: NodeId, _msg: &u32) -> LinkVerdict {
            self.seen += 1;
            match self.seen {
                1 => LinkVerdict::Drop,
                2 => LinkVerdict::Delay(Duration::from_secs(1)),
                _ => LinkVerdict::Deliver,
            }
        }
    }

    /// Sends `count` messages to a peer on start; the peer records arrival
    /// times.
    struct Burst {
        peer: ActorId,
        count: u32,
    }
    impl Actor<u32> for Burst {
        fn on_start(&mut self, ctx: &mut ActorContext<'_, u32>) {
            for i in 0..self.count {
                ctx.send(self.peer, i, 100);
            }
        }
        fn on_message(&mut self, _ctx: &mut ActorContext<'_, u32>, _from: ActorId, _msg: u32) {}
    }
    struct Arrivals {
        log: std::rc::Rc<std::cell::RefCell<Vec<(u32, SimTime)>>>,
    }
    impl Actor<u32> for Arrivals {
        fn on_message(&mut self, ctx: &mut ActorContext<'_, u32>, _from: ActorId, msg: u32) {
            self.log.borrow_mut().push((msg, ctx.now()));
        }
    }

    #[test]
    fn link_faults_drop_and_delay_sends() {
        let mut sim: ClusterSim<u32> = ClusterSim::new(SimConfig::lan_of_workstations(2)).unwrap();
        sim.set_link_fault(Box::new(DropThenDelay { seen: 0 }));
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = sim
            .add_actor(NodeId(1), Box::new(Arrivals { log: log.clone() }))
            .unwrap();
        sim.add_actor(NodeId(0), Box::new(Burst { peer: rx, count: 3 }))
            .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.metrics.messages_dropped, 1);
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        // Message 2 (plain) arrives before message 1 (delayed a second):
        // the delay verdict reorders deliveries.
        assert_eq!(log[0].0, 2);
        assert_eq!(log[1].0, 1);
        assert!(log[1].1.since(log[0].1) >= Duration::from_secs_f64(0.9));
    }

    #[test]
    fn bound_clock_tracks_virtual_time() {
        use std::sync::atomic::Ordering;
        let mut sim: ClusterSim<u8> = ClusterSim::new(SimConfig::lan_of_workstations(1)).unwrap();
        let cell = Arc::new(AtomicU64::new(u64::MAX));
        sim.bind_clock(cell.clone());
        assert_eq!(cell.load(Ordering::Relaxed), 0);
        let ticks = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.add_actor(
            NodeId(0),
            Box::new(Ticker {
                period: Duration::from_millis(10),
                ticks,
                stop_after: 3,
            }),
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert_eq!(cell.load(Ordering::Relaxed), outcome.finished_at.as_nanos());
        assert_eq!(cell.load(Ordering::Relaxed), 30_000_000);
    }

    #[test]
    fn event_budget_detects_livelock() {
        let mut config = SimConfig::lan_of_workstations(1);
        config.max_events = 1000;
        let mut sim: ClusterSim<u8> = ClusterSim::new(config).unwrap();
        sim.add_actor(NodeId(0), Box::new(Flood)).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }
}
