//! Fault and attack injection schedules.
//!
//! The paper motivates computational resiliency with information-warfare
//! attacks on battlefield command-and-control systems.  From the
//! application's point of view every attack the resiliency layer handles
//! manifests as a process or node that stops participating (crashes, is
//! taken off the network, or is deliberately killed), so the injector models
//! exactly that: nodes die at scheduled virtual times.  Richer behaviours
//! (message delay storms) are expressed as per-message delay factors.

use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A schedule of node failures to inject into a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `(time, node)` pairs; at `time`, `node` stops computing and both
    /// sending and receiving.
    failures: Vec<(SimTime, NodeId)>,
}

impl FaultPlan {
    /// No faults — the baseline configuration of Figures 4 and 5.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills a single node at the given time.
    pub fn kill_at(node: NodeId, time: SimTime) -> Self {
        Self {
            failures: vec![(time, node)],
        }
    }

    /// Adds a failure to the plan (builder style).
    pub fn and_kill(mut self, node: NodeId, time: SimTime) -> Self {
        self.failures.push((time, node));
        self
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// The scheduled failures, in insertion order.
    pub fn failures(&self) -> &[(SimTime, NodeId)] {
        &self.failures
    }

    /// Kills every node in `nodes` at evenly spaced times across
    /// `[start, end]` — a "sweeping attack" scenario used in the extension
    /// benches.
    pub fn sweeping_attack(nodes: &[NodeId], start: SimTime, end: SimTime) -> Self {
        if nodes.is_empty() {
            return Self::none();
        }
        let span = end.since(start).as_nanos();
        let step = span / nodes.len() as u64;
        let failures = nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                (
                    SimTime::from_nanos(start.as_nanos() + step * i as u64),
                    node,
                )
            })
            .collect();
        Self { failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_failures() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn kill_at_records_one_failure() {
        let p = FaultPlan::kill_at(NodeId(3), SimTime::from_secs_f64(2.0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.failures()[0], (SimTime::from_secs_f64(2.0), NodeId(3)));
    }

    #[test]
    fn builder_accumulates_failures() {
        let p = FaultPlan::none()
            .and_kill(NodeId(1), SimTime::from_secs_f64(1.0))
            .and_kill(NodeId(2), SimTime::from_secs_f64(2.0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn sweeping_attack_spreads_failures_over_the_window() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let p = FaultPlan::sweeping_attack(
            &nodes,
            SimTime::from_secs_f64(10.0),
            SimTime::from_secs_f64(18.0),
        );
        assert_eq!(p.len(), 4);
        let times: Vec<f64> = p.failures().iter().map(|(t, _)| t.as_secs_f64()).collect();
        assert_eq!(times, vec![10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn sweeping_attack_with_no_nodes_is_empty() {
        assert!(FaultPlan::sweeping_attack(&[], SimTime::ZERO, SimTime::ZERO).is_empty());
    }
}
