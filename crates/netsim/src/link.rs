//! Switched-LAN network model.
//!
//! The paper's testbed used 100BaseT (switched fast Ethernet).  The model
//! here is the standard latency/bandwidth/overhead decomposition used for
//! message-passing performance analysis:
//!
//! * a fixed per-message software overhead at the sender (protocol stack,
//!   SCPlib marshalling),
//! * serialisation of the payload onto the wire at the link bandwidth
//!   (occupying the sender NIC, and later the receiver NIC),
//! * a propagation-plus-switching latency between any two ports.
//!
//! A switched full-duplex network has no shared-medium contention, so two
//! disjoint node pairs can communicate simultaneously; contention only
//! appears at a node's own NIC, which the per-node `tx/rx` reservations in
//! [`crate::node`] capture.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Parameters of the LAN connecting the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation plus switch latency.
    pub latency: Duration,
    /// Fixed per-message software overhead charged at the sender.
    pub per_message_overhead: Duration,
}

impl NetworkModel {
    /// 100BaseT switched Ethernet as used in the paper: 100 Mbit/s with
    /// ~90 Mbit/s usable after framing, ~100 µs switch+stack latency, and
    /// ~0.5 ms per-message software overhead typical of late-90s TCP stacks
    /// on workstation-class machines.
    pub fn fast_ethernet_100baset() -> Self {
        Self {
            bandwidth_bps: 90.0e6,
            latency: Duration::from_micros(100),
            per_message_overhead: Duration::from_micros(500),
        }
    }

    /// The paper's testbed as seen by SCPlib: 100BaseT links, but with the
    /// effective application-level throughput of a late-90s TCP stack on a
    /// 300 MHz workstation (~50 Mbit/s) and a per-message marshalling and
    /// protocol cost (~10 ms).  This is the model the Figure 4/5 simulations
    /// use; the per-message cost and the staging of sub-problem transfers
    /// are what make granularity matter.
    pub fn paper_lan() -> Self {
        Self {
            bandwidth_bps: 50.0e6,
            latency: Duration::from_micros(100),
            per_message_overhead: Duration::from_millis(10),
        }
    }

    /// Gigabit Ethernet, for what-if extensions of the evaluation.
    pub fn gigabit_ethernet() -> Self {
        Self {
            bandwidth_bps: 900.0e6,
            latency: Duration::from_micros(50),
            per_message_overhead: Duration::from_micros(100),
        }
    }

    /// An idealised zero-cost network; with this model the simulated speed-up
    /// should be essentially linear, which the tests use as a sanity check
    /// and the paper invokes when discussing shared-memory execution
    /// ("no communication overhead involved in the algorithm").
    pub fn ideal() -> Self {
        Self {
            bandwidth_bps: f64::INFINITY,
            latency: Duration::ZERO,
            per_message_overhead: Duration::ZERO,
        }
    }

    /// Time the payload occupies a NIC (serialisation time).
    pub fn serialization_time(&self, bytes: u64) -> Duration {
        if !self.bandwidth_bps.is_finite() || self.bandwidth_bps <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Total sender-side occupancy for one message (overhead + serialisation).
    pub fn sender_occupancy(&self, bytes: u64) -> Duration {
        self.per_message_overhead + self.serialization_time(bytes)
    }

    /// End-to-end delivery time for one message on an otherwise idle path:
    /// sender occupancy, propagation, and receiver-side serialisation.
    pub fn point_to_point_time(&self, bytes: u64) -> Duration {
        self.sender_occupancy(bytes) + self.latency + self.serialization_time(bytes)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::fast_ethernet_100baset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_scales_with_bytes() {
        let net = NetworkModel::fast_ethernet_100baset();
        let one_mb = net.serialization_time(1_000_000);
        let two_mb = net.serialization_time(2_000_000);
        assert!((two_mb.as_secs_f64() - 2.0 * one_mb.as_secs_f64()).abs() < 1e-9);
        // 1 MB over 90 Mbit/s is about 89 ms.
        assert!((one_mb.as_secs_f64() - 0.0889).abs() < 0.002);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkModel::ideal();
        assert_eq!(net.point_to_point_time(10_000_000), Duration::ZERO);
    }

    #[test]
    fn point_to_point_includes_all_terms() {
        let net = NetworkModel {
            bandwidth_bps: 8e6, // 1 byte per microsecond
            latency: Duration::from_micros(100),
            per_message_overhead: Duration::from_micros(50),
        };
        let t = net.point_to_point_time(1000);
        // 50us overhead + 1000us tx + 100us latency + 1000us rx = 2150us.
        assert_eq!(t, Duration::from_micros(2150));
    }

    #[test]
    fn paper_lan_pays_more_per_message_than_raw_fast_ethernet() {
        let raw = NetworkModel::fast_ethernet_100baset();
        let paper = NetworkModel::paper_lan();
        assert!(paper.point_to_point_time(1000) > raw.point_to_point_time(1000));
        // The effective stack throughput is below the raw link rate.
        assert!(paper.serialization_time(1_000_000) > raw.serialization_time(1_000_000));
    }

    #[test]
    fn gigabit_is_faster_than_fast_ethernet() {
        let fe = NetworkModel::fast_ethernet_100baset();
        let ge = NetworkModel::gigabit_ethernet();
        assert!(ge.point_to_point_time(1_000_000) < fe.point_to_point_time(1_000_000));
    }

    #[test]
    fn zero_byte_message_still_pays_overhead_and_latency() {
        let net = NetworkModel::fast_ethernet_100baset();
        let t = net.point_to_point_time(0);
        assert_eq!(t, Duration::from_micros(600));
    }
}
