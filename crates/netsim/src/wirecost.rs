//! Exact byte sizes of the real wire protocol, for tying the simulator to
//! the wire.
//!
//! [`crate::CostModel`] models the *paper's* message volumes — 16-bit raw
//! sensor samples, era-calibrated — and its constants are pinned by the
//! figure-regeneration benches, so they must not drift.  The `wire` crate
//! ships `f64` samples inside framed, CRC-checked messages, which is a
//! different (larger, exactly knowable) byte count.  This module states
//! that layout as arithmetic: one function per message kind, mirroring the
//! codec's field tables constant for constant.
//!
//! The `wire` crate's `netsim_crosscheck` test encodes a real message set
//! and asserts `encoded.len()` equals these formulas for every kind — if
//! the codec layout changes, that test fails and whoever bumps the
//! protocol version fixes the constants here in the same commit.  The
//! simulator can therefore cost scenarios in *real wire bytes* rather
//! than modeled sensor bytes by swapping these in for the
//! [`crate::CostModel`] message-size methods.

/// Bytes of the frame header (`magic u32 + body len u32 + CRC-32`).
pub const FRAME_HEADER_BYTES: u64 = 12;
/// Bytes of the message tag that starts every body.
pub const TAG_BYTES: u64 = 1;
/// Bytes of a task id on the wire (`u64`).
pub const TASK_ID_BYTES: u64 = 8;
/// Bytes of every length/count/dimension prefix (`u32`).
pub const LEN_PREFIX_BYTES: u64 = 4;
/// Bytes of one spectral sample on the wire (`f64` bit pattern — the wire
/// ships full-precision samples, not the sensor's 16-bit rawscans).
pub const SAMPLE_BYTES: u64 = 8;
/// Bytes of a cube-view header (`x0, row_start, width, height, bands`,
/// each a `u32`).
pub const VIEW_HEADER_BYTES: u64 = 5 * LEN_PREFIX_BYTES;

/// Frame bytes of a message whose body is `body` bytes long.
pub fn framed(body: u64) -> u64 {
    FRAME_HEADER_BYTES + body
}

/// Body bytes of an encoded `CubeView` of `pixels × bands`.
pub fn view_bytes(pixels: u64, bands: u64) -> u64 {
    VIEW_HEADER_BYTES + pixels * bands * SAMPLE_BYTES
}

/// Body bytes of an encoded `Vector` of `bands` components.
pub fn vector_bytes(bands: u64) -> u64 {
    LEN_PREFIX_BYTES + bands * SAMPLE_BYTES
}

/// Body bytes of an encoded `Vec<Vector>` of `count` vectors.
pub fn vector_set_bytes(count: u64, bands: u64) -> u64 {
    LEN_PREFIX_BYTES + count * vector_bytes(bands)
}

/// Body bytes of an encoded row-major `Matrix`.
pub fn matrix_bytes(rows: u64, cols: u64) -> u64 {
    2 * LEN_PREFIX_BYTES + rows * cols * SAMPLE_BYTES
}

// ----- whole frames, one per message kind -------------------------------------

/// `ScreenTask{task, view, threshold_rad}`.
pub fn screen_task_frame(pixels: u64, bands: u64) -> u64 {
    framed(TAG_BYTES + TASK_ID_BYTES + view_bytes(pixels, bands) + SAMPLE_BYTES)
}

/// `ScreenSeededTask{task, view, seed, threshold_rad}`.
pub fn screen_seeded_task_frame(pixels: u64, bands: u64, seed: u64) -> u64 {
    framed(
        TAG_BYTES
            + TASK_ID_BYTES
            + view_bytes(pixels, bands)
            + vector_set_bytes(seed, bands)
            + SAMPLE_BYTES,
    )
}

/// `UniqueSet{task, unique}` / `SeededUnique{task, accepted}` (identical
/// layouts under different tags).
pub fn unique_set_frame(unique: u64, bands: u64) -> u64 {
    framed(TAG_BYTES + TASK_ID_BYTES + vector_set_bytes(unique, bands))
}

/// `CovarianceTask{task, mean, pixels}`.
pub fn covariance_task_frame(share: u64, bands: u64) -> u64 {
    framed(TAG_BYTES + TASK_ID_BYTES + vector_bytes(bands) + vector_set_bytes(share, bands))
}

/// `CovarianceSum{task, packed, bands, count}` — the packed upper triangle
/// holds `bands·(bands+1)/2` samples.
pub fn covariance_sum_frame(bands: u64) -> u64 {
    let packed = bands * (bands + 1) / 2;
    framed(
        TAG_BYTES + TASK_ID_BYTES + LEN_PREFIX_BYTES + packed * SAMPLE_BYTES + LEN_PREFIX_BYTES + 8,
    )
}

/// `TransformTask{task, view, mean, transform, scales}` with
/// `components` output components (matrix rows and scale pairs).
pub fn transform_task_frame(pixels: u64, bands: u64, components: u64) -> u64 {
    framed(
        TAG_BYTES
            + TASK_ID_BYTES
            + view_bytes(pixels, bands)
            + vector_bytes(bands)
            + matrix_bytes(components, bands)
            + LEN_PREFIX_BYTES
            + components * 2 * SAMPLE_BYTES,
    )
}

/// `RgbStrip{task, row_start, rows, width, rgb}` for `pixels` strip pixels.
pub fn rgb_strip_frame(pixels: u64) -> u64 {
    framed(TAG_BYTES + TASK_ID_BYTES + 3 * LEN_PREFIX_BYTES + LEN_PREFIX_BYTES + pixels * 3)
}

/// `Heartbeat` / `Shutdown` — tag-only control frames.
pub fn control_frame() -> u64 {
    framed(TAG_BYTES)
}

/// `Hello{version}` — the handshake frame.
pub fn hello_frame() -> u64 {
    framed(TAG_BYTES + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    #[test]
    fn wire_payloads_are_4x_the_modeled_sensor_bytes_plus_overhead() {
        // The paper model ships 2-byte sensor samples; the wire ships their
        // 8-byte f64 expansion.  The fixed relation keeps the simulator's
        // calibrated constants honest about what the real protocol costs.
        let m = CostModel::paper();
        let (pixels, bands) = (320 * 64, 105);
        let modeled = m.subcube_bytes(pixels, bands as usize);
        let wire = screen_task_frame(pixels as u64, bands);
        let overhead = FRAME_HEADER_BYTES + TAG_BYTES + TASK_ID_BYTES + VIEW_HEADER_BYTES + 8;
        assert_eq!(wire, 4 * modeled + overhead);
    }

    #[test]
    fn control_frames_fit_the_modeled_control_budget() {
        // The model budgets 64 bytes per control message; real heartbeat
        // and shutdown frames are far under it.
        assert!(control_frame() <= CostModel::paper().control_bytes());
        assert!(hello_frame() <= CostModel::paper().control_bytes());
    }

    #[test]
    fn sizes_are_monotone_in_their_parameters() {
        assert!(screen_task_frame(200, 105) > screen_task_frame(100, 105));
        assert!(unique_set_frame(50, 105) > unique_set_frame(49, 105));
        assert!(transform_task_frame(100, 105, 3) > screen_task_frame(100, 105));
        assert!(covariance_sum_frame(210) > covariance_sum_frame(105));
        assert!(rgb_strip_frame(100) > control_frame());
    }
}
