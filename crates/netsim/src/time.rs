//! Virtual time for the discrete-event simulator.
//!
//! Time is an integer nanosecond count so event ordering is exact and the
//! simulation is bit-for-bit reproducible across runs and platforms —
//! floating-point clocks accumulate rounding that can flip event order and
//! make speed-up curves jitter.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration(0);
        }
        Duration((secs * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(&self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a non-negative floating factor.
    pub fn mul_f64(&self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

/// An absolute point on the virtual clock, in nanoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time point from fractional seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(Duration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since an earlier time (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3000));
        assert_eq!(Duration::from_micros(5), Duration::from_nanos(5000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Duration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
    }

    #[test]
    fn round_trip_secs() {
        let d = Duration::from_secs_f64(0.123456789);
        assert!((d.as_secs_f64() - 0.123456789).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(3);
        assert_eq!((a + b).as_nanos(), 13_000_000);
        assert_eq!((a - b).as_nanos(), 7_000_000);
        assert_eq!((b - a), Duration::ZERO); // saturating
        assert_eq!(a.saturating_mul(4).as_nanos(), 40_000_000);
        assert_eq!(a.mul_f64(0.5).as_nanos(), 5_000_000);
    }

    #[test]
    fn simtime_advances_and_measures() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(t1.since(t0), Duration::from_secs(1));
        assert_eq!(t0.since(t1), Duration::ZERO);
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn simtime_ordering_is_total() {
        let times = [
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        let mut sorted = times;
        sorted.sort();
        assert_eq!(
            sorted,
            [
                SimTime::ZERO,
                SimTime::from_nanos(3),
                SimTime::from_nanos(5)
            ]
        );
    }
}
