//! Simulated workstation nodes.
//!
//! A node models one machine in the cluster: a single CPU with a relative
//! compute rate and a full-duplex NIC.  Work submitted to a node's CPU is
//! serialised — two worker replicas placed on the same physical pool of
//! processors each take their turn, which is exactly why the paper expects
//! "performance would decrease by a factor of two" under level-2 replication.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Relative CPU speed: 1.0 is the reference workstation (a 300 MHz
    /// UltraSPARC in the paper's testbed).  A compute request of `d` seconds
    /// of reference work takes `d / speed` seconds on this node.
    pub speed: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self { speed: 1.0 }
    }
}

impl NodeSpec {
    /// A uniform cluster of `n` reference-speed nodes, the configuration of
    /// the paper's testbed.
    pub fn uniform(n: usize) -> Vec<NodeSpec> {
        vec![NodeSpec::default(); n]
    }
}

/// Dynamic per-node simulation state: CPU and NIC availability plus
/// accumulated utilisation statistics.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    pub spec: NodeSpec,
    /// Earliest time the CPU can start new work.
    pub cpu_free_at: SimTime,
    /// Earliest time the NIC can start transmitting a new outgoing message.
    pub tx_free_at: SimTime,
    /// Earliest time the NIC can start receiving a new incoming message.
    pub rx_free_at: SimTime,
    /// Total CPU busy time, for utilisation metrics.
    pub cpu_busy: Duration,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Whether the node is alive (fault injection can kill it).
    pub alive: bool,
}

impl NodeState {
    pub fn new(spec: NodeSpec) -> Self {
        Self {
            spec,
            cpu_free_at: SimTime::ZERO,
            tx_free_at: SimTime::ZERO,
            rx_free_at: SimTime::ZERO,
            cpu_busy: Duration::ZERO,
            bytes_sent: 0,
            bytes_received: 0,
            alive: true,
        }
    }

    /// Reserves the CPU for `reference_work` seconds of reference-speed work
    /// starting no earlier than `now`; returns the completion time.
    pub fn reserve_cpu(&mut self, now: SimTime, reference_work: Duration) -> SimTime {
        let scaled = if self.spec.speed > 0.0 {
            reference_work.mul_f64(1.0 / self.spec.speed)
        } else {
            reference_work
        };
        let start = self.cpu_free_at.max(now);
        let done = start + scaled;
        self.cpu_free_at = done;
        self.cpu_busy += scaled;
        done
    }

    /// Reserves the transmit side of the NIC for `occupancy` starting no
    /// earlier than `now`; returns the time transmission finishes.
    pub fn reserve_tx(&mut self, now: SimTime, occupancy: Duration, bytes: u64) -> SimTime {
        let start = self.tx_free_at.max(now);
        let done = start + occupancy;
        self.tx_free_at = done;
        self.bytes_sent += bytes;
        done
    }

    /// Reserves the receive side of the NIC.
    pub fn reserve_rx(&mut self, now: SimTime, occupancy: Duration, bytes: u64) -> SimTime {
        let start = self.rx_free_at.max(now);
        let done = start + occupancy;
        self.rx_free_at = done;
        self.bytes_received += bytes;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cluster_has_reference_speed() {
        let nodes = NodeSpec::uniform(16);
        assert_eq!(nodes.len(), 16);
        assert!(nodes.iter().all(|n| n.speed == 1.0));
    }

    #[test]
    fn cpu_requests_serialise() {
        let mut node = NodeState::new(NodeSpec::default());
        let t1 = node.reserve_cpu(SimTime::ZERO, Duration::from_secs(2));
        let t2 = node.reserve_cpu(SimTime::ZERO, Duration::from_secs(3));
        assert_eq!(t1, SimTime::from_nanos(2_000_000_000));
        assert_eq!(t2, SimTime::from_nanos(5_000_000_000));
        assert_eq!(node.cpu_busy, Duration::from_secs(5));
    }

    #[test]
    fn faster_node_finishes_sooner() {
        let mut fast = NodeState::new(NodeSpec { speed: 2.0 });
        let mut slow = NodeState::new(NodeSpec { speed: 0.5 });
        let work = Duration::from_secs(4);
        assert_eq!(
            fast.reserve_cpu(SimTime::ZERO, work),
            SimTime::from_secs_f64(2.0)
        );
        assert_eq!(
            slow.reserve_cpu(SimTime::ZERO, work),
            SimTime::from_secs_f64(8.0)
        );
    }

    #[test]
    fn cpu_idle_gap_respected() {
        let mut node = NodeState::new(NodeSpec::default());
        let later = SimTime::from_secs_f64(10.0);
        let done = node.reserve_cpu(later, Duration::from_secs(1));
        assert_eq!(done, SimTime::from_secs_f64(11.0));
    }

    #[test]
    fn nic_sides_are_independent() {
        let mut node = NodeState::new(NodeSpec::default());
        let tx = node.reserve_tx(SimTime::ZERO, Duration::from_millis(10), 1000);
        let rx = node.reserve_rx(SimTime::ZERO, Duration::from_millis(4), 500);
        assert_eq!(tx, SimTime::from_nanos(10_000_000));
        assert_eq!(rx, SimTime::from_nanos(4_000_000));
        assert_eq!(node.bytes_sent, 1000);
        assert_eq!(node.bytes_received, 500);
    }

    #[test]
    fn zero_speed_node_falls_back_to_reference() {
        let mut node = NodeState::new(NodeSpec { speed: 0.0 });
        let done = node.reserve_cpu(SimTime::ZERO, Duration::from_secs(1));
        assert_eq!(done, SimTime::from_secs_f64(1.0));
    }
}
