//! Simulation metrics and utilisation accounting.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Messages actors attempted to send.
    pub messages_sent: u64,
    /// Messages delivered to a live actor.
    pub messages_delivered: u64,
    /// Messages dropped (dead sender, dead receiver, unknown actor).
    pub messages_dropped: u64,
    /// Total payload bytes of attempted sends.
    pub bytes_sent: u64,
    /// Payload bytes that actually crossed the network (inter-node sends).
    pub network_bytes: u64,
    /// Node failures injected.
    pub node_failures: u64,
    /// Per-node CPU busy time.
    pub per_node_busy: Vec<Duration>,
    /// Per-node bytes transmitted.
    pub per_node_bytes_sent: Vec<u64>,
}

impl SimMetrics {
    /// Creates zeroed metrics for a cluster of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            per_node_busy: vec![Duration::ZERO; nodes],
            per_node_bytes_sent: vec![0; nodes],
            ..Self::default()
        }
    }

    /// Total CPU busy time across all nodes.
    pub fn total_busy(&self) -> Duration {
        self.per_node_busy
            .iter()
            .fold(Duration::ZERO, |acc, &d| acc + d)
    }

    /// Average CPU utilisation over the run: total busy time divided by
    /// `nodes * makespan`.  Returns 0 when the makespan is zero.
    pub fn average_utilization(&self, makespan: Duration) -> f64 {
        let nodes = self.per_node_busy.len();
        if nodes == 0 || makespan == Duration::ZERO {
            return 0.0;
        }
        self.total_busy().as_secs_f64() / (nodes as f64 * makespan.as_secs_f64())
    }

    /// Fraction of attempted messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            return 1.0;
        }
        self.messages_delivered as f64 / self.messages_sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_zeroed() {
        let m = SimMetrics::new(4);
        assert_eq!(m.per_node_busy.len(), 4);
        assert_eq!(m.total_busy(), Duration::ZERO);
        assert_eq!(m.delivery_ratio(), 1.0);
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let mut m = SimMetrics::new(2);
        m.per_node_busy[0] = Duration::from_secs(6);
        m.per_node_busy[1] = Duration::from_secs(2);
        let util = m.average_utilization(Duration::from_secs(8));
        assert!((util - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_zero_makespan_is_zero() {
        let m = SimMetrics::new(2);
        assert_eq!(m.average_utilization(Duration::ZERO), 0.0);
    }

    #[test]
    fn delivery_ratio_counts_drops() {
        let mut m = SimMetrics::new(1);
        m.messages_sent = 10;
        m.messages_delivered = 9;
        m.messages_dropped = 1;
        assert!((m.delivery_ratio() - 0.9).abs() < 1e-12);
    }
}
